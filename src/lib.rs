//! Umbrella package for examples and integration tests of the Mali-T604
//! HPC reproduction. See the workspace crates for the actual library.
pub use hpc_kernels;
pub use kernel_ir;
pub use mali_hpc;
