//! Differential oracle for the SSA optimizer (`kernel_ir::opt`).
//!
//! The optimizer's headline invariant: **every** optimized program must
//! produce byte-identical results to the unoptimized one, under both
//! execution engines and any worker count. This suite pins it the blunt
//! way — run every suite kernel's GPU variant unoptimized, then under
//! each single pass, then under several full orderings, on both engines,
//! and compare the per-cell output digests (FNV-1a over every validated
//! output element's bit pattern, captured by the harness runner).
//!
//! It also pins the payoff: the canonical full pipeline must strictly
//! reduce *executed* instructions (`Counters::total_ops`, the dynamic
//! count the device models meter) on at least one suite kernel, with the
//! optimizer's own rewrite counters corroborating that passes actually
//! fired.

use harness::{run_one, CellEntry, SuiteConfig};
use hpc_kernels::{Precision, Variant};
use kernel_ir::opt::{Pass, Pipeline};
use kernel_ir::Engine;
use std::collections::BTreeMap;

/// (digest, executed ops) for every suite kernel at OpenCL-Opt/single
/// under one (pipeline, engine) configuration.
fn sweep(passes: Option<&Pipeline>, engine: Engine) -> BTreeMap<String, (u64, u64)> {
    kernel_ir::set_engine(engine);
    let benches = hpc_kernels::test_suite();
    let cfg = SuiteConfig {
        passes: passes.cloned(),
        ..SuiteConfig::default()
    };
    let mut out = BTreeMap::new();
    for (bi, b) in benches.iter().enumerate() {
        match run_one(b.as_ref(), bi, Variant::OpenClOpt, Precision::F32, &cfg) {
            CellEntry::Ok(c) => {
                out.insert(
                    b.name().to_string(),
                    (c.output_digest, c.counters.total_ops()),
                );
            }
            CellEntry::Skipped(_) => {}
            CellEntry::Failed(e) => panic!(
                "{} failed under pipeline '{}' on {:?}: {}",
                b.name(),
                passes.map(|p| p.to_string()).unwrap_or_else(|| "-".into()),
                engine,
                e.message
            ),
        }
    }
    assert!(!out.is_empty(), "no suite kernels ran");
    out
}

#[test]
fn every_pass_and_ordering_preserves_every_kernel_on_both_engines() {
    let configured = kernel_ir::engine();

    // Unoptimized ground truth, already engine-independent.
    let base = sweep(None, Engine::Scalar);
    assert_eq!(
        base,
        sweep(None, Engine::Columnar),
        "engines disagree before any optimization — not an optimizer bug"
    );

    // Every single pass in isolation, the canonical full ordering, the
    // reversed ordering, and a pathological repeated one: all must be
    // output-preserving, kernel by kernel, on both engines.
    let mut pipelines: Vec<Pipeline> = Pass::ALL.iter().map(|p| Pipeline::of(&[*p])).collect();
    pipelines.push(Pipeline::full());
    pipelines.push(Pipeline::parse("dce,dse,licm,cse,sr,alg,cf").unwrap());
    pipelines.push(Pipeline::parse("cf,cf,cse,cse,dce,dce").unwrap());

    let mut full_ops: Option<BTreeMap<String, (u64, u64)>> = None;
    for pl in &pipelines {
        for engine in [Engine::Scalar, Engine::Columnar] {
            let got = sweep(Some(pl), engine);
            assert_eq!(
                base.keys().collect::<Vec<_>>(),
                got.keys().collect::<Vec<_>>(),
                "kernel set changed under '{pl}' on {engine:?}"
            );
            for (bench, (base_digest, _)) in &base {
                let (digest, _) = got[bench];
                assert_eq!(
                    *base_digest, digest,
                    "pipeline '{pl}' on {engine:?} changed the output of {bench}"
                );
            }
            if pl == &Pipeline::full() && engine == Engine::Columnar {
                full_ops = Some(got);
            }
        }
    }

    // The payoff: under the full pipeline at least one kernel executes
    // strictly fewer instructions. Blanket application can regress
    // individual kernels — SSA lowering materializes loop-carried phis as
    // latch copies, a Mov per iteration on kernels the passes find
    // nothing to remove from — which is precisely why `harness autotune`
    // selects pipelines *per kernel* with the unoptimized baseline always
    // in the running. The autotuned selection (best of {baseline, full}
    // here) must therefore strictly improve the suite aggregate.
    let full_ops = full_ops.expect("full pipeline ran");
    let mut improved = Vec::new();
    let (mut base_total, mut tuned_total) = (0u64, 0u64);
    for (bench, (_, base_ops)) in &base {
        let (_, opt_ops) = full_ops[bench];
        base_total += base_ops;
        tuned_total += opt_ops.min(*base_ops);
        if opt_ops < *base_ops {
            improved.push(format!("{bench}: {base_ops} -> {opt_ops}"));
        }
    }
    assert!(
        !improved.is_empty(),
        "no kernel executed fewer instructions under the full pipeline"
    );
    assert!(
        tuned_total < base_total,
        "per-kernel selection found nothing: {base_total} -> {tuned_total} executed ops"
    );

    kernel_ir::set_engine(configured);
}

#[test]
fn pass_counters_corroborate_the_reduction() {
    let configured = kernel_ir::engine();
    kernel_ir::set_engine(Engine::Columnar);
    let before = kernel_ir::opt::stats();
    let _ = sweep(Some(&Pipeline::full()), Engine::Columnar);
    let after = kernel_ir::opt::stats();
    assert!(
        after.programs > before.programs,
        "no programs went through the optimizer"
    );
    assert!(
        after.total_rewrites() > before.total_rewrites(),
        "optimizer ran but no pass rewrote anything"
    );
    kernel_ir::set_engine(configured);
}
