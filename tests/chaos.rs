//! Chaos-mode acceptance: under a fixed `--fault-seed`, the suite must
//! survive every injected failure (no panic escapes the harness), record
//! the casualties as structured failure rows, stay byte-identical across
//! thread counts, and resume from a truncated checkpoint to the exact
//! artifacts of an uninterrupted run.
//!
//! One `#[test]` on purpose: `sim_faults::install` is process-global, and
//! this integration-test binary owns the whole process.

use harness::{checkpoint, run_suite_with, to_csv, to_jsonl, CellEntry, SuiteConfig};
use hpc_kernels::test_suite;

const SEED: u64 = 7;

fn chaos_cfg() -> SuiteConfig {
    SuiteConfig {
        faults: Some(sim_faults::FaultPlan::new(SEED)),
        state_tag: "test".into(),
        ..SuiteConfig::default()
    }
}

#[test]
fn chaos_suite_survives_and_stays_deterministic() {
    // Injected panics are expected; keep them out of the test log but
    // leave genuine panics (test bugs) loud.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .map(|s| sim_faults::is_injected(s))
            .unwrap_or(false);
        if !injected {
            default_hook(info);
        }
    }));
    sim_faults::install(Some(sim_faults::FaultPlan::new(SEED)));

    // The suite completes under fire at any thread count — the call
    // returning at all means no injected panic escaped cell isolation.
    sim_pool::set_threads(1);
    let r1 = run_suite_with(&test_suite(), &chaos_cfg());
    sim_pool::set_threads(8);
    let r8 = run_suite_with(&test_suite(), &chaos_cfg());

    let (ok, skipped, failed) = r8.counts();
    assert_eq!(ok + skipped + failed, 9 * 4 * 2, "no cell lost");
    assert!(ok > 0, "chaos must not kill everything at these rates");
    assert!(
        failed > 0,
        "seed {SEED} is known to produce at least one failure at test scale"
    );
    // Failed cells carry structured, tagged diagnostics.
    for (key, err) in r8.failed_cells() {
        assert!(
            sim_faults::is_injected(&err.message) || err.message.contains("CL_OUT_OF_RESOURCES"),
            "unexpected genuine failure in {key:?}: {err:?}"
        );
    }
    // Fault stats actually fired across sites.
    let fired: u64 = sim_faults::stats().iter().map(|(_, n)| n).sum();
    assert!(fired > 0, "no faults fired");

    // Same seed, different thread counts: byte-identical artifacts, and
    // the failure rows appear in them.
    let csv = to_csv(&r8);
    assert_eq!(to_csv(&r1), csv, "chaos CSV differs across thread counts");
    assert_eq!(
        to_jsonl(&r1),
        to_jsonl(&r8),
        "chaos JSONL differs across thread counts"
    );
    assert!(csv.contains(",fail,"), "failure rows missing from CSV");
    assert!(to_jsonl(&r8).contains("\"status\":\"fail\""));

    // ---- interrupted + resumed == uninterrupted ----
    let state = std::env::temp_dir().join(format!("chaos-suite-{}.state", std::process::id()));
    let _ = std::fs::remove_file(&state);
    let full_cfg = SuiteConfig {
        checkpoint: Some(state.clone()),
        ..chaos_cfg()
    };
    let r_full = run_suite_with(&test_suite(), &full_cfg);
    assert_eq!(
        to_csv(&r_full),
        csv,
        "checkpointing must not change results"
    );

    // Simulate a crash partway through: keep the header and the first 20
    // finished cells, drop the rest.
    let text = std::fs::read_to_string(&state).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines[0], "simstate v3");
    assert!(lines.len() > 24, "expected a populated state file");
    let truncated: String = lines[..22].iter().map(|l| format!("{l}\n")).collect();
    std::fs::write(&state, truncated).unwrap();
    let (_, partial) = checkpoint::load(&state).expect("truncated state still loads");
    assert_eq!(partial.len(), 20);

    let resume_cfg = SuiteConfig {
        checkpoint: Some(state.clone()),
        resume: true,
        ..chaos_cfg()
    };
    let r_resumed = run_suite_with(&test_suite(), &resume_cfg);
    assert_eq!(
        to_csv(&r_resumed),
        csv,
        "resumed artifacts differ from uninterrupted run"
    );
    assert_eq!(to_jsonl(&r_resumed), to_jsonl(&r_full));
    // The rewritten checkpoint converged to the full state again; the
    // only cells it may miss are worker-panicked ones (the task died
    // before reaching the checkpoint writer).
    let (_, final_cells) = checkpoint::load(&state).unwrap();
    let worker_panics = r_full
        .failed_cells()
        .iter()
        .filter(|(_, f)| f.kind == harness::FailKind::WorkerPanic)
        .count();
    assert_eq!(final_cells.len(), 9 * 4 * 2 - worker_panics);
    assert!(final_cells
        .values()
        .all(|e| !matches!(e, CellEntry::Failed(f) if f.kind == harness::FailKind::WorkerPanic)));
    let _ = std::fs::remove_file(&state);
}
