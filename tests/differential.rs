//! Differential testing: randomly generated kernels must produce identical
//! results on the plain interpreter, the Cortex-A15 device (1 and 2 cores)
//! and the Mali-T604 device. The devices only *meter* — they must never
//! change semantics. This is the deepest guarantee behind every number in
//! EXPERIMENTS.md.

use kernel_ir::prelude::*;
use kernel_ir::Access;
use sim_rng::Pcg32;

/// A recipe for one random op in a straight-line elementwise kernel.
#[derive(Clone, Debug)]
enum Step {
    Add(f32),
    Mul(f32),
    Mad(f32, f32),
    Sub(f32),
    MinC(f32),
    MaxC(f32),
    Abs,
    Neg,
    Sqrt,
    /// clamp-to-zero via compare+select
    Relu,
    CastRoundTrip,
}

fn uniform(rng: &mut Pcg32, span: f32) -> f32 {
    (rng.next_f64() as f32 * 2.0 - 1.0) * span
}

fn random_step(rng: &mut Pcg32) -> Step {
    match rng.gen_below(11) {
        0 => Step::Add(uniform(rng, 8.0)),
        1 => Step::Mul(uniform(rng, 4.0)),
        2 => Step::Mad(uniform(rng, 4.0), uniform(rng, 8.0)),
        3 => Step::Sub(uniform(rng, 8.0)),
        4 => Step::MinC(uniform(rng, 8.0)),
        5 => Step::MaxC(uniform(rng, 8.0)),
        6 => Step::Abs,
        7 => Step::Neg,
        8 => Step::Sqrt,
        9 => Step::Relu,
        _ => Step::CastRoundTrip,
    }
}

fn random_steps(rng: &mut Pcg32, lo: usize, hi: usize) -> Vec<Step> {
    let n = rng.gen_range_usize(lo, hi);
    (0..n).map(|_| random_step(rng)).collect()
}

fn random_input(rng: &mut Pcg32, n: usize, span: f32) -> Vec<f32> {
    (0..n).map(|_| uniform(rng, span)).collect()
}

/// Build the kernel: out[i] = chain(a[i]).
fn build(steps: &[Step]) -> Program {
    let f32s = VType::scalar(Scalar::F32);
    let mut kb = KernelBuilder::new("chain");
    let a = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
    let o = kb.arg_global(Scalar::F32, Access::WriteOnly, true);
    let gid = kb.query_global_id(0);
    let mut cur = kb.load(Scalar::F32, a, gid.into());
    for s in steps {
        cur = match s {
            Step::Add(c) => kb.bin(BinOp::Add, cur.into(), Operand::ImmF(*c as f64), f32s),
            Step::Mul(c) => kb.bin(BinOp::Mul, cur.into(), Operand::ImmF(*c as f64), f32s),
            Step::Mad(m, c) => kb.mad(
                cur.into(),
                Operand::ImmF(*m as f64),
                Operand::ImmF(*c as f64),
                f32s,
            ),
            Step::Sub(c) => kb.bin(BinOp::Sub, cur.into(), Operand::ImmF(*c as f64), f32s),
            Step::MinC(c) => kb.bin(BinOp::Min, cur.into(), Operand::ImmF(*c as f64), f32s),
            Step::MaxC(c) => kb.bin(BinOp::Max, cur.into(), Operand::ImmF(*c as f64), f32s),
            Step::Abs => kb.un(UnOp::Abs, cur.into(), f32s),
            Step::Neg => kb.un(UnOp::Neg, cur.into(), f32s),
            Step::Sqrt => {
                // keep the domain non-negative first
                let nn = kb.un(UnOp::Abs, cur.into(), f32s);
                kb.un(UnOp::Sqrt, nn.into(), f32s)
            }
            Step::Relu => {
                let neg = kb.bin(BinOp::Lt, cur.into(), Operand::ImmF(0.0), f32s);
                kb.select(neg.into(), Operand::ImmF(0.0), cur.into(), f32s)
            }
            Step::CastRoundTrip => {
                let d = kb.cast(cur.into(), VType::scalar(Scalar::F64));
                kb.cast(d.into(), f32s)
            }
        };
    }
    kb.store(o, gid.into(), cur.into());
    kb.finish()
}

fn run_interp(p: &Program, input: &[f32], wg: usize) -> Vec<f32> {
    let mut pool = MemoryPool::new();
    let a = pool.add(input.to_vec().into());
    let o = pool.add(BufferData::zeroed(Scalar::F32, input.len()));
    run_ndrange(
        p,
        &[ArgBinding::Global(a), ArgBinding::Global(o)],
        &mut pool,
        NDRange::d1(input.len(), wg),
        &mut NullTracer,
    )
    .unwrap();
    pool.get(o).as_f32().to_vec()
}

fn run_cpu(p: &Program, input: &[f32], wg: usize, cores: u32) -> Vec<f32> {
    let mut pool = MemoryPool::new();
    let a = pool.add(input.to_vec().into());
    let o = pool.add(BufferData::zeroed(Scalar::F32, input.len()));
    cpu_sim::CortexA15::default()
        .run(
            p,
            &[ArgBinding::Global(a), ArgBinding::Global(o)],
            &mut pool,
            NDRange::d1(input.len(), wg),
            cores,
        )
        .unwrap();
    pool.get(o).as_f32().to_vec()
}

fn run_gpu(p: &Program, input: &[f32], wg: usize) -> Vec<f32> {
    let mut pool = MemoryPool::new();
    let a = pool.add(input.to_vec().into());
    let o = pool.add(BufferData::zeroed(Scalar::F32, input.len()));
    mali_gpu::MaliT604::default()
        .run(
            p,
            &[ArgBinding::Global(a), ArgBinding::Global(o)],
            &mut pool,
            NDRange::d1(input.len(), wg),
        )
        .unwrap();
    pool.get(o).as_f32().to_vec()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// All four execution paths agree bit-for-bit on random op chains.
#[test]
fn devices_agree_bitwise() {
    let mut rng = Pcg32::seed_from_u64(0xD1FF);
    for case in 0..48 {
        let steps = random_steps(&mut rng, 1, 12);
        let input = random_input(&mut rng, 64, 50.0);
        let wg = [8usize, 16, 32][rng.gen_range_usize(0, 3)];
        let p = build(&steps);
        p.validate().unwrap();
        let base = run_interp(&p, &input, wg);
        assert_eq!(
            bits(&base),
            bits(&run_cpu(&p, &input, wg, 1)),
            "case {case}: CPU-1 diverged on {steps:?}"
        );
        assert_eq!(
            bits(&base),
            bits(&run_cpu(&p, &input, wg, 2)),
            "case {case}: CPU-2 diverged on {steps:?}"
        );
        assert_eq!(
            bits(&base),
            bits(&run_gpu(&p, &input, wg)),
            "case {case}: GPU diverged on {steps:?}"
        );
    }
}

/// Vectorization of the same random chain is also bit-exact (lane-wise
/// ops are order-independent per element).
#[test]
fn vectorized_random_chain_bit_exact() {
    let mut rng = Pcg32::seed_from_u64(0x7EC7);
    for case in 0..48 {
        let steps = random_steps(&mut rng, 1, 10);
        let input = random_input(&mut rng, 64, 50.0);
        let p = build(&steps);
        let base = run_interp(&p, &input, 16);
        for w in [2u8, 4, 8] {
            let v = mali_hpc::vectorize(&p, w).unwrap();
            let mut pool = MemoryPool::new();
            let a = pool.add(input.clone().into());
            let o = pool.add(BufferData::zeroed(Scalar::F32, input.len()));
            run_ndrange(
                &v.program,
                &[ArgBinding::Global(a), ArgBinding::Global(o)],
                &mut pool,
                NDRange::d1(input.len() / w as usize, 8),
                &mut NullTracer,
            )
            .unwrap();
            assert_eq!(
                bits(&base),
                bits(pool.get(o).as_f32()),
                "case {case}: width {w} diverged on {steps:?}"
            );
        }
    }
}

/// The fold/DCE optimizer preserves random-chain semantics bit-exactly.
#[test]
fn optimizer_random_chain_bit_exact() {
    let mut rng = Pcg32::seed_from_u64(0xF01D);
    for case in 0..48 {
        let steps = random_steps(&mut rng, 1, 12);
        let input = random_input(&mut rng, 32, 50.0);
        let p = build(&steps);
        let opt = mali_hpc::fold::optimize(&p);
        assert_eq!(
            bits(&run_interp(&p, &input, 8)),
            bits(&run_interp(&opt, &input, 8)),
            "case {case}: optimizer diverged on {steps:?}"
        );
    }
}

/// Multi-dimensional id plumbing: a 3-D kernel writing its linearized
/// global id must produce the identity permutation on every device.
#[test]
fn three_dimensional_ids_agree() {
    let mut kb = KernelBuilder::new("id3");
    let o = kb.arg_global(Scalar::U32, Access::WriteOnly, true);
    let gx = kb.query_global_id(0);
    let gy = kb.query_global_id(1);
    let gz = kb.query_global_id(2);
    let sx = kb.query_global_size(0);
    let sy = kb.query_global_size(1);
    // idx = (gz*sy + gy)*sx + gx
    let t1 = kb.bin(BinOp::Mul, gz.into(), sy.into(), VType::scalar(Scalar::U32));
    let t2 = kb.bin(BinOp::Add, t1.into(), gy.into(), VType::scalar(Scalar::U32));
    let t3 = kb.bin(BinOp::Mul, t2.into(), sx.into(), VType::scalar(Scalar::U32));
    let idx = kb.bin(BinOp::Add, t3.into(), gx.into(), VType::scalar(Scalar::U32));
    kb.store(o, idx.into(), idx.into());
    let p = kb.finish();
    p.validate().unwrap();

    let ndr = NDRange::d3([8, 6, 4], [4, 3, 2]);
    let n = ndr.total_items();
    let expected: Vec<u32> = (0..n as u32).collect();

    let mut pool = MemoryPool::new();
    let o1 = pool.add(BufferData::zeroed(Scalar::U32, n));
    run_ndrange(
        &p,
        &[ArgBinding::Global(o1)],
        &mut pool,
        ndr,
        &mut NullTracer,
    )
    .unwrap();
    assert_eq!(pool.get(o1).as_u32(), expected.as_slice());

    let mut pool2 = MemoryPool::new();
    let o2 = pool2.add(BufferData::zeroed(Scalar::U32, n));
    mali_gpu::MaliT604::default()
        .run(&p, &[ArgBinding::Global(o2)], &mut pool2, ndr)
        .unwrap();
    assert_eq!(pool2.get(o2).as_u32(), expected.as_slice());

    let mut pool3 = MemoryPool::new();
    let o3 = pool3.add(BufferData::zeroed(Scalar::U32, n));
    cpu_sim::CortexA15::default()
        .run(&p, &[ArgBinding::Global(o3)], &mut pool3, ndr, 2)
        .unwrap();
    assert_eq!(pool3.get(o3).as_u32(), expected.as_slice());
}
