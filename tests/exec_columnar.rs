//! Scalar-vs-columnar engine differential: every `hpc-kernels` kernel
//! family runs through both interpreter cores across a grid of work-group
//! shapes (including non-power-of-2 locals, 2-D/3-D ranges, and the
//! divergent `hist`/`amcd` kernels), asserting byte-equal buffer outputs
//! and an **identical tracer event sequence** — not just equal counters,
//! the same ops/accesses/barriers in the same order.
//!
//! A second test re-pins the contract at suite level: the full paper suite
//! must export byte-identical CSV, JSONL and trace files under every
//! engine × SIM_THREADS combination.

use harness::{run_suite, to_csv, to_jsonl, write_traces, SuiteResults};
use hpc_kernels::amcd::Amcd;
use hpc_kernels::common::prng_uniform;
use hpc_kernels::conv2d::Conv2d;
use hpc_kernels::dmmm::Dmmm;
use hpc_kernels::hist::Hist;
use hpc_kernels::nbody::Nbody;
use hpc_kernels::red::Red;
use hpc_kernels::spmv::Spmv;
use hpc_kernels::stencil3d::Stencil3d;
use hpc_kernels::test_suite;
use hpc_kernels::vecop::Vecop;
use hpc_kernels::Precision;
use kernel_ir::prelude::*;
use kernel_ir::{Engine, MemAccess, OpClass};

/// Tracer that logs the complete event stream as comparable strings.
#[derive(Default)]
struct EventLog {
    events: Vec<String>,
}

impl ExecTracer for EventLog {
    fn op(&mut self, class: OpClass, ty: VType) {
        self.events.push(format!("op {class:?} {ty:?}"));
    }
    fn mem(&mut self, a: &MemAccess, lanes: &[u64]) {
        self.events.push(format!("mem {a:?} lanes {lanes:?}"));
    }
    fn barrier(&mut self, items: u32) {
        self.events.push(format!("barrier {items}"));
    }
    fn loop_iter(&mut self) {
        self.events.push("loop".into());
    }
    fn thread_start(&mut self) {
        self.events.push("thread".into());
    }
    fn group_start(&mut self) {
        self.events.push("group".into());
    }
}

/// Buffer contents at the bit level (floats compared by bits, not value).
fn buffer_bits(b: &BufferData) -> Vec<u64> {
    match b {
        BufferData::F32(v) => v.iter().map(|x| x.to_bits() as u64).collect(),
        BufferData::F64(v) => v.iter().map(|x| x.to_bits()).collect(),
        BufferData::I32(v) => v.iter().map(|&x| x as u32 as u64).collect(),
        BufferData::I64(v) => v.iter().map(|&x| x as u64).collect(),
        BufferData::U32(v) => v.iter().map(|&x| x as u64).collect(),
        BufferData::U64(v) => v.clone(),
    }
}

/// Run `p` on one engine: globals bound in order, then local sizes.
/// Returns the full event log plus the final bits of every global buffer.
fn run_engine(
    tag: &str,
    p: &Program,
    bufs: &[BufferData],
    local_sizes: &[usize],
    ndr: NDRange,
    eng: Engine,
) -> (Vec<String>, Vec<Vec<u64>>) {
    let mut pool = MemoryPool::new();
    let mut bindings: Vec<ArgBinding> = bufs
        .iter()
        .map(|d| ArgBinding::Global(pool.add(d.clone())))
        .collect();
    bindings.extend(local_sizes.iter().map(|&n| ArgBinding::LocalSize(n)));
    let mut log = EventLog::default();
    let mut ex = GroupExecutor::with_engine(p, &bindings, &mut pool, ndr, &mut log, eng)
        .unwrap_or_else(|e| panic!("{tag}: launch failed: {e:?}"));
    assert_eq!(
        ex.engine(),
        eng,
        "{tag}: engine fell back — differential coverage lost"
    );
    ex.run_all();
    let outs = (0..bufs.len()).map(|i| buffer_bits(pool.get(i))).collect();
    (log.events, outs)
}

/// Assert both engines produce the same event stream and the same bytes.
fn differ(tag: &str, p: &Program, bufs: &[BufferData], local_sizes: &[usize], ndr: NDRange) {
    p.validate().unwrap_or_else(|e| panic!("{tag}: {e:?}"));
    let (ev_s, out_s) = run_engine(tag, p, bufs, local_sizes, ndr, Engine::Scalar);
    let (ev_c, out_c) = run_engine(tag, p, bufs, local_sizes, ndr, Engine::Columnar);
    assert_eq!(ev_s.len(), ev_c.len(), "{tag}: event count differs");
    for (i, (a, b)) in ev_s.iter().zip(&ev_c).enumerate() {
        assert_eq!(a, b, "{tag}: event {i} differs");
    }
    assert_eq!(out_s, out_c, "{tag}: buffer bits differ");
}

#[test]
fn every_kernel_family_agrees_across_shapes() {
    // --- vecop: elementwise, both precisions, 448 = 64·7 so the local
    // grid includes non-power-of-2 shapes.
    let v = Vecop { n: 448 };
    for prec in [Precision::F32, Precision::F64] {
        let bufs = [
            prec.buffer(&prng_uniform(11, v.n)),
            prec.buffer(&prng_uniform(13, v.n)),
            BufferData::zeroed(prec.elem(), v.n),
        ];
        for wg in [1usize, 7, 16, 64] {
            differ(
                &format!("vecop/{}/wg{wg}", prec.label()),
                &v.kernel(prec),
                &bufs,
                &[],
                NDRange::d1(v.n, wg),
            );
        }
    }

    // --- dmmm: 2-D range, inner reduction loop, 30×30 (non-power-of-2).
    let d = Dmmm {
        n: 30,
        opt_unroll: 2,
        opt_width: 4,
    };
    let dbufs = [
        Precision::F32.buffer(&prng_uniform(21, d.n * d.n)),
        Precision::F32.buffer(&prng_uniform(23, d.n * d.n)),
        BufferData::zeroed(Scalar::F32, d.n * d.n),
    ];
    for lx in [5usize, 6, 15, 30] {
        differ(
            &format!("dmmm/wg{lx}"),
            &d.kernel(Precision::F32),
            &dbufs,
            &[],
            NDRange::d2(d.n, d.n, lx, 1),
        );
    }

    // --- conv2d: 2-D with border arithmetic; interior 25 gives odd shapes.
    let c = Conv2d { n: 29 };
    let m = c.n - 4;
    let cbufs = [
        Precision::F32.buffer(&c.input()),
        BufferData::zeroed(Scalar::F32, c.n * c.n),
        Precision::F32.buffer(&prng_uniform(31, 25)),
    ];
    for lx in [1usize, 5, 25] {
        differ(
            &format!("conv2d/wg{lx}"),
            &c.kernel(Precision::F32),
            &cbufs,
            &[],
            NDRange::d2(m, m, lx, 1),
        );
    }

    // --- hist (naive): global atomic scatter with hot buckets.
    let h = Hist {
        n: 448,
        buckets: 8,
        opt_items_per_thread: 8,
    };
    let hin: Vec<u32> = (0..h.n as u32)
        .map(|i| (i * i) % h.buckets as u32)
        .collect();
    let hbufs = [
        BufferData::U32(hin),
        BufferData::zeroed(Scalar::U32, h.buckets),
    ];
    for wg in [1usize, 7, 16, 64] {
        differ(
            &format!("hist/wg{wg}"),
            &h.kernel(Precision::F32),
            &hbufs,
            &[],
            NDRange::d1(h.n, wg),
        );
    }

    // --- hist (optimized): local atomics, barrier, divergent merge phase
    // (`if lid < buckets { if count > 0 { ... } }`).
    let hg = h.n / h.opt_items_per_thread; // 56 items
    for wg in [8usize, 14, 28, 56] {
        differ(
            &format!("hist_opt/wg{wg}"),
            &h.opt_kernel(Precision::F32),
            &hbufs,
            &[h.buckets],
            NDRange::d1(hg, wg),
        );
    }

    // --- nbody: all-pairs loop over global size, rsqrt-heavy.
    let nb = Nbody {
        n: 60,
        dt: 0.01,
        opt_unroll: 4,
    };
    let nbufs = [
        Precision::F32.buffer(&nb.bodies()),
        BufferData::zeroed(Scalar::F32, nb.n * 4),
    ];
    for wg in [1usize, 5, 12, 60] {
        differ(
            &format!("nbody/wg{wg}"),
            &nb.kernel(Precision::F32, Hints::default()),
            &nbufs,
            &[],
            NDRange::d1(nb.n, wg),
        );
    }

    // --- spmv: per-item loop bounds from the row pointer — every item in
    // a group runs a different trip count (mask divergence in loops).
    let s = Spmv {
        rows: 60,
        nnz_per_row: 4,
    };
    let mat = s.matrix();
    let sbufs = [
        BufferData::U32(mat.row_ptr.clone()),
        BufferData::U32(mat.col.clone()),
        Precision::F32.buffer(&mat.val),
        Precision::F32.buffer(&mat.x),
        BufferData::zeroed(Scalar::F32, s.rows),
    ];
    for wg in [1usize, 5, 12, 60] {
        differ(
            &format!("spmv/wg{wg}"),
            &s.kernel(Precision::F32, Hints::default()),
            &sbufs,
            &[],
            NDRange::d1(s.rows, wg),
        );
    }

    // --- stencil3d: 3-D range, interior 9 per axis.
    let st = Stencil3d {
        dim: 11,
        opt_z_per_thread: 4,
    };
    let stbufs = [
        Precision::F32.buffer(&st.input()),
        BufferData::zeroed(Scalar::F32, st.dim * st.dim * st.dim),
    ];
    let n = st.dim - 2;
    for local in [[n, 1, 1], [3, 3, 1], [1, 1, 1], [3, 1, 3]] {
        differ(
            &format!("stencil3d/wg{local:?}"),
            &st.kernel(Precision::F32),
            &stbufs,
            &[],
            NDRange::d3([n, n, n], local),
        );
    }

    // --- amcd: Metropolis accept/reject — data-dependent branches make
    // every work-group diverge differently.
    let a = Amcd {
        walkers: 56,
        steps: 8,
    };
    let abufs = [Precision::F32.buffer(&a.init())];
    for wg in [1usize, 7, 14, 56] {
        differ(
            &format!("amcd/wg{wg}"),
            &a.kernel(Precision::F32, Hints::default()),
            &abufs,
            &[],
            NDRange::d1(a.walkers, wg),
        );
    }

    // --- red: barrier-separated tree fold in local memory, then the
    // single-item stage-2 fold.
    let r = Red {
        n: 448,
        wg: 16,
        naive_groups: 4,
        opt_groups: 4,
    };
    let rbufs = [
        Precision::F32.buffer(&prng_uniform(41, r.n)),
        BufferData::zeroed(Scalar::F32, r.naive_groups),
    ];
    differ(
        "red/stage1",
        &r.stage1(Precision::F32),
        &rbufs,
        &[r.wg],
        NDRange::d1(r.wg * r.naive_groups, r.wg),
    );
    let r2bufs = [
        Precision::F32.buffer(&prng_uniform(43, r.naive_groups)),
        BufferData::zeroed(Scalar::F32, 1),
    ];
    differ(
        "red/stage2",
        &r.stage2(Precision::F32, r.naive_groups),
        &r2bufs,
        &[],
        NDRange::d1(1, 1),
    );
}

fn suite_with(eng: Engine, threads: usize) -> SuiteResults {
    kernel_ir::set_engine(eng);
    sim_pool::set_threads(threads);
    run_suite(&test_suite(), false)
}

/// The acceptance bar from the issue: the full paper suite exports
/// byte-identical CSV/JSONL/trace artifacts under scalar and columnar
/// engines at SIM_THREADS=1 and 8.
#[test]
fn suite_artifacts_identical_across_engines_and_threads() {
    let prior = kernel_ir::engine();
    let base = suite_with(Engine::Scalar, 1);
    let base_csv = to_csv(&base);
    let base_jsonl = to_jsonl(&base);
    let base_dir = std::env::temp_dir().join(format!("mali-col-base-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base_dir);
    let base_traces = write_traces(&base, &base_dir).expect("trace write");

    for (eng, threads) in [
        (Engine::Scalar, 8),
        (Engine::Columnar, 1),
        (Engine::Columnar, 8),
    ] {
        let tag = format!("{}@{threads}", eng.name());
        let r = suite_with(eng, threads);
        assert_eq!(base_csv, to_csv(&r), "CSV differs under {tag}");
        assert_eq!(base_jsonl, to_jsonl(&r), "JSONL differs under {tag}");
        let dir = std::env::temp_dir().join(format!(
            "mali-col-{}-{threads}-{}",
            eng.name(),
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let traces = write_traces(&r, &dir).expect("trace write");
        assert_eq!(base_traces.len(), traces.len(), "trace count under {tag}");
        for (a, b) in base_traces.iter().zip(&traces) {
            assert_eq!(a.file_name(), b.file_name(), "trace names under {tag}");
            assert_eq!(
                std::fs::read(a).unwrap(),
                std::fs::read(b).unwrap(),
                "trace file {:?} differs under {tag}",
                a.file_name()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&base_dir);
    kernel_ir::set_engine(prior);
    sim_pool::set_threads(1);
}
