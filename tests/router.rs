//! End-to-end tests of `harness route` — sharded multi-process serving.
//!
//! The contract under test: a routed full-grid sweep over N backends is
//! byte-identical to the offline `harness jsonl` artifact (and therefore
//! to a single-process `harness serve`), a dead shard degrades to
//! structured `shard-down` failure rows for *its* cells only (the sweep
//! still answers 200), backend backpressure propagates as 429 with the
//! shard's `Retry-After`, and `/metrics`//`/healthz` aggregate across
//! the fleet.

use harness::runner::run_suite_with;
use harness::{to_jsonl, SuiteConfig};
use hpc_kernels::{test_suite, Precision, Variant};
use sim_server::http::{request, request_full};
use sim_server::key::CellKey;
use sim_server::router::Ring;
use std::sync::OnceLock;
use std::time::Duration;

const T: Duration = Duration::from_secs(600);

/// One offline fault-free test-scale sweep, shared across tests: the
/// byte-identity reference for routed full-grid sweeps.
fn offline_jsonl() -> &'static String {
    static OFFLINE: OnceLock<String> = OnceLock::new();
    OFFLINE.get_or_init(|| to_jsonl(&run_suite_with(&test_suite(), &SuiteConfig::default())))
}

fn shard(queue: usize) -> harness::serve::RunningServer {
    shard_traced(queue, None)
}

fn shard_traced(queue: usize, dir: Option<std::path::PathBuf>) -> harness::serve::RunningServer {
    harness::serve::start(harness::ServeConfig {
        addr: "127.0.0.1:0".into(),
        capacity: 1024,
        queue_cap: queue,
        cache_path: None,
        warm: vec![],
        trace_sample: u64::from(dir.is_some()),
        trace_dir: dir,
        slow_ms: None,
        timeout_ms: None,
        ..harness::ServeConfig::default()
    })
    .expect("shard starts")
}

fn router_over(shards: &[&harness::serve::RunningServer]) -> harness::route::RunningRouter {
    router_traced(shards, None)
}

fn router_traced(
    shards: &[&harness::serve::RunningServer],
    dir: Option<std::path::PathBuf>,
) -> harness::route::RunningRouter {
    harness::route::start(harness::RouteConfig {
        addr: "127.0.0.1:0".into(),
        shards: shards.iter().map(|s| s.addr.to_string()).collect(),
        trace_sample: u64::from(dir.is_some()),
        trace_dir: dir,
        slow_ms: None,
        replicas: 1,
        retry_budget: 1,
        breaker_threshold: 3,
        fault_seed: None,
        timeout_ms: None,
        workers: sim_server::http::DEFAULT_WORKERS,
        priority_cells: sim_server::http::DEFAULT_PRIORITY_CELLS,
    })
    .expect("router starts")
}

fn sweep(addr: &str, body: &str) -> (u16, String) {
    let (st, resp) = request(addr, "POST", "/v1/sweep", body.as_bytes(), T).unwrap();
    (st, String::from_utf8(resp).unwrap())
}

fn metric(addr: &str, name: &str) -> u64 {
    let (st, body) = request(addr, "GET", "/metrics", b"", T).unwrap();
    assert_eq!(st, 200);
    let text = String::from_utf8(body).unwrap();
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("metric {name} missing in:\n{text}"))
        .parse()
        .unwrap()
}

/// Cell keys of the full test-scale grid in `cells:"all"` request order
/// (bench-major, then precision, then version — one key per row).
fn full_grid_keys() -> Vec<CellKey> {
    let mut keys = Vec::new();
    for b in test_suite() {
        for prec in Precision::ALL {
            for v in Variant::ALL {
                keys.push(harness::cell_spec("test", None, None, b.name(), v, prec).key());
            }
        }
    }
    keys
}

/// The headline contract: a full-grid sweep routed over two shards is
/// byte-identical to the offline artifact, both shards do real work, and
/// the router's `/metrics` aggregates the fleet.
#[test]
fn two_shard_full_sweep_matches_offline_artifact() {
    let shards = [shard(256), shard(256)];
    let router = router_over(&[&shards[0], &shards[1]]);
    let addr = router.addr.to_string();

    let (st, body) = request(&addr, "GET", "/healthz", b"", T).unwrap();
    assert_eq!((st, body.as_slice()), (200, b"ok\n".as_slice()));

    let req = r#"{"scale":"test","cells":"all"}"#;
    let (st, cold) = sweep(&addr, req);
    assert_eq!(st, 200);
    assert_eq!(
        &cold,
        offline_jsonl(),
        "routed full-grid sweep must be byte-identical to `harness jsonl`"
    );

    // The ring actually partitioned the work: each shard simulated a
    // nonzero share, and the shares cover the grid exactly.
    let a = metric(
        &shards[0].addr.to_string(),
        "sim_server_cells_simulated_total",
    );
    let b = metric(
        &shards[1].addr.to_string(),
        "sim_server_cells_simulated_total",
    );
    assert_eq!(a + b, 72, "shards simulated {a} + {b} cells");
    assert!(a > 0 && b > 0, "one shard got all the work: {a} vs {b}");

    // Warm repeat: cache state must not change response bytes.
    let (st, warm) = sweep(&addr, req);
    assert_eq!(st, 200);
    assert_eq!(cold, warm);

    // Aggregated metrics: summed shard counters plus router-own lines.
    assert_eq!(metric(&addr, "sim_server_cells_simulated_total"), 72);
    assert_eq!(metric(&addr, "sim_server_cache_hits"), 72);
    assert_eq!(metric(&addr, "sim_router_shards"), 2);
    assert_eq!(metric(&addr, "sim_router_shards_up"), 2);
    assert_eq!(metric(&addr, "sim_router_sweeps_total"), 2);
    assert_eq!(metric(&addr, "sim_router_cells_routed_total"), 144);

    // Cell inspection proxies to the owning shard and answers the same
    // bytes a direct hit would.
    let ring = Ring::new(2);
    let key =
        harness::cell_spec("test", None, None, "vecop", Variant::Serial, Precision::F32).key();
    let (st, via_router) = request(&addr, "GET", &format!("/v1/cell/{key}"), b"", T).unwrap();
    assert_eq!(st, 200);
    let owner = shards[ring.shard_of(key)].addr.to_string();
    let (st, direct) = request(&owner, "GET", &format!("/v1/cell/{key}"), b"", T).unwrap();
    assert_eq!(st, 200);
    assert_eq!(via_router, direct);
    let (st, _) = request(&addr, "GET", "/v1/cell/nope", b"", T).unwrap();
    assert_eq!(st, 400);

    router.shutdown().unwrap();
    let [s0, s1] = shards;
    s0.shutdown().unwrap();
    s1.shutdown().unwrap();
}

/// Kill one shard: the sweep still answers 200, the dead shard's cells
/// come back as structured `shard-down` failure rows, and every cell the
/// surviving shard owns is untouched. `/healthz` turns 503 and names the
/// casualty.
#[test]
fn dead_shard_degrades_to_failure_rows_for_its_cells_only() {
    let s0 = shard(256);
    let s1 = shard(256);
    let router = router_over(&[&s0, &s1]);
    let addr = router.addr.to_string();

    let req = r#"{"scale":"test","cells":"all"}"#;
    let (st, healthy) = sweep(&addr, req);
    assert_eq!(st, 200);

    // Take shard 1 down; its listener closes, so the router's next
    // sub-request gets connection-refused.
    s1.shutdown().unwrap();

    let (st, degraded) = sweep(&addr, req);
    assert_eq!(st, 200, "a dead shard must not turn the sweep into a 500");

    let ring = Ring::new(2);
    let keys = full_grid_keys();
    let healthy_rows: Vec<&str> = healthy.lines().collect();
    let degraded_rows: Vec<&str> = degraded.lines().collect();
    assert_eq!(degraded_rows.len(), keys.len());
    let mut dead = 0;
    for ((row, before), key) in degraded_rows.iter().zip(&healthy_rows).zip(&keys) {
        if ring.shard_of(*key) == 1 {
            dead += 1;
            assert!(row.contains("\"status\":\"fail\""), "{row}");
            assert!(row.contains("\"fail_kind\":\"shard-down\""), "{row}");
        } else {
            // Rows the live shard owns keep their identity fields and
            // never carry a shard-down marker. (Ratio columns may differ
            // from the healthy sweep if a serial baseline died.)
            assert!(!row.contains("shard-down"), "{row}");
            let ident = |r: &str| {
                let mut f: Vec<&str> = r.split(',').collect();
                f.truncate(3);
                f.join(",")
            };
            assert_eq!(ident(row), ident(before));
        }
    }
    assert!(dead > 0, "the ring gave shard 1 no cells; test is vacuous");

    let (st, body) = request(&addr, "GET", "/healthz", b"", T).unwrap();
    assert_eq!(st, 503);
    let body = String::from_utf8(body).unwrap();
    assert!(body.contains("shard 0") && body.contains(": ok"), "{body}");
    assert!(body.contains("shard 1"), "{body}");

    assert!(metric(&addr, "sim_router_shard_errors_total") >= 1);
    assert_eq!(metric(&addr, "sim_router_shards_up"), 1);

    router.shutdown().unwrap();
    s0.shutdown().unwrap();
}

/// Observability across the fleet: one trace id follows a sweep from the
/// router to every shard, tracing changes no response bytes, and the
/// router's `/metrics` histogram families are the *exact* bucket-wise
/// sum of the shard histograms — per-cell stage counts equal what a
/// single-process sweep would record, independent of sharding.
#[test]
fn traced_two_shard_sweep_propagates_ids_and_merges_histograms_exactly() {
    use sim_server::http::request_with;
    use sim_server::TRACE_HEADER;
    use telemetry::LatencyHistogram;

    let base = std::env::temp_dir().join(format!("sim-router-e2e-trace-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let s0 = shard_traced(256, Some(base.join("shard0")));
    let s1 = shard_traced(256, Some(base.join("shard1")));
    let router = router_traced(&[&s0, &s1], Some(base.join("router")));
    let addr = router.addr.to_string();

    let id = "feedfacecafef00d";
    let req = r#"{"scale":"test","cells":"all"}"#;
    let (st, headers, body) = request_with(
        &addr,
        "POST",
        "/v1/sweep",
        &[(TRACE_HEADER, id)],
        req.as_bytes(),
        T,
    )
    .unwrap();
    assert_eq!(st, 200);
    let echoed = headers
        .iter()
        .find(|(k, _)| k == "x-sim-trace-id")
        .map(|(_, v)| v.as_str());
    assert_eq!(echoed, Some(id), "headers: {headers:?}");
    assert_eq!(
        std::str::from_utf8(&body).unwrap(),
        offline_jsonl(),
        "tracing must not change routed response bytes"
    );

    // The router stamped its trace id onto both shard sub-requests: each
    // shard's structured log carries the *router's* id.
    for i in 0..2 {
        let log = std::fs::read_to_string(base.join(format!("shard{i}/requests.log"))).unwrap();
        assert!(
            log.lines()
                .any(|l| l.contains(&format!("trace={id}")) && l.contains("endpoint=/v1/cells")),
            "shard {i} never saw trace {id}:\n{log}"
        );
    }

    // The router's own Perfetto trace names each shard fan-out span.
    let trace =
        std::fs::read_to_string(base.join("router").join(format!("req-{id}.json"))).unwrap();
    sim_server::json::parse(&trace).expect("router trace is valid JSON");
    for span in [
        "\"name\":\"shard_0\"",
        "\"name\":\"shard_1\"",
        "\"name\":\"format\"",
    ] {
        assert!(trace.contains(span), "{trace}");
    }

    // Aggregated histograms are the exact bucket-wise sum of the shards'.
    let page = |a: &str| {
        let (st, body) = request(a, "GET", "/metrics", b"", T).unwrap();
        assert_eq!(st, 200);
        String::from_utf8(body).unwrap()
    };
    let (rp, p0, p1) = (
        page(&addr),
        page(&s0.addr.to_string()),
        page(&s1.addr.to_string()),
    );
    for stage in [
        "sim_server_stage_cache_lookup_us",
        "sim_server_stage_queue_wait_us",
        "sim_server_stage_eval_batch_us",
        "sim_server_sweep_time_us",
    ] {
        let h0 =
            LatencyHistogram::parse(&p0, stage).unwrap_or_else(|| panic!("{stage} not on shard 0"));
        let h1 =
            LatencyHistogram::parse(&p1, stage).unwrap_or_else(|| panic!("{stage} not on shard 1"));
        let routed =
            LatencyHistogram::parse(&rp, stage).unwrap_or_else(|| panic!("{stage} not on router"));
        let mut merged = h0;
        merged.merge(&h1);
        assert_eq!(
            routed.to_exposition(stage),
            merged.to_exposition(stage),
            "router aggregation of {stage} must be an exact histogram merge"
        );
    }
    // Per-cell stages record one sample per grid cell no matter how the
    // fleet is sharded: the merged count equals a single-process run's.
    for per_cell in [
        "sim_server_stage_cache_lookup_us",
        "sim_server_stage_queue_wait_us",
        "sim_server_stage_eval_batch_us",
    ] {
        let routed = LatencyHistogram::parse(&rp, per_cell).unwrap();
        assert_eq!(routed.count(), 72, "{per_cell}");
    }

    router.shutdown().unwrap();
    s0.shutdown().unwrap();
    s1.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&base);
}

/// A busy backend (429) makes the whole routed sweep retryable, and the
/// shard's Retry-After survives the hop.
#[test]
fn busy_shard_propagates_429_and_retry_after() {
    let s0 = shard(0); // queue bound 0: every new cell is a 429
    let router = router_over(&[&s0]);
    let addr = router.addr.to_string();

    let body =
        r#"{"scale":"test","cells":[{"bench":"vecop","version":"Serial","precision":"single"}]}"#;
    let (st, headers, resp) = request_full(&addr, "POST", "/v1/sweep", body.as_bytes(), T).unwrap();
    assert_eq!(st, 429);
    let retry = headers
        .iter()
        .find(|(k, _)| k == "retry-after")
        .map(|(_, v)| v.as_str());
    assert_eq!(retry, Some("1"), "headers: {headers:?}");
    assert!(String::from_utf8_lossy(&resp).contains("shard busy"));
    assert_eq!(metric(&addr, "sim_router_rejected_total"), 1);

    router.shutdown().unwrap();
    s0.shutdown().unwrap();
}

/// Malformed sweeps are rejected by the router itself — no shard traffic,
/// proper 400s — and unknown routes get 404.
#[test]
fn router_validates_requests_before_fanning_out() {
    let s0 = shard(16);
    let router = router_over(&[&s0]);
    let addr = router.addr.to_string();

    for (body, want) in [
        ("{not json", "bad JSON"),
        (r#"{"scale":"test"}"#, "missing 'cells'"),
        (
            r#"{"scale":"test","cells":[{"bench":"nope","version":"Serial","precision":"single"}]}"#,
            "unknown benchmark",
        ),
    ] {
        let (st, resp) = sweep(&addr, body);
        assert_eq!(st, 400, "{body} -> {resp}");
        assert!(resp.contains(want), "{body} -> {resp}");
    }
    let (st, _) = request(&addr, "PUT", "/v1/sweep", b"{}", T).unwrap();
    assert_eq!(st, 404);
    assert_eq!(metric(&addr, "sim_router_bad_requests_total"), 3);
    // The backend never saw a sweep.
    assert_eq!(metric(&s0.addr.to_string(), "sim_server_sweeps_total"), 0);

    router.shutdown().unwrap();
    s0.shutdown().unwrap();
}
