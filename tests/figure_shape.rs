//! Scientific shape assertions: the qualitative claims of the paper's
//! Figures 2–4 and §V, checked on the test-scale suite. These are the
//! properties the reproduction must preserve regardless of exact numbers:
//! who wins, where the crossovers are, which bars are missing.

use harness::{headline, run_suite};
use hpc_kernels::{mid_suite, Precision, RunSkip, Variant};
use std::sync::OnceLock;

/// The mid-scale sweep is the expensive part; run it once for all tests.
fn results() -> &'static harness::SuiteResults {
    static RESULTS: OnceLock<harness::SuiteResults> = OnceLock::new();
    RESULTS.get_or_init(|| run_suite(&mid_suite(), false))
}

#[test]
fn optimization_never_loses_and_usually_wins() {
    let r = results();
    for prec in Precision::ALL {
        for b in &r.bench_names {
            let (Some(naive), Some(opt)) = (
                r.speedup(b, Variant::OpenCl, prec),
                r.speedup(b, Variant::OpenClOpt, prec),
            ) else {
                continue;
            };
            assert!(
                opt >= naive * 0.93,
                "{b} {}: OpenCL-Opt ({opt:.2}) clearly lost to naive ({naive:.2})",
                prec.label()
            );
        }
    }
}

#[test]
fn openmp_band_holds() {
    // §V-A: OpenMP speedups sit in a band below 2.0 (paper: 1.2..1.9).
    // Mid-scale inputs still pay a visible fork/join share on the fastest
    // kernels, hence the slightly widened lower bound.
    let r = results();
    for prec in Precision::ALL {
        for b in &r.bench_names {
            let s = r
                .speedup(b, Variant::OpenMp, prec)
                .expect("OpenMP always runs");
            assert!(
                (1.0..2.0).contains(&s),
                "{b} {}: OpenMP speedup {s:.2} outside the plausible band",
                prec.label()
            );
        }
    }
}

#[test]
fn compute_bound_kernels_dominate_memory_bound_on_gpu() {
    // Figure 2's global shape: nbody/2dcon/dmmm (compute/data-reuse heavy)
    // beat spmv/vecop/hist (bandwidth/atomic bound) by a wide margin.
    let r = results();
    let prec = Precision::F32;
    let winners = ["nbody", "2dcon", "dmmm"];
    let laggards = ["spmv", "vecop", "hist"];
    let min_winner = winners
        .iter()
        .map(|b| r.speedup(b, Variant::OpenClOpt, prec).unwrap())
        .fold(f64::INFINITY, f64::min);
    let max_laggard = laggards
        .iter()
        .map(|b| r.speedup(b, Variant::OpenClOpt, prec).unwrap())
        .fold(0.0, f64::max);
    assert!(
        min_winner > max_laggard,
        "compute-bound winners ({min_winner:.2}) must beat bandwidth-bound \
         laggards ({max_laggard:.2})"
    );
}

#[test]
fn amcd_double_gpu_bars_missing() {
    // §V-A: the amcd double-precision OpenCL versions do not compile.
    let r = results();
    for v in [Variant::OpenCl, Variant::OpenClOpt] {
        match r.skip_reason("amcd", v, Precision::F64) {
            Some(RunSkip::CompilerBug(_)) => {}
            other => panic!("expected compiler bug for amcd f64 {v:?}, got {other:?}"),
        }
        assert!(r.cell("amcd", v, Precision::F64).is_none());
    }
    // Single precision runs fine.
    assert!(r.cell("amcd", Variant::OpenCl, Precision::F32).is_some());
}

#[test]
fn gpu_power_stays_near_serial_while_openmp_rises() {
    // Figure 3's story: the second CPU core costs real power; the GPU runs
    // at roughly serial-level board power.
    let r = results();
    let prec = Precision::F32;
    for b in &r.bench_names {
        if let Some(p) = r.power_ratio(b, Variant::OpenMp, prec) {
            assert!(
                p > 1.1,
                "{b}: OpenMP power ratio {p:.2} should exceed serial"
            );
        }
        if let Some(p) = r.power_ratio(b, Variant::OpenCl, prec) {
            assert!(
                (0.6..1.45).contains(&p),
                "{b}: OpenCL power ratio {p:.2} should stay near serial"
            );
        }
    }
}

#[test]
fn opt_energy_always_beats_naive_energy() {
    // §V-C: "for all the benchmarks under study, OpenCL Opt benchmarks
    // have better energy-to-solution than the corresponding non-optimized
    // OpenCL implementations".
    let r = results();
    for prec in Precision::ALL {
        for b in &r.bench_names {
            let (Some(naive), Some(opt)) = (
                r.energy_ratio(b, Variant::OpenCl, prec),
                r.energy_ratio(b, Variant::OpenClOpt, prec),
            ) else {
                continue;
            };
            assert!(
                opt <= naive * 1.05,
                "{b} {}: opt energy {opt:.2} worse than naive {naive:.2}",
                prec.label()
            );
        }
    }
}

#[test]
fn headline_direction_holds_at_mid_scale() {
    // At quarter scale the absolute averages shrink (smaller inputs
    // amortize less launch overhead), but the §V-D direction must hold:
    // the optimized GPU versions are much faster than serial on average
    // and use much less energy. The full-scale harness lands at 7.7x /
    // 34% vs the paper's 8.7x / 32% (EXPERIMENTS.md).
    let r = results();
    let (speedup, energy) = headline(r);
    assert!(speedup > 3.0, "headline speedup {speedup:.2} too low");
    assert!(
        energy < 0.65,
        "headline energy fraction {energy:.2} too high"
    );
}
