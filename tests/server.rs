//! End-to-end tests of the experiment service over a real TCP socket.
//!
//! The contract under test: a served sweep is byte-identical to the
//! offline `harness jsonl` artifact, a warm (cached) response is
//! byte-identical to the cold one that populated it, checkpoints
//! warm-start the cache, the cache persists across server restarts, and
//! backpressure/validation surface as proper HTTP statuses — all
//! regardless of thread count, cache state or arrival order.

use harness::runner::run_suite_with;
use harness::{to_jsonl, SuiteConfig};
use hpc_kernels::{test_suite, Precision, Variant};
use sim_server::http::request;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;

const T: Duration = Duration::from_secs(600);

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sim-server-e2e-{name}-{}", std::process::id()))
}

/// One offline fault-free test-scale sweep, shared across tests: its
/// JSONL artifact is the byte-identity reference and its checkpoint file
/// is the warm-start fixture.
fn offline() -> &'static (String, PathBuf) {
    static OFFLINE: OnceLock<(String, PathBuf)> = OnceLock::new();
    OFFLINE.get_or_init(|| {
        let state = tmp("offline-state");
        let cfg = SuiteConfig {
            checkpoint: Some(state.clone()),
            state_tag: "test".into(),
            ..SuiteConfig::default()
        };
        let results = run_suite_with(&test_suite(), &cfg);
        (to_jsonl(&results), state)
    })
}

fn serve(
    capacity: usize,
    queue: usize,
    cache: Option<PathBuf>,
    warm: Vec<PathBuf>,
) -> harness::serve::RunningServer {
    harness::serve::start(harness::ServeConfig {
        addr: "127.0.0.1:0".into(),
        capacity,
        queue_cap: queue,
        cache_path: cache,
        warm,
        trace_dir: None,
        trace_sample: 0,
        slow_ms: None,
        timeout_ms: None,
        ..harness::ServeConfig::default()
    })
    .expect("server starts")
}

/// A server with request tracing on: every request sampled into `dir`.
fn serve_traced(dir: PathBuf) -> harness::serve::RunningServer {
    harness::serve::start(harness::ServeConfig {
        addr: "127.0.0.1:0".into(),
        capacity: 1024,
        queue_cap: 256,
        cache_path: None,
        warm: vec![],
        trace_dir: Some(dir),
        trace_sample: 1,
        slow_ms: None,
        timeout_ms: None,
        ..harness::ServeConfig::default()
    })
    .expect("traced server starts")
}

fn metric(addr: &str, name: &str) -> u64 {
    let (st, body) = request(addr, "GET", "/metrics", b"", T).unwrap();
    assert_eq!(st, 200);
    let text = String::from_utf8(body).unwrap();
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("metric {name} missing in:\n{text}"))
        .parse()
        .unwrap()
}

fn sweep(addr: &str, body: &str) -> (u16, String) {
    let (st, resp) = request(addr, "POST", "/v1/sweep", body.as_bytes(), T).unwrap();
    (st, String::from_utf8(resp).unwrap())
}

/// Cold sweep simulates; an identical second sweep is served entirely
/// from cache; both bodies are byte-identical to each other and to the
/// offline artifact. Single cells are inspectable by content address.
#[test]
fn cold_then_warm_full_sweep_matches_offline_artifact() {
    let (offline_jsonl, _) = offline();
    let srv = serve(1024, 256, None, vec![]);
    let addr = srv.addr.to_string();

    let (st, body) = request(&addr, "GET", "/healthz", b"", T).unwrap();
    assert_eq!((st, body.as_slice()), (200, b"ok\n".as_slice()));

    let req = r#"{"scale":"test","cells":"all"}"#;
    let (st, cold) = sweep(&addr, req);
    assert_eq!(st, 200);
    assert_eq!(metric(&addr, "sim_server_cache_misses"), 72);
    assert_eq!(metric(&addr, "sim_server_cache_hits"), 0);
    assert_eq!(metric(&addr, "sim_server_cells_simulated_total"), 72);

    let (st, warm) = sweep(&addr, req);
    assert_eq!(st, 200);
    assert_eq!(cold, warm, "cache state must not change response bytes");
    assert_eq!(
        &cold, offline_jsonl,
        "served full-grid sweep must be byte-identical to `harness jsonl`"
    );
    assert_eq!(metric(&addr, "sim_server_cache_hits"), 72);
    assert_eq!(metric(&addr, "sim_server_cells_simulated_total"), 72);

    // Single-cell inspection by content address (vecop Serial single is
    // its own serial baseline, so its row carries speedup 1).
    let key =
        harness::cell_spec("test", None, None, "vecop", Variant::Serial, Precision::F32).key();
    let (st, body) = request(&addr, "GET", &format!("/v1/cell/{key}"), b"", T).unwrap();
    let body = String::from_utf8(body).unwrap();
    assert_eq!(st, 200, "{body}");
    assert!(body.contains(&format!("\"key\":\"{key}\"")), "{body}");
    assert!(body.contains("\"bench\":\"vecop\""), "{body}");
    assert!(body.contains("\"speedup\":1"), "{body}");

    // Unknown key -> 404; malformed key -> 400.
    let (st, _) = request(&addr, "GET", "/v1/cell/ffffffffffffffff", b"", T).unwrap();
    assert_eq!(st, 404);
    let (st, _) = request(&addr, "GET", "/v1/cell/nope", b"", T).unwrap();
    assert_eq!(st, 400);

    srv.shutdown().unwrap();
}

/// Subset sweeps: rows come back in request order, intra-request
/// duplicates coalesce to one simulation, and ratios are computed over
/// the request's own result set (null without a serial baseline).
#[test]
fn subset_sweeps_coalesce_and_order_rows() {
    let srv = serve(64, 64, None, vec![]);
    let addr = srv.addr.to_string();

    // The same cell requested twice in one sweep: two rows, one
    // simulation — deterministic coalescing, no thread races involved.
    let dup = r#"{"scale":"test","cells":[
        {"bench":"vecop","version":"OpenCL","precision":"single"},
        {"bench":"vecop","version":"OpenCL","precision":"single"}]}"#;
    let (st, body) = sweep(&addr, dup);
    assert_eq!(st, 200);
    let rows: Vec<&str> = body.lines().collect();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0], rows[1]);
    assert_eq!(metric(&addr, "sim_server_cells_simulated_total"), 1);
    assert_eq!(metric(&addr, "sim_server_cache_misses"), 1);
    // No serial baseline in the request: ratio columns are null.
    assert!(rows[0].contains("\"speedup\":null"), "{}", rows[0]);

    // Adding the baseline turns the ratios on; row order follows the
    // request, not the suite.
    let with_serial = r#"{"scale":"test","cells":[
        {"bench":"vecop","version":"OpenCL","precision":"single"},
        {"bench":"vecop","version":"Serial","precision":"single"}]}"#;
    let (st, body) = sweep(&addr, with_serial);
    assert_eq!(st, 200);
    let rows: Vec<&str> = body.lines().collect();
    assert_eq!(rows.len(), 2);
    assert!(rows[0].contains("\"version\":\"OpenCL\""), "{}", rows[0]);
    assert!(rows[1].contains("\"version\":\"Serial\""), "{}", rows[1]);
    assert!(!rows[0].contains("\"speedup\":null"), "{}", rows[0]);
    // Only Serial was new; the OpenCL cell came from cache.
    assert_eq!(metric(&addr, "sim_server_cells_simulated_total"), 2);

    srv.shutdown().unwrap();
}

/// Malformed requests get 400s with explanations, never a panic or a
/// simulation.
#[test]
fn invalid_sweeps_are_rejected() {
    let srv = serve(16, 16, None, vec![]);
    let addr = srv.addr.to_string();
    for (body, want) in [
        ("{not json", "bad JSON"),
        (r#"{"scale":"huge","cells":"all"}"#, "unknown scale"),
        (r#"{"scale":"test"}"#, "missing 'cells'"),
        (r#"{"scale":"test","cells":[]}"#, "'cells' is empty"),
        (
            r#"{"scale":"test","cells":[{"bench":"nope","version":"Serial","precision":"single"}]}"#,
            "unknown benchmark",
        ),
        (
            r#"{"scale":"test","cells":[{"bench":"vecop","version":"CUDA","precision":"single"}]}"#,
            "unknown version",
        ),
        (
            r#"{"scale":"test","cells":[{"bench":"vecop","version":"Serial","precision":"half"}]}"#,
            "unknown precision",
        ),
        (
            r#"{"scale":"test","fault_seed":-1,"cells":"all"}"#,
            "unsigned integer",
        ),
    ] {
        let (st, resp) = sweep(&addr, body);
        assert_eq!(st, 400, "{body} -> {resp}");
        assert!(resp.contains(want), "{body} -> {resp}");
    }
    assert_eq!(metric(&addr, "sim_server_bad_requests_total"), 8);
    assert_eq!(metric(&addr, "sim_server_cells_simulated_total"), 0);
    let (st, _) = request(&addr, "PUT", "/v1/sweep", b"{}", T).unwrap();
    assert_eq!(st, 404);
    srv.shutdown().unwrap();
}

/// queue bound 0: every sweep that needs new work is pushed back with
/// 429 before anything is enqueued.
#[test]
fn zero_queue_capacity_rejects_with_429() {
    let srv = serve(16, 0, None, vec![]);
    let addr = srv.addr.to_string();
    let (st, body) = sweep(
        &addr,
        r#"{"scale":"test","cells":[{"bench":"vecop","version":"Serial","precision":"single"}]}"#,
    );
    assert_eq!(st, 429);
    assert!(body.contains("queue full"), "{body}");
    assert_eq!(metric(&addr, "sim_server_cells_simulated_total"), 0);
    assert_eq!(metric(&addr, "sim_server_sweeps_rejected_busy_total"), 1);
    srv.shutdown().unwrap();
}

/// Oversized requests are refused with 413 (not 400, which is reserved
/// for malformed ones) before the body is read, and the connection-level
/// rejection leaves the server fully operational.
#[test]
fn oversized_requests_get_413_and_the_server_survives() {
    use std::io::{Read, Write};

    let srv = serve(16, 16, None, vec![]);
    let addr = srv.addr.to_string();

    // Declared body over the 16 MiB cap: refused up front — no need to
    // send (or allocate) the body itself.
    let mut conn = std::net::TcpStream::connect(&addr).unwrap();
    conn.write_all(b"POST /v1/sweep HTTP/1.1\r\nHost: x\r\nContent-Length: 17000000\r\n\r\n")
        .unwrap();
    let mut resp = String::new();
    let _ = conn.read_to_string(&mut resp);
    assert!(resp.starts_with("HTTP/1.1 413 "), "{resp}");

    // Malformed (non-numeric length) stays a 400.
    let mut conn = std::net::TcpStream::connect(&addr).unwrap();
    conn.write_all(b"POST /v1/sweep HTTP/1.1\r\nHost: x\r\nContent-Length: lots\r\n\r\n")
        .unwrap();
    let mut resp = String::new();
    let _ = conn.read_to_string(&mut resp);
    assert!(resp.starts_with("HTTP/1.1 400 "), "{resp}");

    // The server kept serving throughout.
    let (st, body) = request(&addr, "GET", "/healthz", b"", T).unwrap();
    assert_eq!((st, body.as_slice()), (200, b"ok\n".as_slice()));
    srv.shutdown().unwrap();
}

/// A `simstate v3` checkpoint warm-starts the cache: the first sweep is
/// served entirely from the checkpointed cells and still matches the
/// offline artifact byte for byte.
#[test]
fn checkpoint_warm_start_serves_without_simulating() {
    let (offline_jsonl, state) = offline();
    let srv = serve(1024, 256, None, vec![state.clone()]);
    let addr = srv.addr.to_string();
    let (st, body) = sweep(&addr, r#"{"scale":"test","cells":"all"}"#);
    assert_eq!(st, 200);
    assert_eq!(&body, offline_jsonl);
    assert_eq!(metric(&addr, "sim_server_cache_hits"), 72);
    assert_eq!(metric(&addr, "sim_server_cache_misses"), 0);
    assert_eq!(metric(&addr, "sim_server_cells_simulated_total"), 0);
    srv.shutdown().unwrap();
}

/// The persisted cache survives a server restart: the second process
/// serves the same bytes without re-simulating.
#[test]
fn cache_persists_across_restarts() {
    let cache = tmp("persist-cache");
    let _ = std::fs::remove_file(&cache);
    let req = r#"{"scale":"test","cells":[
        {"bench":"hist","version":"Serial","precision":"single"},
        {"bench":"hist","version":"OpenCL-Opt","precision":"single"}]}"#;

    let srv = serve(64, 64, Some(cache.clone()), vec![]);
    let addr = srv.addr.to_string();
    let (st, first) = sweep(&addr, req);
    assert_eq!(st, 200);
    srv.shutdown().unwrap();
    assert!(cache.exists(), "shutdown persists the cache");

    let srv = serve(64, 64, Some(cache.clone()), vec![]);
    let addr = srv.addr.to_string();
    let (st, second) = sweep(&addr, req);
    assert_eq!(st, 200);
    assert_eq!(first, second);
    assert_eq!(metric(&addr, "sim_server_cache_hits"), 2);
    assert_eq!(metric(&addr, "sim_server_cells_simulated_total"), 0);
    srv.shutdown().unwrap();
    let _ = std::fs::remove_file(&cache);
}

/// Request tracing is purely observational: with `--trace-dir` on and
/// every request sampled, the response bytes are still byte-identical to
/// the offline artifact, the client-supplied trace id is echoed back and
/// names the Perfetto file on disk, the trace is valid JSON naming every
/// pipeline stage, and the structured request log carries the stage
/// timings.
#[test]
fn tracing_never_changes_response_bytes_and_writes_artifacts() {
    use sim_server::http::request_with;
    use sim_server::TRACE_HEADER;

    let (offline_jsonl, _) = offline();
    let dir = tmp("trace-dir");
    let _ = std::fs::remove_dir_all(&dir);
    let srv = serve_traced(dir.clone());
    let addr = srv.addr.to_string();

    // Client-supplied id: accepted, echoed, and it names the artifact.
    let id = "00000000deadbeef";
    let req = r#"{"scale":"test","cells":"all"}"#;
    let (st, headers, body) = request_with(
        &addr,
        "POST",
        "/v1/sweep",
        &[(TRACE_HEADER, id)],
        req.as_bytes(),
        T,
    )
    .unwrap();
    assert_eq!(st, 200);
    let echoed = headers
        .iter()
        .find(|(k, _)| k == "x-sim-trace-id")
        .map(|(_, v)| v.as_str());
    assert_eq!(echoed, Some(id), "headers: {headers:?}");
    assert_eq!(
        std::str::from_utf8(&body).unwrap(),
        offline_jsonl,
        "tracing must not change response bytes"
    );

    // The sampled trace is on disk, is valid JSON, and names each stage.
    let trace_path = dir.join(format!("req-{id}.json"));
    let trace = std::fs::read_to_string(&trace_path).expect("sampled trace written");
    sim_server::json::parse(&trace).expect("trace is valid JSON");
    for stage in [
        "parse",
        "cache_lookup",
        "admit",
        "queue_wait",
        "eval_batch",
        "format",
    ] {
        assert!(trace.contains(&format!("\"name\":\"{stage}\"")), "{trace}");
    }

    // One structured log line per request, stage timings inline.
    let log = std::fs::read_to_string(dir.join("requests.log")).unwrap();
    let line = log
        .lines()
        .find(|l| l.contains(&format!("trace={id}")))
        .unwrap_or_else(|| panic!("no log line for {id} in:\n{log}"));
    for field in [
        "endpoint=/v1/sweep",
        "status=200",
        "cells=72",
        "parse_us=",
        "eval_batch_us=",
        "sampled=yes",
    ] {
        assert!(line.contains(field), "{line}");
    }

    // A request without the header gets a generated 16-hex id echoed.
    let (st, headers, _) =
        request_with(&addr, "POST", "/v1/sweep", &[], req.as_bytes(), T).unwrap();
    assert_eq!(st, 200);
    let generated = headers
        .iter()
        .find(|(k, _)| k == "x-sim-trace-id")
        .map(|(_, v)| v.as_str())
        .expect("trace id echoed even when client sent none");
    assert_eq!(generated.len(), 16, "{generated}");
    assert!(generated.chars().all(|c| c.is_ascii_hexdigit()));

    // The metrics page grew histogram families and metadata.
    let (st, page) = request(&addr, "GET", "/metrics", b"", T).unwrap();
    assert_eq!(st, 200);
    let page = String::from_utf8(page).unwrap();
    assert!(page.contains("# HELP sim_server_cache_hits"), "{page}");
    assert!(page.contains("# TYPE sim_server_sweep_time_us histogram"));
    assert!(page.contains("sim_server_sweep_time_us_bucket{le=\"+Inf\"}"));
    assert!(page.contains("sim_server_stage_eval_batch_us_count 72"));
    assert!(page.contains("sim_server_stage_queue_wait_us_count 72"));
    assert!(page.contains("sim_server_stage_cache_lookup_us_count 144"));
    assert!(metric(&addr, "sim_server_uptime_seconds") < 600);
    // Legacy p50/p95 gauges survive for existing dashboards.
    assert!(page.contains("sim_server_sweep_time_p95_us "), "{page}");

    srv.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Fault seeds are part of the content address: the same cell with a
/// different (or no) seed is a different key and simulates separately,
/// and a seeded served cell matches the offline chaos pipeline.
#[test]
fn fault_seed_is_part_of_the_cell_identity() {
    let k0 = harness::cell_spec("test", None, None, "red", Variant::Serial, Precision::F32).key();
    let k7 = harness::cell_spec(
        "test",
        Some(7),
        None,
        "red",
        Variant::Serial,
        Precision::F32,
    )
    .key();
    assert_ne!(k0, k7);

    let srv = serve(64, 64, None, vec![]);
    let addr = srv.addr.to_string();
    let cell = r#"{"bench":"red","version":"Serial","precision":"single"}"#;
    let (st, plain) = sweep(&addr, &format!(r#"{{"scale":"test","cells":[{cell}]}}"#));
    assert_eq!(st, 200);
    let (st, seeded) = sweep(
        &addr,
        &format!(r#"{{"scale":"test","fault_seed":7,"cells":[{cell}]}}"#),
    );
    assert_eq!(st, 200);
    assert_eq!(metric(&addr, "sim_server_cells_simulated_total"), 2);

    // Offline equivalent of the seeded run: same per-cell fault plan.
    let cfg = SuiteConfig {
        faults: Some(sim_faults::FaultPlan::new(7)),
        ..SuiteConfig::default()
    };
    let offline_seeded = run_suite_with(&test_suite(), &cfg);
    let row = harness::jsonl_row(&offline_seeded, "red", Variant::Serial, Precision::F32);
    assert_eq!(seeded.trim_end(), row);
    // And the unseeded row differs only if a fault actually fired; both
    // must at minimum be valid rows for the same cell.
    assert!(plain.contains("\"bench\":\"red\""));

    srv.shutdown().unwrap();
}

/// The reactor holds open sockets without spending a thread or a worker
/// on them: with 1000 idle connections parked on the server, a full
/// sweep still completes and stays byte-identical to `harness jsonl`.
#[test]
fn thousand_idle_connections_do_not_perturb_sweep_bytes() {
    let (offline_jsonl, _) = offline();
    let srv = serve(1024, 256, None, vec![]);
    let addr = srv.addr.to_string();

    // Park 1000 open connections that never send a byte. Kept alive
    // until the end of the test; the server must serve around them.
    let idle: Vec<std::net::TcpStream> = (0..1000)
        .map(|i| {
            std::net::TcpStream::connect(&addr)
                .unwrap_or_else(|e| panic!("idle connection {i} failed: {e}"))
        })
        .collect();
    assert_eq!(idle.len(), 1000);

    let (st, body) = sweep(&addr, r#"{"scale":"test","cells":"all"}"#);
    assert_eq!(st, 200);
    assert_eq!(
        &body, offline_jsonl,
        "sweep under 1000 idle connections must match the offline artifact"
    );

    // The parked sockets are still usable afterwards.
    let (st, _) = request(&addr, "GET", "/healthz", b"", T).unwrap();
    assert_eq!(st, 200);
    drop(idle);
    srv.shutdown().unwrap();
}

/// Priority scheduling end to end: with one worker and several bulk
/// full-grid sweeps queued, an interactive request sent afterwards is
/// answered before the queued bulk work, and the per-lane queue-wait
/// histograms record both lanes.
#[test]
fn interactive_request_overtakes_queued_bulk_sweeps() {
    let srv = harness::serve::start(harness::ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        priority_cells: 2,
        ..harness::ServeConfig::default()
    })
    .expect("server starts");
    let addr = srv.addr.to_string();

    // Four bulk sweeps with distinct fault seeds: nothing is cached, so
    // each occupies the single worker for a full-grid evaluation.
    let order: std::sync::Mutex<Vec<String>> = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for seed in 1..=4u64 {
            let addr = &addr;
            let order = &order;
            scope.spawn(move || {
                let body = format!(r#"{{"scale":"test","fault_seed":{seed},"cells":"all"}}"#);
                let (st, _) = sweep(addr, &body);
                assert_eq!(st, 200);
                order.lock().unwrap().push(format!("bulk{seed}"));
            });
        }
        // Give the bulk sweeps time to be accepted and queued, then send
        // the interactive request; it must jump the bulk queue.
        std::thread::sleep(Duration::from_millis(300));
        let (st, _) = request(&addr, "GET", "/healthz", b"", T).unwrap();
        assert_eq!(st, 200);
        order.lock().unwrap().push("interactive".into());
    });
    let order = order.into_inner().unwrap();
    assert_eq!(order.len(), 5, "all five requests completed: {order:?}");
    let pos = |name: &str| order.iter().position(|o| o == name).unwrap();
    assert!(
        pos("interactive") < order.len() - 1,
        "interactive request must finish before the last queued bulk sweep: {order:?}"
    );

    // Both lanes' wait histograms recorded samples, and bulk dispatches
    // are visible per lane.
    assert!(metric(&addr, "sim_server_lane_wait_interactive_us_count") >= 1);
    assert!(metric(&addr, "sim_server_lane_wait_bulk_us_count") >= 4);
    assert!(metric(&addr, "sim_server_lane_dispatched_bulk_total") >= 4);
    assert_eq!(metric(&addr, "sim_server_wait_timeouts_total"), 0);
    srv.shutdown().unwrap();
}
