//! Integration tests of the `mali-hpc` optimization passes against the
//! device models: transformations must preserve semantics *and* move the
//! simulated performance in the direction §III promises.

use kernel_ir::prelude::*;
use kernel_ir::Access;
use mali_gpu::MaliT604;
use mali_hpc::{
    autotune, local_divides_global, sweep, unroll, vectorize, wg_size_candidates, SearchSpace,
};

/// `out[i] = a[i]*a[i] + b[i]` — a clean vectorization target.
fn fma_map() -> Program {
    let mut kb = KernelBuilder::new("fma_map");
    let a = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
    let b = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
    let o = kb.arg_global(Scalar::F32, Access::WriteOnly, true);
    let gid = kb.query_global_id(0);
    let va = kb.load(Scalar::F32, a, gid.into());
    let vb = kb.load(Scalar::F32, b, gid.into());
    let r = kb.mad(va.into(), va.into(), vb.into(), VType::scalar(Scalar::F32));
    kb.store(o, gid.into(), r.into());
    kb.finish()
}

fn run_on_gpu(p: &Program, n: usize, items: usize, wg: usize) -> (Vec<f32>, f64) {
    let mut pool = MemoryPool::new();
    let a = pool.add((0..n).map(|i| (i % 13) as f32).collect::<Vec<_>>().into());
    let b = pool.add((0..n).map(|i| (i % 7) as f32).collect::<Vec<_>>().into());
    let o = pool.add(kernel_ir::BufferData::zeroed(Scalar::F32, n));
    let rep = MaliT604::default()
        .run(
            p,
            &[
                ArgBinding::Global(a),
                ArgBinding::Global(b),
                ArgBinding::Global(o),
            ],
            &mut pool,
            NDRange::d1(items, wg),
        )
        .unwrap();
    (pool.get(o).as_f32().to_vec(), rep.time_s)
}

#[test]
fn vectorize_preserves_results_and_speeds_up_on_device() {
    let n = 1 << 16;
    let p = fma_map();
    let (base_out, base_t) = run_on_gpu(&p, n, n, 128);
    for w in [2u8, 4, 8] {
        let v = vectorize(&p, w).unwrap();
        let (out, t) = run_on_gpu(&v.program, n, n / w as usize, 128);
        assert_eq!(base_out, out, "width {w} changed results");
        assert!(
            t < base_t,
            "width {w} should beat scalar ({t:.3e} vs {base_t:.3e})"
        );
    }
}

#[test]
fn vectorize_then_widths_rank_sanely() {
    // Wider is not always better (§III-B "Vector Sizes"): past the LS
    // beat width, returns flatten while register footprint keeps rising.
    let n = 1 << 16;
    let p = fma_map();
    let mut footprints = Vec::new();
    let mut times = Vec::new();
    for w in [4u8, 8, 16] {
        let v = vectorize(&p, w).unwrap();
        footprints.push(v.program.register_footprint());
        let (_, t) = run_on_gpu(&v.program, n, n / w as usize, 64);
        times.push(t);
    }
    assert!(
        footprints.windows(2).all(|w| w[0] <= w[1]),
        "footprint monotone in width"
    );
    let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(times[2] <= times[0] * 1.5, "width 16 should not collapse");
    assert!(
        best < times[0] * 1.01,
        "width 8/16 should at least match width 4"
    );
}

/// Unroll composed after vectorize: still correct on-device and the
/// footprint cost is visible.
#[test]
fn unroll_composes_with_vectorize_on_device() {
    // Row-sum kernel with a loop so the unroller has a target.
    let mut kb = KernelBuilder::new("rowsum");
    let a = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
    let b = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
    let o = kb.arg_global(Scalar::F32, Access::WriteOnly, true);
    let gid = kb.query_global_id(0);
    let base = kb.bin(
        BinOp::Mul,
        gid.into(),
        Operand::ImmI(32),
        VType::scalar(Scalar::U32),
    );
    let acc = kb.mov(Operand::ImmF(0.0), VType::scalar(Scalar::F32));
    kb.for_loop(
        Operand::ImmI(0),
        Operand::ImmI(32),
        Operand::ImmI(4),
        |kb, i| {
            let idx = kb.bin(
                BinOp::Add,
                base.into(),
                i.into(),
                VType::scalar(Scalar::U32),
            );
            let v = kb.vload(Scalar::F32, 4, a, idx.into());
            let w = kb.vload(Scalar::F32, 4, b, idx.into());
            let s = kb.bin(BinOp::Add, v.into(), w.into(), VType::new(Scalar::F32, 4));
            let h = kb.horiz(HorizOp::Add, s);
            kb.bin_into(acc, BinOp::Add, acc.into(), h.into());
        },
    );
    kb.store(o, gid.into(), acc.into());
    let p = kb.finish();

    let n = 32 * 512;
    let (base_out, _) = run_on_gpu(&p, n, 512, 64);
    let u = unroll(&p, 4).unwrap();
    assert!(u.register_footprint() > p.register_footprint());
    let (out, _) = run_on_gpu(&u, n, 512, 64);
    assert_eq!(base_out, out);
}

#[test]
fn wg_sweep_on_device_finds_a_divisible_winner() {
    let n = 1 << 14;
    let p = fma_map();
    let result = sweep(&wg_size_candidates(256), |&wg| {
        if !local_divides_global(n, wg) {
            return None;
        }
        Some(run_on_gpu(&p, n, n, wg).1)
    });
    let best = *result.best().expect("some wg works");
    assert!(n % best == 0);
    assert!(result.spread().unwrap() >= 1.0);
}

#[test]
fn autotune_against_the_device_beats_the_naive_launch() {
    let n = 1 << 14;
    let base = fma_map();
    let space = SearchSpace {
        widths: vec![1, 2, 4, 8],
        unrolls: vec![1], // no loop to unroll in a map kernel
        work_groups: vec![32, 64, 128],
    };
    let result = autotune(&base, &space, |p, divisor, wg| {
        let items = n / divisor;
        if !local_divides_global(items, wg) {
            return None;
        }
        Some(run_on_gpu(p, n, items, wg).1)
    });
    let (c, best_cost) = result.best().expect("search succeeds");
    assert!(
        c.width > 1,
        "the tuner must discover vectorization (got {c:?})"
    );
    let gain = result.gain_over_baseline().expect("scalar baseline ran");
    assert!(gain > 1.3, "autotuned gain {gain:.2} too small");
    assert!(best_cost > 0.0);
    // The winning program actually runs and is correct.
    let p = result.best_program.as_ref().unwrap();
    let (out, _) = run_on_gpu(p, n, n / c.width as usize, c.work_group);
    let (reference, _) = run_on_gpu(&base, n, n, 64);
    assert_eq!(out, reference);
}

#[test]
fn vectorizer_diagnostics_cover_the_papers_benchmarks() {
    use hpc_kernels::{hist::Hist, nbody::Nbody, spmv::Spmv, Precision};
    use mali_hpc::VectorizeRefusal;
    // hist: atomics.
    let h = Hist::test_size().kernel(Precision::F32);
    assert_eq!(vectorize(&h, 4).unwrap_err(), VectorizeRefusal::HasAtomic);
    // spmv: loop (and indirect accesses behind it).
    let s = Spmv::test_size().kernel(Precision::F32, kernel_ir::Hints::default());
    assert!(matches!(
        vectorize(&s, 4).unwrap_err(),
        VectorizeRefusal::HasLoop | VectorizeRefusal::NonGidIndexing
    ));
    // nbody: the all-pairs loop.
    let nb = Nbody::test_size().kernel(Precision::F32, kernel_ir::Hints::default());
    assert_eq!(vectorize(&nb, 4).unwrap_err(), VectorizeRefusal::HasLoop);
}
