//! The parallel engine's determinism contract: running the suite with
//! `SIM_THREADS=1` and `SIM_THREADS=8` must produce **byte-identical**
//! results — every cell's timing, energy, counters and skip reasons, and
//! every exported artifact (CSV, JSONL, Chrome trace files).
//!
//! This works because the engine decomposes each work-group's cost
//! accounting into a per-group op-side shard plus an ordered replay of its
//! recorded memory accesses, and absorbs both in ascending group order on
//! every code path (see `kernel_ir::trace::ShardTracer`). Suite cells are
//! likewise independent, with per-cell meter seeds.

use harness::{
    run_suite, run_suite_with, to_csv, to_jsonl, write_traces, CellEntry, SuiteConfig, SuiteResults,
};
use hpc_kernels::test_suite;
use std::path::PathBuf;

fn suite_at(threads: usize) -> SuiteResults {
    sim_pool::set_threads(threads);
    run_suite(&test_suite(), false)
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mali-hpc-determinism-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn suite_is_bit_identical_across_thread_counts() {
    let r1 = suite_at(1);
    let r8 = suite_at(8);

    // Every cell, field by field, at the bit level.
    assert_eq!(r1.bench_names, r8.bench_names);
    let mut k1: Vec<_> = r1.cells.keys().map(|k| format!("{k:?}")).collect();
    let mut k8: Vec<_> = r8.cells.keys().map(|k| format!("{k:?}")).collect();
    k1.sort();
    k8.sort();
    assert_eq!(k1, k8, "same set of cells");
    for (key, e1) in &r1.cells {
        let e8 = &r8.cells[key];
        match (e1, e8) {
            (CellEntry::Ok(c1), CellEntry::Ok(c8)) => {
                let tag = format!("{key:?}");
                assert_eq!(
                    c1.outcome.time_s.to_bits(),
                    c8.outcome.time_s.to_bits(),
                    "time_s differs for {tag}"
                );
                assert_eq!(
                    c1.energy_j.to_bits(),
                    c8.energy_j.to_bits(),
                    "energy_j differs for {tag}"
                );
                assert_eq!(
                    c1.measurement.mean_power_w.to_bits(),
                    c8.measurement.mean_power_w.to_bits(),
                    "mean power differs for {tag}"
                );
                assert_eq!(c1.iterations, c8.iterations, "iterations differ for {tag}");
                assert_eq!(c1.counters, c8.counters, "counters differ for {tag}");
                assert_eq!(
                    c1.outcome.max_rel_err.to_bits(),
                    c8.outcome.max_rel_err.to_bits(),
                    "validation error differs for {tag}"
                );
                assert_eq!(c1.outcome.note, c8.outcome.note, "note differs for {tag}");
                assert_eq!(c1.attempts, c8.attempts, "attempts differ for {tag}");
            }
            (CellEntry::Skipped(s1), CellEntry::Skipped(s8)) => {
                assert_eq!(format!("{s1:?}"), format!("{s8:?}"), "skip reason differs");
            }
            (CellEntry::Failed(f1), CellEntry::Failed(f8)) => {
                assert_eq!(f1, f8, "failure differs for {key:?}");
            }
            _ => panic!("cell {key:?} succeeded under one thread count only"),
        }
    }

    // Exported artifacts, byte for byte.
    assert_eq!(to_csv(&r1), to_csv(&r8), "CSV export differs");
    assert_eq!(to_jsonl(&r1), to_jsonl(&r8), "JSONL export differs");

    let d1 = tmpdir("t1");
    let d8 = tmpdir("t8");
    let p1 = write_traces(&r1, &d1).expect("trace write (serial)");
    let p8 = write_traces(&r8, &d8).expect("trace write (parallel)");
    assert_eq!(p1.len(), p8.len(), "trace file count differs");
    for (a, b) in p1.iter().zip(&p8) {
        assert_eq!(a.file_name(), b.file_name());
        assert_eq!(
            std::fs::read(a).unwrap(),
            std::fs::read(b).unwrap(),
            "trace file {:?} differs",
            a.file_name()
        );
    }
    assert_eq!(
        std::fs::read(d1.join("metrics.jsonl")).unwrap(),
        std::fs::read(d8.join("metrics.jsonl")).unwrap(),
        "metrics.jsonl differs"
    );
    let _ = std::fs::remove_dir_all(&d1);
    let _ = std::fs::remove_dir_all(&d8);
}

/// The same contract with the optimizer on: a `SIM_PASSES`-style full
/// pipeline must keep the sweep byte-identical across `SIM_THREADS` = {1,8}
/// × both execution engines. Optimization happens once per launch on the
/// thread executing the cell, so neither worker count nor engine may see a
/// different program — and the passes themselves are deterministic by
/// construction (ordered maps, no addresses, no iteration-order
/// dependence). The pipeline rides in `SuiteConfig::passes` because the
/// suite runner distributes cells across pool workers, where a
/// `with_passes` thread-local override installed here would be invisible.
#[test]
fn optimized_sweep_is_bit_identical_across_threads_and_engines() {
    use kernel_ir::opt::Pipeline;
    use kernel_ir::Engine;

    let configured = kernel_ir::engine();
    let optimized_suite = |threads: usize, engine: Engine| {
        kernel_ir::set_engine(engine);
        sim_pool::set_threads(threads);
        let cfg = SuiteConfig {
            passes: Some(Pipeline::full()),
            ..SuiteConfig::default()
        };
        run_suite_with(&test_suite(), &cfg)
    };
    let base = optimized_suite(1, Engine::Scalar);
    let base_csv = to_csv(&base);
    let base_jsonl = to_jsonl(&base);
    for (threads, engine) in [
        (8, Engine::Scalar),
        (1, Engine::Columnar),
        (8, Engine::Columnar),
    ] {
        let r = optimized_suite(threads, engine);
        assert_eq!(
            base_csv,
            to_csv(&r),
            "optimized CSV differs at {threads} threads on {:?}",
            engine
        );
        assert_eq!(
            base_jsonl,
            to_jsonl(&r),
            "optimized JSONL differs at {threads} threads on {:?}",
            engine
        );
    }
    kernel_ir::set_engine(configured);
    sim_pool::set_threads(1);
}
