//! End-to-end integration: host API → compiler → GPU device → interpreter
//! → cache/power models, spanning every crate in the workspace.

use kernel_ir::prelude::*;
use kernel_ir::Access;
use mali_gpu::MaliT604;
use ocl_runtime::{Context, EventKind, KernelArg, MemFlags};
use powersim::{PowerModel, Wt230};

/// The full host workflow of the paper's recommended data path: allocate
/// with ALLOC_HOST_PTR, fill via map, launch, read back via map.
#[test]
fn recommended_host_flow_end_to_end() {
    let n = 4096;
    let mut ctx = Context::new(MaliT604::default());
    let buf = ctx.create_buffer(Scalar::F32, n, MemFlags::AllocHostPtr);

    // Fill through a mapping (zero-copy).
    {
        let data = ctx.enqueue_map_buffer(buf).unwrap();
        if let kernel_ir::BufferData::F32(v) = data {
            for (i, x) in v.iter_mut().enumerate() {
                *x = i as f32;
            }
        }
    }
    ctx.enqueue_unmap(buf).unwrap();

    // Kernel: x[i] = sqrt(x[i]).
    let mut kb = KernelBuilder::new("sqrt_map");
    let a = kb.arg_global(Scalar::F32, Access::ReadWrite, true);
    let gid = kb.query_global_id(0);
    let v = kb.load(Scalar::F32, a, gid.into());
    let s = kb.un(UnOp::Sqrt, v.into(), VType::scalar(Scalar::F32));
    kb.store(a, gid.into(), s.into());
    let k = ctx.build_kernel(kb.finish()).unwrap();

    let info = ctx
        .enqueue_nd_range(&k, [n, 1, 1], None, &[KernelArg::Buf(buf)])
        .unwrap();
    assert!(info.report.time_s > 0.0);

    // Results visible through another mapping.
    let data = ctx.enqueue_map_buffer(buf).unwrap();
    let out = data.as_f32();
    assert_eq!(out[0], 0.0);
    assert_eq!(out[4], 2.0);
    assert_eq!(out[2500], (2500f32).sqrt());
    ctx.enqueue_unmap(buf).unwrap();

    // The profiled queue recorded the whole story.
    let events = ctx.finish();
    let kinds: Vec<bool> = events
        .iter()
        .map(|e| matches!(e.kind, EventKind::Kernel { .. }))
        .collect();
    assert_eq!(events.len(), 5); // map, unmap, kernel, map, unmap
    assert_eq!(kinds, [false, false, true, false, false]);
}

/// Kernel activity flows into the power model and the meter coherently.
#[test]
fn activity_to_energy_pipeline() {
    let n = 1 << 16;
    let mut ctx = Context::new(MaliT604::default());
    let buf = ctx.create_buffer_init(vec![1.5f32; n].into(), MemFlags::AllocHostPtr);
    let mut kb = KernelBuilder::new("scale");
    let a = kb.arg_global(Scalar::F32, Access::ReadWrite, true);
    let gid = kb.query_global_id(0);
    let v = kb.load(Scalar::F32, a, gid.into());
    let s = kb.bin(
        BinOp::Mul,
        v.into(),
        Operand::ImmF(2.0),
        VType::scalar(Scalar::F32),
    );
    kb.store(a, gid.into(), s.into());
    let k = ctx.build_kernel(kb.finish()).unwrap();
    let info = ctx
        .enqueue_nd_range(&k, [n, 1, 1], Some([128, 1, 1]), &[KernelArg::Buf(buf)])
        .unwrap();

    let model = PowerModel::default();
    let act = info.report.activity;
    assert!(act.gpu_active_s > 0.0);
    assert!(act.dram_bytes > 0);
    let p = model.average_power(&act);
    // GPU-active power must exceed idle but stay under the full-tilt bound.
    assert!(p > model.board_idle_w + 0.3);
    assert!(p < 8.0);

    let mut meter = Wt230::with_defaults(5);
    let m = meter.measure(&model, &act.repeat(10_000), 20);
    let analytic = model.energy(&act) * 10_000.0;
    assert!((m.mean_energy_j - analytic).abs() / analytic < 0.005);
}

/// The same IR program produces identical results on the CPU and GPU
/// devices — the cross-device functional-equivalence guarantee everything
/// else rests on.
#[test]
fn cpu_and_gpu_agree_bitwise() {
    let n = 2048;
    let mut kb = KernelBuilder::new("poly");
    let a = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
    let o = kb.arg_global(Scalar::F32, Access::WriteOnly, true);
    let gid = kb.query_global_id(0);
    let v = kb.load(Scalar::F32, a, gid.into());
    let v2 = kb.mad(
        v.into(),
        v.into(),
        Operand::ImmF(1.0),
        VType::scalar(Scalar::F32),
    );
    let v3 = kb.un(UnOp::Rsqrt, v2.into(), VType::scalar(Scalar::F32));
    kb.store(o, gid.into(), v3.into());
    let p = kb.finish();

    let input: Vec<f32> = (0..n).map(|i| i as f32 * 0.37 - 300.0).collect();

    let run_gpu = || {
        let mut pool = MemoryPool::new();
        let ab = pool.add(input.clone().into());
        let ob = pool.add(kernel_ir::BufferData::zeroed(Scalar::F32, n));
        MaliT604::default()
            .run(
                &p,
                &[ArgBinding::Global(ab), ArgBinding::Global(ob)],
                &mut pool,
                NDRange::d1(n, 64),
            )
            .unwrap();
        pool.get(ob).as_f32().to_vec()
    };
    let run_cpu = |cores| {
        let mut pool = MemoryPool::new();
        let ab = pool.add(input.clone().into());
        let ob = pool.add(kernel_ir::BufferData::zeroed(Scalar::F32, n));
        cpu_sim::CortexA15::default()
            .run(
                &p,
                &[ArgBinding::Global(ab), ArgBinding::Global(ob)],
                &mut pool,
                NDRange::d1(n, 64),
                cores,
            )
            .unwrap();
        pool.get(ob).as_f32().to_vec()
    };
    let gpu = run_gpu();
    assert_eq!(
        gpu,
        run_cpu(1),
        "GPU vs 1-core CPU results must be identical"
    );
    assert_eq!(
        gpu,
        run_cpu(2),
        "GPU vs 2-core CPU results must be identical"
    );
}

/// Buffers created UseHostPtr + write/read round-trip correctly and cost
/// more than the mapped path (the §III-A motivation, as an invariant).
#[test]
fn copy_path_roundtrip_and_cost() {
    let n = 1 << 18;
    let mut ctx = Context::new(MaliT604::default());
    let b = ctx.create_buffer(Scalar::F32, n, MemFlags::UseHostPtr);
    let data: Vec<f32> = (0..n).map(|i| (i % 97) as f32).collect();
    ctx.enqueue_write_buffer(b, data.clone().into()).unwrap();
    let back = ctx.enqueue_read_buffer(b).unwrap();
    assert_eq!(back.as_f32(), data.as_slice());
    let (t_all, act) = ctx.timeline(false);
    assert!(t_all > 2.0 * (n as f64 * 4.0) / ctx.host_costs.memcpy_bw * 0.9);
    assert!(act.dram_bytes >= 4 * (n as u64) * 4);
}
