//! End-to-end tests of the serving fleet's network fault tolerance
//! (DESIGN.md §16): deterministic network chaos in the router's fan-out
//! client, seeded retries, per-shard circuit breakers, and replica
//! failover on the ring.
//!
//! The headline contract: with `--replicas 2`, a routed full-grid sweep
//! that loses a shard mid-run emits JSONL *byte-identical* to the
//! offline `harness jsonl` artifact — zero `shard-down` rows — because
//! every key fails over to its distinct ring-successor owner. With
//! replicas disabled the same loss degrades to structured `shard-down`
//! rows and an open breaker, exactly as before.

use harness::runner::run_suite_with;
use harness::{to_jsonl, SuiteConfig};
use hpc_kernels::{test_suite, Precision, Variant};
use sim_server::http::request;
use sim_server::router::Ring;
use std::sync::OnceLock;
use std::time::Duration;

const T: Duration = Duration::from_secs(600);

/// The byte-identity reference: one offline fault-free test-scale sweep.
fn offline_jsonl() -> &'static String {
    static OFFLINE: OnceLock<String> = OnceLock::new();
    OFFLINE.get_or_init(|| to_jsonl(&run_suite_with(&test_suite(), &SuiteConfig::default())))
}

fn shard() -> harness::serve::RunningServer {
    harness::serve::start(harness::ServeConfig {
        addr: "127.0.0.1:0".into(),
        capacity: 1024,
        queue_cap: 256,
        cache_path: None,
        warm: vec![],
        trace_dir: None,
        trace_sample: 0,
        slow_ms: None,
        timeout_ms: None,
        ..harness::ServeConfig::default()
    })
    .expect("shard starts")
}

struct RouterKnobs {
    replicas: usize,
    retry_budget: u32,
    breaker_threshold: u32,
    fault_seed: Option<u64>,
}

fn router_with(
    shards: &[&harness::serve::RunningServer],
    knobs: RouterKnobs,
) -> harness::route::RunningRouter {
    harness::route::start(harness::RouteConfig {
        addr: "127.0.0.1:0".into(),
        shards: shards.iter().map(|s| s.addr.to_string()).collect(),
        replicas: knobs.replicas,
        retry_budget: knobs.retry_budget,
        breaker_threshold: knobs.breaker_threshold,
        fault_seed: knobs.fault_seed,
        timeout_ms: None,
        trace_dir: None,
        trace_sample: 0,
        slow_ms: None,
        workers: sim_server::http::DEFAULT_WORKERS,
        priority_cells: sim_server::http::DEFAULT_PRIORITY_CELLS,
    })
    .expect("router starts")
}

fn sweep(addr: &str) -> (u16, String) {
    let body = r#"{"scale":"test","cells":"all"}"#;
    let (st, resp) = request(addr, "POST", "/v1/sweep", body.as_bytes(), T).unwrap();
    (st, String::from_utf8(resp).unwrap())
}

/// Read one metric line, with or without labels, e.g.
/// `metric(addr, "sim_router_breaker_state{shard=\"1\"}")`.
fn metric(addr: &str, name: &str) -> u64 {
    let (st, body) = request(addr, "GET", "/metrics", b"", T).unwrap();
    assert_eq!(st, 200);
    let text = String::from_utf8(body).unwrap();
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("metric {name} missing in:\n{text}"))
        .parse()
        .unwrap()
}

/// The tentpole contract: with `--replicas 2` over two shards, killing
/// one shard mid-run changes *no response bytes* — every cell the dead
/// shard owned fails over to its ring-successor, the sweep still answers
/// 200 with zero `shard-down` rows, and the failover is visible on
/// `/metrics`.
#[test]
fn replica_failover_keeps_sweeps_byte_identical_after_shard_loss() {
    let s0 = shard();
    let s1 = shard();
    let router = router_with(
        &[&s0, &s1],
        RouterKnobs {
            replicas: 2,
            retry_budget: 2,
            breaker_threshold: 2,
            fault_seed: None,
        },
    );
    let addr = router.addr.to_string();

    let (st, healthy) = sweep(&addr);
    assert_eq!(st, 200);
    assert_eq!(&healthy, offline_jsonl(), "healthy baseline");

    // Count the casualties-to-be so the assertion below is not vacuous.
    let ring = Ring::new(2);
    let mut dead_cells = 0u64;
    for b in test_suite() {
        for prec in Precision::ALL {
            for v in Variant::ALL {
                let key = harness::cell_spec("test", None, None, b.name(), v, prec).key();
                if ring.shard_of(key) == 1 {
                    dead_cells += 1;
                }
            }
        }
    }
    assert!(dead_cells > 0, "ring gave shard 1 nothing; test is vacuous");

    // Kill shard 1 mid-run: its listener closes, the router's next
    // sub-request is refused and its cells re-route to shard 0.
    s1.shutdown().unwrap();

    let (st, failed_over) = sweep(&addr);
    assert_eq!(st, 200);
    assert_eq!(
        &failed_over,
        offline_jsonl(),
        "one-shard loss with replicas=2 must not change a single byte"
    );
    assert!(
        !failed_over.contains("shard-down"),
        "failover must leave no shard-down rows"
    );
    assert_eq!(metric(&addr, "sim_router_failovers_total"), dead_cells);
    assert!(metric(&addr, "sim_router_shard_errors_total") >= 1);

    // Every sweep stays identical while the shard is gone (the follower
    // now serves its keys from cache).
    let (st, again) = sweep(&addr);
    assert_eq!(st, 200);
    assert_eq!(&again, offline_jsonl());

    router.shutdown().unwrap();
    s0.shutdown().unwrap();
}

/// With replicas disabled the old degradation contract holds: the dead
/// shard's cells come back as structured `shard-down` rows, and once the
/// breaker trips, `/metrics` reports the shard quarantined (state 2) and
/// later sweeps skip it outright.
#[test]
fn without_replicas_a_dead_shard_degrades_and_trips_its_breaker() {
    let s0 = shard();
    let s1 = shard();
    let router = router_with(
        &[&s0, &s1],
        RouterKnobs {
            replicas: 1,
            retry_budget: 1,
            breaker_threshold: 1,
            fault_seed: None,
        },
    );
    let addr = router.addr.to_string();

    s1.shutdown().unwrap();

    let (st, degraded) = sweep(&addr);
    assert_eq!(st, 200, "a dead shard must not turn the sweep into a 500");
    let ring = Ring::new(2);
    let mut dead = 0;
    let mut row = degraded.lines();
    for b in test_suite() {
        for prec in Precision::ALL {
            for v in Variant::ALL {
                let key = harness::cell_spec("test", None, None, b.name(), v, prec).key();
                let r = row.next().unwrap();
                if ring.shard_of(key) == 1 {
                    dead += 1;
                    assert!(r.contains("\"fail_kind\":\"shard-down\""), "{r}");
                } else {
                    assert!(!r.contains("shard-down"), "{r}");
                }
            }
        }
    }
    assert!(dead > 0);

    // threshold=1: the first transport failure opened the breaker.
    assert_eq!(metric(&addr, "sim_router_breaker_state{shard=\"0\"}"), 0);
    assert_eq!(metric(&addr, "sim_router_breaker_state{shard=\"1\"}"), 2);
    assert_eq!(metric(&addr, "sim_router_failovers_total"), 0);

    // With the breaker open, the quarantined shard is skipped outright
    // (no `/v1/cells` attempt, so no new shard error) and its cells
    // still degrade to shard-down rows; the live shard's rows are
    // byte-identical to the first degraded sweep.
    let errors_before = metric(&addr, "sim_router_shard_errors_total");
    let (st, quarantined) = sweep(&addr);
    assert_eq!(st, 200);
    for (before, after) in degraded.lines().zip(quarantined.lines()) {
        if before.contains("shard-down") {
            // Same structured failure; only `fail_detail` may differ
            // ("unreachable" vs "quarantined (breaker open)").
            assert!(after.contains("\"fail_kind\":\"shard-down\""), "{after}");
        } else {
            assert_eq!(before, after);
        }
    }
    assert_eq!(
        metric(&addr, "sim_router_shard_errors_total"),
        errors_before,
        "an open breaker must suppress data-plane attempts"
    );

    router.shutdown().unwrap();
    s0.shutdown().unwrap();
}

/// Deterministic network chaos: with `--fault-seed` set, the router's
/// fan-out client injects connect refusals, truncations and garbage
/// status lines, the seeded retry loop heals them within the budget, and
/// the response is *still* byte-identical to the offline artifact — on
/// every run, because every roll is a pure function of
/// `(seed, request content, attempt)`.
#[test]
fn seeded_network_chaos_heals_within_the_retry_budget() {
    let knobs = || RouterKnobs {
        replicas: 2,
        retry_budget: 6,
        breaker_threshold: 3,
        fault_seed: Some(0xC4A07),
    };

    let s0 = shard();
    let s1 = shard();
    let router = router_with(&[&s0, &s1], knobs());
    let addr = router.addr.to_string();

    let (st, chaotic) = sweep(&addr);
    assert_eq!(st, 200);
    assert_eq!(
        &chaotic,
        offline_jsonl(),
        "chaos must be healed by retries, not change response bytes"
    );
    let retries = metric(&addr, "sim_router_retries_total");
    assert!(
        retries > 0,
        "seed 0xC4A07 injected no faults; test is vacuous"
    );

    // Same seed, fresh fleet: the same chaos schedule replays exactly.
    let t0 = shard();
    let t1 = shard();
    let router2 = router_with(&[&t0, &t1], knobs());
    let addr2 = router2.addr.to_string();
    let (st, replay) = sweep(&addr2);
    assert_eq!(st, 200);
    assert_eq!(replay, chaotic);
    assert_eq!(
        metric(&addr2, "sim_router_retries_total"),
        retries,
        "chaos rolls must not depend on ports, timing or thread count"
    );

    router.shutdown().unwrap();
    router2.shutdown().unwrap();
    for s in [s0, s1, t0, t1] {
        s.shutdown().unwrap();
    }
}

/// Chaos plus a real casualty: truncated responses *and* a shard killed
/// mid-sweep, with a replica covering the loss — still byte-identical.
#[test]
fn chaos_and_shard_loss_combined_stay_byte_identical_with_replicas() {
    let s0 = shard();
    let s1 = shard();
    let router = router_with(
        &[&s0, &s1],
        RouterKnobs {
            replicas: 2,
            retry_budget: 6,
            breaker_threshold: 3,
            fault_seed: Some(0xC4A07),
        },
    );
    let addr = router.addr.to_string();

    let (st, healthy) = sweep(&addr);
    assert_eq!(st, 200);
    assert_eq!(&healthy, offline_jsonl());

    s1.shutdown().unwrap();

    let (st, survived) = sweep(&addr);
    assert_eq!(st, 200);
    assert_eq!(
        &survived,
        offline_jsonl(),
        "chaos + one-shard loss with replicas=2 must not change bytes"
    );
    assert!(metric(&addr, "sim_router_failovers_total") > 0);

    router.shutdown().unwrap();
    s0.shutdown().unwrap();
}
