//! The paper's incidental findings, reproduced as executable facts: the
//! driver bug, the resource-limit fallbacks, the imperfect automatic
//! local-size selection, and the architectural properties of §III-B.

use hpc_kernels::{Benchmark, Precision, RunSkip, Variant};
use kernel_ir::prelude::*;
use kernel_ir::Access;
use mali_gpu::{MaliError, MaliT604};
use ocl_runtime::{ClError, Context, KernelArg, MemFlags};

/// §V-A: "The Atomic Monte-Carlo Dynamics (amcd) OpenCL versions are not
/// presented due to a compiler issue that does not allow the correct
/// termination of the compilation phase for the OpenCL kernel in double
/// precision."
#[test]
fn amcd_double_precision_driver_bug() {
    let b = hpc_kernels::amcd::Amcd::test_size();
    for v in [Variant::OpenCl, Variant::OpenClOpt] {
        let err = b.run(v, Precision::F64).unwrap_err();
        let RunSkip::CompilerBug(msg) = err else {
            panic!("expected CompilerBug, got something else")
        };
        assert!(msg.contains("internal compiler error"));
    }
    // The same kernels in single precision compile and validate.
    for v in [Variant::OpenCl, Variant::OpenClOpt] {
        assert!(b.run(v, Precision::F32).unwrap().validated);
    }
    // CPU versions are unaffected in both precisions.
    assert!(b.run(Variant::Serial, Precision::F64).unwrap().validated);
}

/// §V-A: the double-precision optimized kernels of nbody hit
/// CL_OUT_OF_RESOURCES at the tuned work-group size and must fall back,
/// shrinking the Opt-vs-naive gap.
#[test]
fn nbody_f64_register_fallback_shrinks_the_gap() {
    let b = hpc_kernels::nbody::Nbody::default();
    // f32 opt launches at the tuned size.
    let f32_opt = b.run(Variant::OpenClOpt, Precision::F32).unwrap();
    assert!(!f32_opt
        .note
        .as_deref()
        .unwrap()
        .contains("CL_OUT_OF_RESOURCES"));
    // f64 opt records the fallback.
    let f64_opt = b.run(Variant::OpenClOpt, Precision::F64).unwrap();
    assert!(f64_opt
        .note
        .as_deref()
        .unwrap()
        .contains("CL_OUT_OF_RESOURCES"));
    // And the remaining gain over naive is small (paper: 9.3x -> 10x).
    let f64_naive = b.run(Variant::OpenCl, Precision::F64).unwrap();
    let gain = f64_naive.time_s / f64_opt.time_s;
    assert!(
        (0.9..1.35).contains(&gain),
        "f64 opt gain should be small after the fallback, got {gain:.2}"
    );
}

/// §V-A: 2dcon in double precision cannot hold the widest vectors either.
#[test]
fn conv2d_f64_narrows_vectors() {
    let b = hpc_kernels::conv2d::Conv2d::default();
    let f32_note = b
        .run(Variant::OpenClOpt, Precision::F32)
        .unwrap()
        .note
        .unwrap();
    let f64_note = b
        .run(Variant::OpenClOpt, Precision::F64)
        .unwrap()
        .note
        .unwrap();
    assert!(f32_note.starts_with("vload8"), "{f32_note}");
    assert!(f64_note.contains("CL_OUT_OF_RESOURCES"), "{f64_note}");
    assert!(f64_note.contains("vload4"), "{f64_note}");
}

/// §III-A: the driver's automatic local size is legal but not always good —
/// for a 2-D kernel it produces a 1-D strip.
#[test]
fn driver_local_size_is_one_dimensional() {
    let ctx = Context::new(MaliT604::default());
    let mut kb = KernelBuilder::new("k2d");
    let a = kb.arg_global(Scalar::F32, Access::ReadWrite, true);
    let gx = kb.query_global_id(0);
    let gy = kb.query_global_id(1);
    let w = kb.bin(
        BinOp::Mul,
        gy.into(),
        Operand::ImmI(64),
        VType::scalar(Scalar::U32),
    );
    let idx = kb.bin(BinOp::Add, w.into(), gx.into(), VType::scalar(Scalar::U32));
    let v = kb.load(Scalar::F32, a, idx.into());
    kb.store(a, idx.into(), v.into());
    let k = ctx.build_kernel(kb.finish()).unwrap();
    let local = ctx.driver_local_size(&k, [64, 64, 1]);
    assert_eq!(local[1], 1, "driver ignores the second dimension");
    assert_eq!(local[2], 1);
    assert!(local[0] >= 32);
}

/// §III-B "Thread Divergence": no penalty on Mali, by construction of the
/// architecture (checked at the device level in mali-gpu's unit tests; here
/// we confirm it survives the full runtime stack with a divergent kernel).
#[test]
fn divergent_kernel_runs_at_straight_line_speed() {
    let n = 1 << 14;
    let mut ctx = Context::new(MaliT604::default());
    let buf = ctx.create_buffer_init(
        (0..n).map(|i| i as f32).collect::<Vec<_>>().into(),
        MemFlags::AllocHostPtr,
    );
    let build = |divergent: bool| {
        let mut kb = KernelBuilder::new(if divergent { "div" } else { "flat" });
        let a = kb.arg_global(Scalar::F32, Access::ReadWrite, true);
        let gid = kb.query_global_id(0);
        let v = kb.load(Scalar::F32, a, gid.into());
        let parity = kb.bin(
            BinOp::And,
            gid.into(),
            Operand::ImmI(1),
            VType::scalar(Scalar::U32),
        );
        let odd = kb.bin(
            BinOp::Eq,
            parity.into(),
            Operand::ImmI(1),
            VType::scalar(Scalar::U32),
        );
        let out = kb.mov(Operand::ImmF(0.0), VType::scalar(Scalar::F32));
        if divergent {
            kb.if_then_else(
                odd.into(),
                |kb| {
                    let t = kb.bin(
                        BinOp::Mul,
                        v.into(),
                        Operand::ImmF(3.0),
                        VType::scalar(Scalar::F32),
                    );
                    kb.mov_into(out, t.into());
                },
                |kb| {
                    let t = kb.bin(
                        BinOp::Mul,
                        v.into(),
                        Operand::ImmF(5.0),
                        VType::scalar(Scalar::F32),
                    );
                    kb.mov_into(out, t.into());
                },
            );
        } else {
            let t = kb.bin(
                BinOp::Mul,
                v.into(),
                Operand::ImmF(3.0),
                VType::scalar(Scalar::F32),
            );
            kb.mov_into(out, t.into());
        }
        kb.store(a, gid.into(), out.into());
        kb.finish()
    };
    let kd = ctx.build_kernel(build(true)).unwrap();
    let kf = ctx.build_kernel(build(false)).unwrap();
    let td = ctx
        .enqueue_nd_range(&kd, [n, 1, 1], Some([128, 1, 1]), &[KernelArg::Buf(buf)])
        .unwrap()
        .report
        .time_s;
    let tf = ctx
        .enqueue_nd_range(&kf, [n, 1, 1], Some([128, 1, 1]), &[KernelArg::Buf(buf)])
        .unwrap()
        .report
        .time_s;
    let ratio = td / tf;
    assert!(
        ratio < 1.4,
        "divergence must not double execution time on Mali (ratio {ratio:.2})"
    );
}

/// The enqueue-time resource check is exactly the register-file rule.
#[test]
fn out_of_resources_matches_occupancy_math() {
    let dev = MaliT604::default();
    let mut kb = KernelBuilder::new("fat");
    let a = kb.arg_global(Scalar::F64, Access::ReadWrite, true);
    // Keep 16 double8 values (4 hw regs each) simultaneously live.
    let vals: Vec<_> = (0..16)
        .map(|i| kb.mov(Operand::ImmF(i as f64), VType::new(Scalar::F64, 8)))
        .collect();
    let acc = kb.mov(Operand::ImmF(0.0), VType::new(Scalar::F64, 8));
    for v in &vals {
        kb.bin_into(acc, BinOp::Add, acc.into(), (*v).into());
    }
    let h = kb.horiz(HorizOp::Add, acc);
    let gid = kb.query_global_id(0);
    kb.store(a, gid.into(), h.into());
    let p = kb.finish();
    let fp = p.register_footprint();
    let max_wg = dev.cfg.resident_threads(fp);
    // Just-fits succeeds; one-over fails.
    let fit = max_wg.next_power_of_two() / 2; // a power of two <= max_wg
    assert!(dev
        .check_resources(&p, NDRange::d1(fit as usize * 4, fit as usize))
        .is_ok());
    let over = (max_wg + 1).next_power_of_two().min(256);
    if over > max_wg && over <= dev.cfg.max_wg_size {
        let err = dev
            .check_resources(&p, NDRange::d1(over as usize * 4, over as usize))
            .unwrap_err();
        assert!(matches!(err, MaliError::OutOfResources { .. }));
    }
}

/// CL error surfaces cleanly through the runtime for oversized groups.
#[test]
fn oversized_work_group_rejected_at_enqueue() {
    let mut ctx = Context::new(MaliT604::default());
    let b = ctx.create_buffer(Scalar::F32, 1024, MemFlags::AllocHostPtr);
    let mut kb = KernelBuilder::new("id");
    let a = kb.arg_global(Scalar::F32, Access::ReadWrite, true);
    let gid = kb.query_global_id(0);
    let v = kb.load(Scalar::F32, a, gid.into());
    kb.store(a, gid.into(), v.into());
    let k = ctx.build_kernel(kb.finish()).unwrap();
    let err = ctx
        .enqueue_nd_range(&k, [1024, 1, 1], Some([512, 1, 1]), &[KernelArg::Buf(b)])
        .unwrap_err();
    assert!(matches!(err, ClError::InvalidWorkGroupSize(_)));
}
