//! `sim-pool` — a std-only work-stealing thread pool with scoped fork/join.
//!
//! The simulation stack is embarrassingly parallel at two levels (suite
//! cells, work-groups) but the workspace is offline-only, so this crate
//! provides the minimum machinery those levels need with zero external
//! dependencies:
//!
//! * [`parallel_map`] — run `f(0..n)` across worker threads and return the
//!   results **in index order**. Threads are spawned scoped
//!   ([`std::thread::scope`]), so `f` may borrow from the caller's stack.
//! * a per-worker [`deque::TaskDeque`] (fixed-capacity Chase–Lev) so idle
//!   workers steal from busy ones instead of waiting on a shared lock.
//! * a global thread-count knob: [`set_threads`] (wired to `--threads N` in
//!   the harness) or the `SIM_THREADS` environment variable, defaulting to
//!   [`std::thread::available_parallelism`].
//!
//! Nested calls never oversubscribe: a `parallel_map` issued from inside a
//! worker runs serially inline ([`in_worker`]), which is exactly what the
//! two-level suite-cells / work-groups nesting wants.
//!
//! A panic in any task is caught, the remaining tasks are abandoned, and the
//! first panic payload is re-raised on the caller thread after all workers
//! have joined — the same contract as `std::thread::scope`.

pub mod deque;

use deque::{Steal, TaskDeque};
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Hard cap on the configured thread count; protects against absurd
/// `SIM_THREADS` values.
pub const MAX_THREADS: usize = 256;

/// 0 = not yet resolved (lazily read from `SIM_THREADS` / host parallelism).
static THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// True when called from inside a pool worker (including the caller thread
/// while it participates in a `parallel_map`).
pub fn in_worker() -> bool {
    IN_WORKER.with(|f| f.get())
}

/// Override the global worker count (e.g. from `--threads N`). Clamped to
/// `1..=MAX_THREADS`.
pub fn set_threads(n: usize) {
    THREADS.store(n.clamp(1, MAX_THREADS), Ordering::Relaxed);
}

/// The configured worker count: an explicit [`set_threads`] value, else
/// `SIM_THREADS`, else the host's available parallelism.
pub fn threads() -> usize {
    let t = THREADS.load(Ordering::Relaxed);
    if t != 0 {
        return t;
    }
    let resolved = default_threads();
    // Benign race: every contender computes the same value.
    let _ = THREADS.compare_exchange(0, resolved, Ordering::Relaxed, Ordering::Relaxed);
    THREADS.load(Ordering::Relaxed)
}

fn default_threads() -> usize {
    if let Ok(s) = std::env::var("SIM_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            return n.clamp(1, MAX_THREADS);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get().min(MAX_THREADS))
        .unwrap_or(1)
}

/// Result slots shared across workers. Each slot is written by exactly one
/// task (ownership of an index is handed out once by the deques), then read
/// only after every worker has joined.
struct Slots<T>(Vec<std::cell::UnsafeCell<Option<T>>>);

// SAFETY: disjoint slots are written by distinct tasks; the deque CAS hands
// each index to exactly one worker, and results are read after the scope
// joins (a happens-before edge via thread join).
unsafe impl<T: Send> Sync for Slots<T> {}

impl<T> Slots<T> {
    /// SAFETY: must be called at most once per index, from the single worker
    /// that owns the task.
    unsafe fn set(&self, i: usize, v: T) {
        *self.0[i].get() = Some(v);
    }
}

/// Run `f(i)` for `i in 0..n` on the global pool and collect the results in
/// index order. See [`parallel_map_threads`].
pub fn parallel_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_threads(threads(), n, f)
}

/// Run `f(i)` for `i in 0..n` on `threads` workers (the caller participates
/// as worker 0) and collect the results in index order.
///
/// Runs serially inline when `threads <= 1`, `n <= 1`, or when already inside
/// a pool worker (nested parallelism would oversubscribe the host).
pub fn parallel_map_threads<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 || in_worker() {
        return (0..n).map(f).collect();
    }

    let workers = threads.min(n);
    // Contiguous blocks per worker: preserves locality, and the steal end
    // (FIFO) hands thieves the far end of a block.
    let deques: Vec<TaskDeque> = (0..workers)
        .map(|_| TaskDeque::with_capacity(n.div_ceil(workers) + 1))
        .collect();
    for i in 0..n {
        let owner = i * workers / n;
        assert!(deques[owner].push(i), "deque sized for its block");
    }

    let slots: Slots<T> = Slots((0..n).map(|_| std::cell::UnsafeCell::new(None)).collect());
    let panicked = AtomicBool::new(false);
    let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

    let worker = |id: usize| {
        let was = IN_WORKER.with(|w| w.replace(true));
        loop {
            if panicked.load(Ordering::Relaxed) {
                break;
            }
            let task = deques[id].pop().or_else(|| steal_any(&deques, id));
            let Some(i) = task else { break };
            match catch_unwind(AssertUnwindSafe(|| f(i))) {
                Ok(v) => unsafe { slots.set(i, v) },
                Err(p) => {
                    panicked.store(true, Ordering::Relaxed);
                    let mut slot = panic_payload.lock().unwrap_or_else(|e| e.into_inner());
                    if slot.is_none() {
                        *slot = Some(p);
                    }
                }
            }
        }
        IN_WORKER.with(|w| w.set(was));
    };

    std::thread::scope(|s| {
        let handles: Vec<_> = (1..workers).map(|id| s.spawn(move || worker(id))).collect();
        worker(0);
        for h in handles {
            let _ = h.join();
        }
    });

    if let Some(p) = panic_payload
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take()
    {
        resume_unwind(p);
    }

    slots
        .0
        .into_iter()
        .map(|c| c.into_inner().expect("every task produced a result"))
        .collect()
}

/// A task that panicked inside [`try_parallel_map`], reduced to its message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskPanic {
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task panicked: {}", self.message)
    }
}

/// Extract a human-readable message from a panic payload.
pub fn panic_message(p: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Like [`parallel_map`], but each task is individually isolated: a panic in
/// task `i` yields `Err(TaskPanic)` in slot `i` instead of poisoning the
/// whole map. The remaining tasks still run to completion.
///
/// Before each task runs, the ambient fault plan (if any) may deterministically
/// kill the worker via [`sim_faults::maybe_worker_panic`], keyed by the task
/// index — so the same plan produces the same casualties at any thread count.
pub fn try_parallel_map<T, F>(n: usize, f: F) -> Vec<Result<T, TaskPanic>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map(n, |i| {
        catch_unwind(AssertUnwindSafe(|| {
            sim_faults::maybe_worker_panic(i as u64);
            f(i)
        }))
        .map_err(|p| TaskPanic {
            message: panic_message(&p),
        })
    })
}

/// Scan the other deques for work; retry while any steal hits a race.
fn steal_any(deques: &[TaskDeque], id: usize) -> Option<usize> {
    let w = deques.len();
    loop {
        let mut contended = false;
        for k in 1..w {
            match deques[(id + k) % w].steal() {
                Steal::Taken(i) => return Some(i),
                Steal::Retry => contended = true,
                Steal::Empty => {}
            }
        }
        if !contended {
            return None;
        }
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_identity_in_order() {
        let out = parallel_map_threads(8, 1000, |i| i * 3);
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn serial_paths_match_parallel() {
        let serial = parallel_map_threads(1, 64, |i| i as u64 * i as u64);
        let par = parallel_map_threads(4, 64, |i| i as u64 * i as u64);
        assert_eq!(serial, par);
    }

    #[test]
    fn zero_and_one_tasks() {
        assert_eq!(parallel_map_threads(8, 0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map_threads(8, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn try_map_isolates_panics() {
        let out = try_parallel_map(16, |i| {
            if i % 5 == 3 {
                panic!("boom at {i}");
            }
            i * 2
        });
        assert_eq!(out.len(), 16);
        for (i, r) in out.iter().enumerate() {
            if i % 5 == 3 {
                let e = r.as_ref().unwrap_err();
                assert_eq!(e.message, format!("boom at {i}"));
            } else {
                assert_eq!(*r.as_ref().unwrap(), i * 2);
            }
        }
    }

    #[test]
    fn try_map_all_ok_matches_plain_map() {
        let plain = parallel_map_threads(4, 32, |i| i + 1);
        let tried: Vec<usize> = try_parallel_map(32, |i| i + 1)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(plain, tried);
    }

    #[test]
    fn threads_clamped() {
        set_threads(0);
        assert_eq!(threads(), 1);
        set_threads(8);
        assert_eq!(threads(), 8);
    }
}
