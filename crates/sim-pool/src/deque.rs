//! A fixed-capacity Chase–Lev work-stealing deque specialised to `usize`
//! task indices.
//!
//! The owner pushes and pops at the *bottom*; thieves steal from the *top*.
//! Storing plain indices (instead of boxed closures) sidesteps every memory
//! reclamation hazard of the general deque: a thief may read a stale slot,
//! but the `top` compare-exchange guarantees each index is *consumed* exactly
//! once, and a stale read of a `usize` is harmless.
//!
//! Capacity is fixed at construction (the pool knows the task count up
//! front), so the resize protocol of the original algorithm is not needed.

use std::sync::atomic::{fence, AtomicIsize, AtomicUsize, Ordering};

/// Result of a steal attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Steal {
    /// The deque looked empty.
    Empty,
    /// Lost a race with the owner or another thief; try again.
    Retry,
    /// Took this task index.
    Taken(usize),
}

/// Single-owner, multi-thief deque of task indices.
pub struct TaskDeque {
    buf: Box<[AtomicUsize]>,
    mask: usize,
    /// Next slot the owner will push into.
    bottom: AtomicIsize,
    /// Oldest live slot; thieves advance this.
    top: AtomicIsize,
}

impl TaskDeque {
    /// Deque able to hold at least `cap` pending tasks.
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.max(2).next_power_of_two();
        TaskDeque {
            buf: (0..cap).map(|_| AtomicUsize::new(0)).collect(),
            mask: cap - 1,
            bottom: AtomicIsize::new(0),
            top: AtomicIsize::new(0),
        }
    }

    /// Owner-only: append a task. Returns `false` when full.
    pub fn push(&self, v: usize) -> bool {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b.wrapping_sub(t) >= self.buf.len() as isize {
            return false;
        }
        self.buf[(b as usize) & self.mask].store(v, Ordering::Relaxed);
        self.bottom.store(b.wrapping_add(1), Ordering::Release);
        true
    }

    /// Owner-only: take the most recently pushed task (LIFO keeps the
    /// owner's working set hot; thieves take the oldest, largest-grain end).
    pub fn pop(&self) -> Option<usize> {
        let b = self.bottom.load(Ordering::Relaxed).wrapping_sub(1);
        self.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Empty: restore bottom.
            self.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
            return None;
        }
        let v = self.buf[(b as usize) & self.mask].load(Ordering::Relaxed);
        if t == b {
            // Last element: race the thieves for it via `top`.
            let won = self
                .top
                .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
            return won.then_some(v);
        }
        Some(v)
    }

    /// Any thread: try to take the oldest task.
    pub fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let v = self.buf[(t as usize) & self.mask].load(Ordering::Relaxed);
        if self
            .top
            .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            return Steal::Retry;
        }
        Steal::Taken(v)
    }

    /// Approximate number of pending tasks (owner's view).
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        b.wrapping_sub(t).max(0) as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_for_owner() {
        let d = TaskDeque::with_capacity(8);
        assert!(d.push(1));
        assert!(d.push(2));
        assert!(d.push(3));
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), Some(1));
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn fifo_for_thief() {
        let d = TaskDeque::with_capacity(8);
        d.push(1);
        d.push(2);
        assert_eq!(d.steal(), Steal::Taken(1));
        assert_eq!(d.steal(), Steal::Taken(2));
        assert_eq!(d.steal(), Steal::Empty);
    }

    #[test]
    fn push_reports_full() {
        let d = TaskDeque::with_capacity(2);
        assert!(d.push(0));
        assert!(d.push(1));
        assert!(!d.push(2));
        assert_eq!(d.pop(), Some(1));
        assert!(d.push(2));
    }
}
