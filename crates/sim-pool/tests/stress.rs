//! Concurrency stress tests for `sim-pool`: nested scoped spawns,
//! panic-in-worker propagation, and a loom-style hand-rolled interleaving
//! test for the work-stealing deque (no external deps — schedules are
//! enumerated exhaustively and enforced with a turn-taking gate).

use sim_pool::deque::{Steal, TaskDeque};
use sim_pool::parallel_map_threads;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

#[test]
fn nested_scoped_spawns_run_serially_inline() {
    // Outer 4-way map; each task runs an inner 4-way map. The inner map
    // must detect it is on a worker and run inline (no oversubscription),
    // and every nested result must still be correct and ordered.
    let out = parallel_map_threads(4, 16, |i| {
        let inner = parallel_map_threads(4, 8, move |j| {
            assert!(sim_pool::in_worker(), "nested map should be on a worker");
            i * 100 + j
        });
        inner.iter().sum::<usize>()
    });
    for (i, v) in out.iter().enumerate() {
        assert_eq!(*v, (0..8).map(|j| i * 100 + j).sum::<usize>());
    }
}

#[test]
fn deeply_nested_maps_terminate() {
    // Three levels of nesting: only the outermost level spawns threads.
    let out = parallel_map_threads(8, 8, |a| {
        parallel_map_threads(8, 4, move |b| {
            parallel_map_threads(8, 2, move |c| a + b + c)
                .iter()
                .sum::<usize>()
        })
        .iter()
        .sum::<usize>()
    });
    assert_eq!(out.len(), 8);
}

#[test]
fn panic_in_worker_propagates_payload() {
    let r = catch_unwind(AssertUnwindSafe(|| {
        parallel_map_threads(4, 64, |i| {
            if i == 37 {
                panic!("task 37 exploded");
            }
            i
        })
    }));
    let payload = r.expect_err("panic must propagate to the caller");
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .map(str::to_owned)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(msg.contains("task 37 exploded"), "payload was: {msg}");
}

#[test]
fn panic_does_not_poison_the_pool() {
    let _ = catch_unwind(AssertUnwindSafe(|| {
        parallel_map_threads(4, 16, |i| {
            if i % 5 == 0 {
                panic!("boom");
            }
            i
        })
    }));
    // The pool has no persistent state; a fresh map must work.
    let ok = parallel_map_threads(4, 32, |i| i + 1);
    assert_eq!(ok[31], 32);
}

#[test]
fn heavy_contention_consumes_each_task_once() {
    // Skewed task costs force constant stealing.
    for round in 0..20 {
        let hits = (0..256).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
        parallel_map_threads(8, 256, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
            // Task cost varies by ~100x to unbalance the initial blocks.
            let spins = if i % 17 == round % 17 { 5000 } else { 50 };
            let mut acc = i as u64;
            for _ in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "task {i} ran != once");
        }
    }
}

// ---------------------------------------------------------------------------
// Loom-style interleaving test for the deque.
//
// Two threads (owner + thief) execute fixed op sequences. A schedule is a
// bitmask: at step k, bit k selects which thread performs its next op. All
// interleavings of the two sequences are enumerated; each one is executed
// with real threads gated by an atomic turn counter, and the outcome is
// checked for the single invariant that matters: every pushed task is
// consumed exactly once (and pops/steals never invent tasks).
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq)]
enum OwnerOp {
    Push(usize),
    Pop,
}

fn run_schedule(owner_ops: &[OwnerOp], thief_steals: usize, schedule: &[u8]) {
    assert_eq!(schedule.len(), owner_ops.len() + thief_steals);
    let deque = TaskDeque::with_capacity(8);
    let step = AtomicUsize::new(0);
    let consumed: Mutex<Vec<usize>> = Mutex::new(Vec::new());
    let pushed: Vec<usize> = owner_ops
        .iter()
        .filter_map(|o| match o {
            OwnerOp::Push(v) => Some(*v),
            OwnerOp::Pop => None,
        })
        .collect();

    // Wait until `schedule[step]` names us, run one op, release the turn.
    let take_turn = |me: u8, op: &mut dyn FnMut()| loop {
        let s = step.load(Ordering::Acquire);
        if s >= schedule.len() {
            return false;
        }
        if schedule[s] == me {
            op();
            step.store(s + 1, Ordering::Release);
            return true;
        }
        std::hint::spin_loop();
    };

    std::thread::scope(|s| {
        s.spawn(|| {
            for op in owner_ops {
                let mut action = || match op {
                    OwnerOp::Push(v) => assert!(deque.push(*v)),
                    OwnerOp::Pop => {
                        if let Some(v) = deque.pop() {
                            consumed.lock().unwrap().push(v);
                        }
                    }
                };
                assert!(take_turn(0, &mut action));
            }
        });
        s.spawn(|| {
            for _ in 0..thief_steals {
                let mut action = || {
                    // A Retry is a lost race, not a turn to waste: retry
                    // within the same turn until the outcome is definite.
                    loop {
                        match deque.steal() {
                            Steal::Taken(v) => {
                                consumed.lock().unwrap().push(v);
                                break;
                            }
                            Steal::Empty => break,
                            Steal::Retry => std::hint::spin_loop(),
                        }
                    }
                };
                assert!(take_turn(1, &mut action));
            }
        });
    });

    // Drain what neither side consumed during the schedule.
    let mut got = consumed.into_inner().unwrap();
    while let Some(v) = deque.pop() {
        got.push(v);
    }
    got.sort_unstable();
    let mut want = pushed;
    want.sort_unstable();
    assert_eq!(got, want, "schedule {schedule:?} lost or duplicated a task");
}

#[test]
fn deque_interleavings_exhaustive() {
    // Owner: push 10, push 20, pop, pop — thief: steal, steal.
    let owner = [
        OwnerOp::Push(10),
        OwnerOp::Push(20),
        OwnerOp::Pop,
        OwnerOp::Pop,
    ];
    let thief_steals = 2;
    let total = owner.len() + thief_steals;
    // Enumerate every placement of the thief's 2 ops among 6 steps.
    let mut schedules = 0;
    for mask in 0u32..(1 << total) {
        if mask.count_ones() as usize != thief_steals {
            continue;
        }
        let schedule: Vec<u8> = (0..total).map(|k| ((mask >> k) & 1) as u8).collect();
        run_schedule(&owner, thief_steals, &schedule);
        schedules += 1;
    }
    assert_eq!(schedules, 15); // C(6,2)
}

#[test]
fn deque_interleavings_single_element_race() {
    // The hard case: one element, owner pop racing one steal — every
    // placement of the steal among the 3 steps.
    let owner = [OwnerOp::Push(42), OwnerOp::Pop];
    for mask in 0u32..(1 << 3) {
        if mask.count_ones() != 1 {
            continue;
        }
        let schedule: Vec<u8> = (0..3).map(|k| ((mask >> k) & 1) as u8).collect();
        run_schedule(&owner, 1, &schedule);
    }
}

#[test]
fn deque_concurrent_free_for_all() {
    // Unconstrained stress: 1 owner pushing/popping, 3 thieves stealing.
    const N: usize = 10_000;
    for _ in 0..5 {
        let deque = TaskDeque::with_capacity(N);
        let seen = (0..N).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
        let done = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| loop {
                    match deque.steal() {
                        Steal::Taken(v) => {
                            seen[v].fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Empty if done.load(Ordering::Acquire) == 1 => break,
                        _ => std::hint::spin_loop(),
                    }
                });
            }
            for i in 0..N {
                while !deque.push(i) {
                    // Full: help drain from our own end.
                    if let Some(v) = deque.pop() {
                        seen[v].fetch_add(1, Ordering::Relaxed);
                    }
                }
                if i % 3 == 0 {
                    if let Some(v) = deque.pop() {
                        seen[v].fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            while let Some(v) = deque.pop() {
                seen[v].fetch_add(1, Ordering::Relaxed);
            }
            done.store(1, Ordering::Release);
        });
        for (i, c) in seen.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "task {i} consumed != once");
        }
    }
}
