//! # sim-rng — small deterministic PRNGs for the simulation stack
//!
//! The repo must build with no network access, so instead of the external
//! `rand` crate we carry two tiny, well-known generators:
//!
//! * [`SplitMix64`] — Steele/Lea/Flood 2014. One multiply-xor-shift chain
//!   per output; used for seed expansion and cheap stateless streams.
//! * [`Pcg32`] — O'Neill's PCG-XSH-RR 64/32. The workhorse generator:
//!   64-bit LCG state with a 32-bit permuted output, seeded via SplitMix64
//!   so that small consecutive seeds give uncorrelated streams.
//!
//! Both are deterministic given a seed, which the simulator relies on for
//! reproducible experiments (the meter's "per-instrument gain" is a pure
//! function of its seed).

/// SplitMix64: a tiny stateless-friendly generator, mainly used here to
/// expand one `u64` seed into the wider state other generators need.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// PCG-XSH-RR 64/32 (O'Neill 2014): 64-bit LCG state, 32-bit output with
/// an xorshift-then-rotate permutation. Small, fast, and statistically
/// solid for simulation noise.
#[derive(Clone, Debug)]
pub struct Pcg32 {
    state: u64,
    /// Stream selector; must be odd.
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl Pcg32 {
    /// Seed both the state and the stream from one `u64` via SplitMix64
    /// (mirrors `rand`'s `seed_from_u64` idea: nearby seeds give unrelated
    /// streams).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let initstate = sm.next_u64();
        let initseq = sm.next_u64();
        let mut rng = Pcg32 {
            state: 0,
            inc: (initseq << 1) | 1,
        };
        rng.state = rng.state.wrapping_mul(PCG_MULT).wrapping_add(rng.inc);
        rng.state = rng.state.wrapping_add(initstate);
        rng.state = rng.state.wrapping_mul(PCG_MULT).wrapping_add(rng.inc);
        rng
    }

    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    pub fn next_u64(&mut self) -> u64 {
        (self.next_u32() as u64) << 32 | self.next_u32() as u64
    }

    /// Uniform in `[0, 1)` with 53 random bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)` (and effectively `[lo, hi]` for the
    /// metrology use-cases, where the endpoint has measure zero).
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + self.next_f64() * (hi - lo)
    }

    /// Uniform integer in `[0, n)`. Uses the unbiased rejection method on
    /// the widened product (Lemire).
    pub fn gen_below(&mut self, n: u32) -> u32 {
        assert!(n > 0, "gen_below(0)");
        let mut x = self.next_u32();
        let mut m = x as u64 * n as u64;
        let mut lo = m as u32;
        if lo < n {
            let t = n.wrapping_neg() % n;
            while lo < t {
                x = self.next_u32();
                m = x as u64 * n as u64;
                lo = m as u32;
            }
        }
        (m >> 32) as u32
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + self.gen_below((hi - lo) as u32) as usize
    }

    pub fn gen_bool(&mut self) -> bool {
        self.next_u32() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference sequence for seed 1234567 (from the public-domain
        // splitmix64.c reference implementation).
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(first, sm2.next_u64(), "deterministic");
        assert_ne!(first, sm.next_u64(), "advances");
    }

    #[test]
    fn pcg_deterministic_and_stream_dependent() {
        let mut a = Pcg32::seed_from_u64(42);
        let mut b = Pcg32::seed_from_u64(42);
        let mut c = Pcg32::seed_from_u64(43);
        let xs: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        let zs: Vec<u32> = (0..8).map(|_| c.next_u32()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs, "nearby seeds must give different streams");
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = Pcg32::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn range_helpers_respect_bounds() {
        let mut r = Pcg32::seed_from_u64(99);
        for _ in 0..1000 {
            let x = r.gen_range_f64(-0.25, 0.25);
            assert!((-0.25..=0.25).contains(&x));
            let k = r.gen_range_usize(3, 9);
            assert!((3..9).contains(&k));
        }
    }

    #[test]
    fn gen_below_unbiased_small_n() {
        let mut r = Pcg32::seed_from_u64(5);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[r.gen_below(5) as usize] += 1;
        }
        for c in counts {
            // expect 10_000 each; allow 5% slack
            assert!((9_500..10_500).contains(&c), "biased bucket: {counts:?}");
        }
    }
}
