//! Set-associative, write-back, write-allocate cache with true-LRU
//! replacement.
//!
//! Used as the Cortex-A15 L1/L2 and as the Mali-T604 shared L2. The model is
//! functional only in the *tag* sense: it tracks which lines are resident,
//! not their data (data correctness is the interpreter's job).

/// Geometry of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Associativity (ways per set).
    pub assoc: u32,
}

impl CacheConfig {
    pub fn new(size_bytes: u32, line_bytes: u32, assoc: u32) -> Self {
        let cfg = CacheConfig {
            size_bytes,
            line_bytes,
            assoc,
        };
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            cfg.num_sets() > 0,
            "size/assoc/line combination yields zero sets"
        );
        assert_eq!(
            size_bytes % (line_bytes * assoc),
            0,
            "size must be divisible by line*assoc"
        );
        cfg
    }

    pub fn num_sets(&self) -> u32 {
        self.size_bytes / (self.line_bytes * self.assoc)
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU timestamp (larger = more recent).
    stamp: u64,
}

/// Counters accumulated over the cache's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub accesses: u64,
    pub hits: u64,
    pub misses: u64,
    /// Dirty lines evicted (each costs a line write to the next level).
    pub writebacks: u64,
}

impl CacheStats {
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// Outcome of probing one line-sized chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Probe {
    Hit,
    /// Miss; `writeback` reports whether a dirty victim was evicted.
    Miss {
        writeback: bool,
    },
}

/// The cache proper.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Line>,
    clock: u64,
    /// `log2(line_bytes)` — the line index is a shift, probed per event.
    line_shift: u32,
    /// `num_sets - 1` when the set count is a power of two (the common
    /// geometry), letting the set index be a mask instead of a modulo.
    set_mask: Option<u64>,
    pub stats: CacheStats,
}

impl Cache {
    pub fn new(cfg: CacheConfig) -> Self {
        let lines = (cfg.num_sets() * cfg.assoc) as usize;
        Cache {
            cfg,
            sets: vec![Line::default(); lines],
            clock: 0,
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: cfg
                .num_sets()
                .is_power_of_two()
                .then(|| cfg.num_sets() as u64 - 1),
            stats: CacheStats::default(),
        }
    }

    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Invalidate everything and zero the statistics.
    pub fn reset(&mut self) {
        for l in &mut self.sets {
            *l = Line::default();
        }
        self.clock = 0;
        self.stats = CacheStats::default();
    }

    #[inline]
    fn set_range(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        let (set, tag) = match self.set_mask {
            Some(mask) => ((line & mask) as usize, line >> mask.count_ones()),
            None => {
                let sets = self.cfg.num_sets() as u64;
                ((line % sets) as usize, line / sets)
            }
        };
        (set * self.cfg.assoc as usize, tag)
    }

    /// Probe a single address (the line containing it).
    pub fn probe(&mut self, addr: u64, write: bool) -> Probe {
        self.clock += 1;
        self.stats.accesses += 1;
        let (base, tag) = self.set_range(addr);
        let ways = self.cfg.assoc as usize;
        // Hit path.
        for w in 0..ways {
            let l = &mut self.sets[base + w];
            if l.valid && l.tag == tag {
                l.stamp = self.clock;
                l.dirty |= write;
                self.stats.hits += 1;
                return Probe::Hit;
            }
        }
        // Miss: fill into the LRU way.
        self.stats.misses += 1;
        let mut victim = base;
        for w in 1..ways {
            if lru_before(&self.sets[base + w], &self.sets[victim]) {
                victim = base + w;
            }
        }
        let evicted_dirty = self.sets[victim].valid && self.sets[victim].dirty;
        if evicted_dirty {
            self.stats.writebacks += 1;
        }
        self.sets[victim] = Line {
            tag,
            valid: true,
            dirty: write,
            stamp: self.clock,
        };
        Probe::Miss {
            writeback: evicted_dirty,
        }
    }

    /// `log2(line_bytes)`, for address-to-line arithmetic without division.
    #[inline]
    pub fn line_shift(&self) -> u32 {
        self.line_shift
    }

    /// Access a byte span, probing every line it touches. Returns
    /// `(hit_lines, miss_lines, writebacks)`.
    pub fn access(&mut self, addr: u64, bytes: u32, write: bool) -> (u32, u32, u32) {
        let first = addr >> self.line_shift;
        let last = (addr + bytes.max(1) as u64 - 1) >> self.line_shift;
        let (mut hits, mut misses, mut wbs) = (0, 0, 0);
        for l in first..=last {
            match self.probe(l << self.line_shift, write) {
                Probe::Hit => hits += 1,
                Probe::Miss { writeback } => {
                    misses += 1;
                    if writeback {
                        wbs += 1;
                    }
                }
            }
        }
        (hits, misses, wbs)
    }
}

fn lru_before(a: &Line, b: &Line) -> bool {
    // Invalid lines are always preferred victims; otherwise oldest stamp.
    match (a.valid, b.valid) {
        (false, true) => true,
        (true, false) => false,
        _ => a.stamp < b.stamp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 64B lines = 512 B
        Cache::new(CacheConfig::new(512, 64, 2))
    }

    #[test]
    fn config_geometry() {
        let c = CacheConfig::new(32 * 1024, 64, 4);
        assert_eq!(c.num_sets(), 128);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn bad_geometry_rejected() {
        let _ = CacheConfig::new(1000, 64, 2);
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = tiny();
        assert_eq!(c.probe(0x100, false), Probe::Miss { writeback: false });
        assert_eq!(c.probe(0x100, false), Probe::Hit);
        assert_eq!(c.probe(0x13f, false), Probe::Hit); // same 64B line
        assert_eq!(c.probe(0x140, false), Probe::Miss { writeback: false });
        assert_eq!(c.stats.hits, 2);
        assert_eq!(c.stats.misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Three distinct tags mapping to set 0 (addresses differing by
        // sets*line = 256 B).
        c.probe(0, false); // A
        c.probe(256, false); // B — set full
        c.probe(0, false); // touch A, making B the LRU
        c.probe(512, false); // C evicts B
        assert_eq!(c.probe(0, false), Probe::Hit); // A survived
        assert_eq!(c.probe(256, false), Probe::Miss { writeback: false }); // B gone
    }

    #[test]
    fn writeback_on_dirty_eviction() {
        let mut c = tiny();
        c.probe(0, true); // dirty A
        c.probe(256, false); // B
        let p = c.probe(512, false); // evicts A (LRU), which is dirty
        assert_eq!(p, Probe::Miss { writeback: true });
        assert_eq!(c.stats.writebacks, 1);
    }

    #[test]
    fn span_access_counts_lines() {
        let mut c = tiny();
        // 16 bytes fully inside one line: one probe.
        let (h, m, _) = c.access(0, 16, false);
        assert_eq!((h, m), (0, 1));
        // 16 bytes straddling a line boundary: two probes, first line hits.
        let (h, m, _) = c.access(56, 16, false);
        assert_eq!((h, m), (1, 1));
    }

    #[test]
    fn streaming_scalar_hits_within_line() {
        // Sequential 4-byte accesses: 1 miss per 16 accesses on 64B lines.
        let mut c = Cache::new(CacheConfig::new(32 * 1024, 64, 4));
        for i in 0..1024u64 {
            c.access(i * 4, 4, false);
        }
        assert_eq!(c.stats.misses, 1024 / 16);
        assert_eq!(c.stats.hits, 1024 - 64);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = tiny(); // 512 B
                            // Stream 4 KiB twice; second pass still misses every line.
        for pass in 0..2 {
            let before = c.stats.misses;
            for i in 0..64u64 {
                c.access(i * 64, 64, false);
            }
            let new_misses = c.stats.misses - before;
            assert_eq!(new_misses, 64, "pass {pass} should miss all lines");
        }
    }

    #[test]
    fn working_set_smaller_than_cache_stays_resident() {
        let mut c = Cache::new(CacheConfig::new(32 * 1024, 64, 4));
        for pass in 0..3 {
            let before = c.stats.misses;
            for i in 0..128u64 {
                c.access(i * 64, 64, false);
            }
            let new = c.stats.misses - before;
            if pass == 0 {
                assert_eq!(new, 128);
            } else {
                assert_eq!(new, 0, "8 KiB set must stay resident in 32 KiB cache");
            }
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut c = tiny();
        c.probe(0, true);
        c.reset();
        assert_eq!(c.stats, CacheStats::default());
        assert_eq!(c.probe(0, false), Probe::Miss { writeback: false });
    }

    #[test]
    fn hit_rate() {
        let mut c = tiny();
        c.probe(0, false);
        c.probe(0, false);
        assert!((c.stats.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
