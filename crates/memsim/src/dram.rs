//! DRAM timing model.
//!
//! The Arndale board carries 2 GB of DDR3L-1600 on a 32-bit channel:
//! 6.4 GB/s theoretical peak shared between the Cortex-A15 pair and the
//! Mali-T604. The model exposes a *sustained* bandwidth (peak derated by a
//! controller-efficiency factor), a first-access latency used for
//! dependent/pointer-chasing access chains, and line-granular transfer
//! accounting (misses always move whole cache lines).

/// DRAM/controller parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DramConfig {
    /// Theoretical peak bandwidth in bytes/second.
    pub peak_bw: f64,
    /// Fraction of peak sustainable for well-formed streaming traffic.
    pub stream_efficiency: f64,
    /// Additional derating for scattered (non-streaming) line fetches,
    /// modelling row-buffer misses.
    pub scatter_efficiency: f64,
    /// Load-to-use latency of one line fetch in seconds (row activate +
    /// CAS + transfer + interconnect).
    pub latency: f64,
    /// Transfer granularity in bytes (cache line).
    pub line_bytes: u32,
}

impl DramConfig {
    /// DDR3L-1600 × 32-bit, as on the Exynos 5250 Arndale board.
    pub fn ddr3l_1600_x32() -> Self {
        DramConfig {
            peak_bw: 6.4e9,
            stream_efficiency: 0.80,
            scatter_efficiency: 0.35,
            latency: 110e-9,
            line_bytes: 64,
        }
    }

    /// Sustained streaming bandwidth in bytes/second.
    pub fn stream_bw(&self) -> f64 {
        self.peak_bw * self.stream_efficiency
    }

    /// Sustained bandwidth for scattered line fetches.
    pub fn scatter_bw(&self) -> f64 {
        self.peak_bw * self.scatter_efficiency
    }

    /// Time to stream `lines` cache lines (bandwidth-bound, latency hidden
    /// by prefetch/pipelining).
    pub fn stream_time(&self, lines: u64) -> f64 {
        lines as f64 * self.line_bytes as f64 / self.stream_bw()
    }

    /// Time to fetch `lines` scattered cache lines when requests can overlap
    /// (bandwidth-bound at the derated scatter rate).
    pub fn scatter_time(&self, lines: u64) -> f64 {
        lines as f64 * self.line_bytes as f64 / self.scatter_bw()
    }

    /// Time for `lines` *dependent* line fetches (each must complete before
    /// the next issues — the pointer-chasing worst case).
    pub fn dependent_time(&self, lines: u64) -> f64 {
        lines as f64 * self.latency
    }
}

/// Accumulates DRAM traffic for one simulated run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DramTraffic {
    /// Lines fetched by streaming (contiguous-pattern) misses.
    pub stream_lines: u64,
    /// Lines fetched by scattered (gather/random) misses.
    pub scatter_lines: u64,
    /// Lines written back.
    pub writeback_lines: u64,
}

impl DramTraffic {
    pub fn total_lines(&self) -> u64 {
        self.stream_lines + self.scatter_lines + self.writeback_lines
    }

    pub fn total_bytes(&self, cfg: &DramConfig) -> u64 {
        self.total_lines() * cfg.line_bytes as u64
    }

    /// Bandwidth-limited time for this traffic, assuming enough parallelism
    /// to overlap latencies (GPU-style or prefetched CPU streaming).
    pub fn bandwidth_time(&self, cfg: &DramConfig) -> f64 {
        cfg.stream_time(self.stream_lines + self.writeback_lines)
            + cfg.scatter_time(self.scatter_lines)
    }

    pub fn add(&mut self, other: &DramTraffic) {
        self.stream_lines += other.stream_lines;
        self.scatter_lines += other.scatter_lines;
        self.writeback_lines += other.writeback_lines;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exynos_defaults_sane() {
        let d = DramConfig::ddr3l_1600_x32();
        assert!(d.stream_bw() > 4.0e9 && d.stream_bw() < 6.4e9);
        assert!(d.scatter_bw() < d.stream_bw());
        assert!(d.latency > 50e-9);
    }

    #[test]
    fn stream_time_scales_linearly() {
        let d = DramConfig::ddr3l_1600_x32();
        let t1 = d.stream_time(1000);
        let t2 = d.stream_time(2000);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dependent_fetches_cost_latency_each() {
        let d = DramConfig::ddr3l_1600_x32();
        assert!((d.dependent_time(100) - 100.0 * d.latency).abs() < 1e-15);
        // Dependent access is far slower than streaming the same lines.
        assert!(d.dependent_time(100) > 5.0 * d.stream_time(100));
    }

    #[test]
    fn traffic_accumulates() {
        let mut t = DramTraffic::default();
        t.add(&DramTraffic {
            stream_lines: 10,
            scatter_lines: 5,
            writeback_lines: 2,
        });
        t.add(&DramTraffic {
            stream_lines: 1,
            scatter_lines: 0,
            writeback_lines: 0,
        });
        assert_eq!(t.total_lines(), 18);
        let cfg = DramConfig::ddr3l_1600_x32();
        assert_eq!(t.total_bytes(&cfg), 18 * 64);
        assert!(t.bandwidth_time(&cfg) > 0.0);
    }

    #[test]
    fn scattered_traffic_slower_than_streamed() {
        let cfg = DramConfig::ddr3l_1600_x32();
        let streamed = DramTraffic {
            stream_lines: 1000,
            ..Default::default()
        };
        let scattered = DramTraffic {
            scatter_lines: 1000,
            ..Default::default()
        };
        assert!(scattered.bandwidth_time(&cfg) > streamed.bandwidth_time(&cfg));
    }
}
