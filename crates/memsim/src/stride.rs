//! Stream/stride detection for scalar access sequences.
//!
//! The IR can only mark an access *Gather* when a single instruction has
//! per-lane indices. A scalar load whose address hops around (spmv's
//! `x[col[j]]`, pointer-ish walks) looks identical to a streaming load at
//! the instruction level — this classifier tells them apart by watching
//! the address deltas per memory region, the way a hardware prefetcher
//! decides whether to engage.

use crate::hash::AddrMap;

/// Address-delta classifier: an access is *streaming* when it lands within
/// `window` bytes of the previous access to the same region.
#[derive(Clone, Debug)]
pub struct StrideClassifier {
    last: AddrMap<u64>,
    /// Region granularity in address bits (default 14 → 16 KiB regions:
    /// fine enough that interleaved walks of different buffers — or of
    /// different planes of one volume — track as independent streams,
    /// like the multiple stream engines of a hardware prefetcher).
    region_shift: u32,
    /// Maximum |delta| in bytes still considered part of a stream.
    window: u64,
}

impl Default for StrideClassifier {
    fn default() -> Self {
        StrideClassifier {
            last: AddrMap::default(),
            region_shift: 14,
            window: 4096,
        }
    }
}

impl StrideClassifier {
    pub fn new(region_shift: u32, window: u64) -> Self {
        StrideClassifier {
            last: AddrMap::default(),
            region_shift,
            window,
        }
    }

    /// Record an access on stream `stream` (e.g. the buffer's argument
    /// index); returns `true` when it continues that stream.
    pub fn classify_stream(&mut self, stream: u32, addr: u64) -> bool {
        let region = ((stream as u64) << 40) | (addr >> self.region_shift);
        let streaming = match self.last.get(&region) {
            Some(&prev) => addr.abs_diff(prev) <= self.window,
            // First touch of a region: treat as stream start (cold misses
            // are charged as streaming, which matches prefetcher behaviour
            // on a fresh sequential walk).
            None => true,
        };
        self.last.insert(region, addr);
        streaming
    }

    /// Single-stream convenience wrapper.
    pub fn classify(&mut self, addr: u64) -> bool {
        self.classify_stream(0, addr)
    }

    pub fn reset(&mut self) {
        self.last.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_walk_is_streaming() {
        let mut c = StrideClassifier::default();
        assert!((0..100).all(|i| c.classify(i * 4)));
    }

    #[test]
    fn strided_walk_within_window_is_streaming() {
        let mut c = StrideClassifier::default();
        // 640-byte stride (dmmm column walk) still counts as a stream.
        assert!((0..100u64).all(|i| c.classify(i * 640)));
    }

    #[test]
    fn random_hops_are_scattered() {
        // Jumps larger than the window inside one region (spmv's x-vector
        // gathers) classify as scattered after the first touch.
        let mut c = StrideClassifier::default();
        let addrs = [0u64, 8000, 100, 12000, 500];
        let results: Vec<bool> = addrs.iter().map(|&a| c.classify(a)).collect();
        assert!(results[0], "first touch starts a stream");
        let scattered = results[1..].iter().filter(|&&s| !s).count();
        assert_eq!(
            scattered, 4,
            "in-region hops beyond the window must scatter"
        );
        c.reset();
        // Distinct regions track independently: a first touch far away is a
        // fresh stream, not a scatter.
        assert!(c.classify(1 << 20));
    }

    #[test]
    fn regions_tracked_independently() {
        // Two interleaved sequential streams in different regions must both
        // classify as streaming (the A-row/B-row interleave of dmmm).
        let mut c = StrideClassifier::default();
        let base_b = 16 << 14;
        let mut all_stream = true;
        for i in 0..50u64 {
            all_stream &= c.classify(i * 4);
            all_stream &= c.classify(base_b + i * 4);
        }
        assert!(all_stream);
    }

    #[test]
    fn reset_forgets_history() {
        let mut c = StrideClassifier::default();
        c.classify(0);
        c.classify(4);
        c.reset();
        assert!(
            c.classify(1 << 30),
            "first touch after reset is a stream start"
        );
    }
}
