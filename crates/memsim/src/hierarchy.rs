//! A small cache hierarchy: optional L1 in front of an L2 in front of DRAM
//! traffic accounting.
//!
//! The CPU model instantiates L1(32K)+L2(1M); the Mali model instantiates
//! only the shared L2(256K). The hierarchy classifies each access's deepest
//! level and sorts DRAM line fetches into streaming vs scattered traffic
//! based on the access pattern the IR interpreter reported.

use crate::cache::{Cache, CacheConfig, Probe};
use crate::dram::DramTraffic;

/// Deepest level an access had to reach.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HitLevel {
    L1,
    L2,
    Dram,
}

/// Per-access outcome summary for cost models.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessOutcome {
    pub l1_hits: u32,
    pub l2_hits: u32,
    pub dram_lines: u32,
    pub writeback_lines: u32,
}

impl AccessOutcome {
    pub fn deepest(&self) -> HitLevel {
        if self.dram_lines > 0 {
            HitLevel::Dram
        } else if self.l2_hits > 0 {
            HitLevel::L2
        } else {
            HitLevel::L1
        }
    }
}

/// Aggregate statistics for one simulated kernel run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HierarchyStats {
    pub accesses: u64,
    pub l1_hits: u64,
    pub l2_hits: u64,
    pub dram_lines: u64,
    pub traffic: DramTraffic,
}

/// The hierarchy proper.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    l1: Option<Cache>,
    l2: Cache,
    pub stats: HierarchyStats,
}

impl Hierarchy {
    /// CPU-style two-level hierarchy.
    pub fn with_l1(l1: CacheConfig, l2: CacheConfig) -> Self {
        Hierarchy {
            l1: Some(Cache::new(l1)),
            l2: Cache::new(l2),
            stats: Default::default(),
        }
    }

    /// GPU-style single shared L2.
    pub fn l2_only(l2: CacheConfig) -> Self {
        Hierarchy {
            l1: None,
            l2: Cache::new(l2),
            stats: Default::default(),
        }
    }

    pub fn reset(&mut self) {
        if let Some(l1) = &mut self.l1 {
            l1.reset();
        }
        self.l2.reset();
        self.stats = Default::default();
    }

    pub fn l2_stats(&self) -> crate::cache::CacheStats {
        self.l2.stats
    }

    /// Run one span access through the hierarchy.
    ///
    /// `streaming` marks whether DRAM line fetches caused by this access
    /// should be charged at streaming or scattered bandwidth (set from the
    /// IR access pattern: contiguous/scalar sequential → streaming; gather →
    /// scattered).
    pub fn access(&mut self, addr: u64, bytes: u32, write: bool, streaming: bool) -> AccessOutcome {
        self.stats.accesses += 1;
        let mut out = AccessOutcome::default();
        let shift = self.l2.line_shift();
        let first = addr >> shift;
        let last = (addr + bytes.max(1) as u64 - 1) >> shift;
        for l in first..=last {
            let a = l << shift;
            // L1 probe (if present).
            if let Some(l1) = &mut self.l1 {
                match l1.probe(a, write) {
                    Probe::Hit => {
                        out.l1_hits += 1;
                        continue;
                    }
                    Probe::Miss { writeback } => {
                        if writeback {
                            // L1 victim written into L2.
                            let _ = self.l2.probe(a, true);
                        }
                    }
                }
            }
            // L2 probe.
            match self.l2.probe(a, write) {
                Probe::Hit => out.l2_hits += 1,
                Probe::Miss { writeback } => {
                    out.dram_lines += 1;
                    if writeback {
                        out.writeback_lines += 1;
                    }
                }
            }
        }
        self.stats.l1_hits += out.l1_hits as u64;
        self.stats.l2_hits += out.l2_hits as u64;
        self.stats.dram_lines += out.dram_lines as u64;
        if streaming {
            self.stats.traffic.stream_lines += out.dram_lines as u64;
        } else {
            self.stats.traffic.scatter_lines += out.dram_lines as u64;
        }
        self.stats.traffic.writeback_lines += out.writeback_lines as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu_like() -> Hierarchy {
        Hierarchy::with_l1(
            CacheConfig::new(1024, 64, 2), // tiny L1 for testability
            CacheConfig::new(8192, 64, 4),
        )
    }

    #[test]
    fn l1_hit_after_fill() {
        let mut h = cpu_like();
        let first = h.access(0x40, 4, false, true);
        assert_eq!(first.deepest(), HitLevel::Dram);
        let second = h.access(0x44, 4, false, true);
        assert_eq!(second.deepest(), HitLevel::L1);
    }

    #[test]
    fn l2_catches_l1_evictions() {
        let mut h = cpu_like();
        // Fill 2 KiB (> L1 1 KiB, < L2 8 KiB).
        for i in 0..32u64 {
            h.access(i * 64, 64, false, true);
        }
        // Second pass: L1 misses for early lines, but L2 holds everything.
        let out = h.access(0, 64, false, true);
        assert_eq!(out.deepest(), HitLevel::L2);
        assert_eq!(out.dram_lines, 0);
    }

    #[test]
    fn traffic_classified_by_pattern() {
        let mut h = Hierarchy::l2_only(CacheConfig::new(1024, 64, 2));
        h.access(0, 64, false, true);
        h.access(4096, 64, false, false);
        assert_eq!(h.stats.traffic.stream_lines, 1);
        assert_eq!(h.stats.traffic.scatter_lines, 1);
    }

    #[test]
    fn writes_generate_writebacks_on_eviction() {
        let mut h = Hierarchy::l2_only(CacheConfig::new(128, 64, 1)); // 2 sets, direct-mapped
        h.access(0, 4, true, true); // dirty set 0
        let out = h.access(128, 4, false, true); // same set, evicts dirty line
        assert_eq!(out.writeback_lines, 1);
        assert_eq!(h.stats.traffic.writeback_lines, 1);
    }

    #[test]
    fn span_crossing_lines_counts_each() {
        let mut h = Hierarchy::l2_only(CacheConfig::new(1024, 64, 2));
        let out = h.access(60, 8, false, true); // straddles two lines
        assert_eq!(out.dram_lines, 2);
    }

    #[test]
    fn stats_accumulate() {
        let mut h = cpu_like();
        for i in 0..16u64 {
            h.access(i * 4, 4, false, true);
        }
        assert_eq!(h.stats.accesses, 16);
        assert_eq!(h.stats.l1_hits, 15); // one 64B line fill, 15 hits
        assert_eq!(h.stats.dram_lines, 1);
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut h = cpu_like();
        h.access(0, 4, false, true);
        h.reset();
        assert_eq!(h.stats.accesses, 0);
        let out = h.access(0, 4, false, true);
        assert_eq!(out.deepest(), HitLevel::Dram);
    }
}
