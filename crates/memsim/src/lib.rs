//! # memsim — cache and DRAM models for the Exynos 5250 reproduction
//!
//! Shared by `cpu-sim` (Cortex-A15: private L1 + shared L2 + DRAM) and
//! `mali-gpu` (shared L2 + DRAM). The models are tag-accurate set-associative
//! LRU caches plus a bandwidth/latency DRAM layer that distinguishes
//! streaming from scattered traffic — the distinction that makes the paper's
//! "use vector loads / contiguous accesses" guideline measurable.

pub mod cache;
pub mod dram;
pub mod hash;
pub mod hierarchy;
pub mod stride;

pub use cache::{Cache, CacheConfig, CacheStats, Probe};
pub use dram::{DramConfig, DramTraffic};
pub use hash::{AddrMap, BuildAddrHasher};
pub use hierarchy::{AccessOutcome, Hierarchy, HierarchyStats, HitLevel};
pub use stride::StrideClassifier;

#[cfg(test)]
mod randomized_tests {
    //! Seeded randomized sweeps (the former proptest suite, rewritten over
    //! the in-tree PRNG so the workspace builds offline).

    use super::*;
    use sim_rng::Pcg32;

    /// Cache invariant: hits + misses == accesses, writebacks <= misses.
    #[test]
    fn cache_counters_consistent() {
        let mut rng = Pcg32::seed_from_u64(0xCAC4E);
        for _ in 0..64 {
            let mut c = Cache::new(CacheConfig::new(2048, 64, 2));
            let n = rng.gen_range_usize(1, 500);
            for _ in 0..n {
                c.probe(rng.next_u64() % 65536, rng.gen_bool());
            }
            assert_eq!(c.stats.hits + c.stats.misses, c.stats.accesses);
            assert!(c.stats.writebacks <= c.stats.misses);
        }
    }

    /// Repeating the same trace twice can only raise the hit count on
    /// the second pass when the working set fits.
    #[test]
    fn resident_set_hits_on_second_pass() {
        let mut rng = Pcg32::seed_from_u64(0x5EC0);
        for _ in 0..64 {
            let start = rng.next_u64() % 1024;
            let mut c = Cache::new(CacheConfig::new(4096, 64, 4));
            // 2 KiB working set fits in 4 KiB.
            for i in 0..32u64 {
                c.probe(start + i * 64, false);
            }
            let misses_first = c.stats.misses;
            for i in 0..32u64 {
                c.probe(start + i * 64, false);
            }
            assert_eq!(c.stats.misses, misses_first, "second pass must be all hits");
        }
    }

    /// Hierarchy invariant: per-access outcome lines sum to the lines the
    /// span touches.
    #[test]
    fn hierarchy_outcome_covers_span() {
        let mut rng = Pcg32::seed_from_u64(0x41E2);
        for _ in 0..256 {
            let addr = rng.next_u64() % 100_000;
            let bytes = 1 + rng.gen_below(255);
            let mut h =
                Hierarchy::with_l1(CacheConfig::new(1024, 64, 2), CacheConfig::new(8192, 64, 4));
            let out = h.access(addr, bytes, false, true);
            let first = addr / 64;
            let last = (addr + bytes as u64 - 1) / 64;
            let lines = (last - first + 1) as u32;
            assert_eq!(out.l1_hits + out.l2_hits + out.dram_lines, lines);
        }
    }

    /// DRAM traffic time is monotone in the number of lines.
    #[test]
    fn dram_time_monotone() {
        let cfg = DramConfig::ddr3l_1600_x32();
        let mut rng = Pcg32::seed_from_u64(0xD3A);
        for _ in 0..256 {
            let a = rng.next_u64() % 10_000;
            let b = rng.next_u64() % 10_000;
            let (lo, hi) = (a.min(b), a.max(b));
            let t_lo = DramTraffic {
                stream_lines: lo,
                ..Default::default()
            }
            .bandwidth_time(&cfg);
            let t_hi = DramTraffic {
                stream_lines: hi,
                ..Default::default()
            }
            .bandwidth_time(&cfg);
            assert!(t_lo <= t_hi);
        }
    }
}
