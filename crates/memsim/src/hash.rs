//! A fast hasher for the simulator's address-keyed maps.
//!
//! The stride classifier and the atomic-hotspot map are probed once per
//! memory event — hundreds of millions of times in a paper-scale run — and
//! their keys are already well-mixed u64 region/line numbers, so the
//! default SipHash costs more than the lookup it protects. This hasher is a
//! single Fibonacci multiply (the classic `hash = key * 2^64/φ` spread),
//! which is plenty for power-of-two bucket counts and makes the map probe
//! a few cycles. DoS resistance is irrelevant here: keys come from the
//! simulation itself, not from untrusted input, and map iteration order is
//! never observed, so swapping the hasher cannot change any simulation
//! output.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher for u64 keys (also accepts the raw-bytes path so
/// it is a valid general [`Hasher`], just not an optimized one).
#[derive(Default)]
pub struct AddrHasher {
    state: u64,
}

impl Hasher for AddrHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state ^ b as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        // Golden-ratio multiply: spreads low-entropy keys across the high
        // bits, which HashMap's bucket index is taken from.
        self.state = (self.state ^ v).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// `BuildHasher` for [`AddrHasher`] — drop-in for HashMap's default.
pub type BuildAddrHasher = BuildHasherDefault<AddrHasher>;

/// A `HashMap` keyed by addresses/regions with the fast hasher.
pub type AddrMap<V> = std::collections::HashMap<u64, V, BuildAddrHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: AddrMap<u64> = AddrMap::default();
        for i in 0..1000u64 {
            m.insert(i << 14, i);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i << 14)), Some(&i));
        }
        assert_eq!(m.get(&1), None);
    }

    #[test]
    fn nearby_keys_spread() {
        // Sequential region numbers must not all collide in the high bits.
        let h = |k: u64| {
            let mut s = AddrHasher::default();
            s.write_u64(k);
            s.finish() >> 57
        };
        let distinct: std::collections::HashSet<u64> = (0..64).map(h).collect();
        assert!(
            distinct.len() > 16,
            "only {} distinct buckets",
            distinct.len()
        );
    }
}
