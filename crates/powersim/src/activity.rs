//! Activity vectors: what the device simulators report, and what the power
//! model converts to watts.

/// Resource-activity summary of one benchmark run on the SoC.
///
/// Every field is a *busy time in seconds* (or bytes for DRAM): the device
/// models integrate utilization over the run, so a pipe at 50% utilization
/// for 2 s reports 1 s of busy time. The power model multiplies these by
/// per-resource power coefficients.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Activity {
    /// Wall-clock duration of the measured region, seconds.
    pub duration_s: f64,
    /// Busy seconds of each Cortex-A15 core (compute + stalls-on-memory;
    /// i.e. not clock-gated).
    pub cpu_busy_s: [f64; 2],
    /// Seconds during which the GPU is powered (job on the job manager).
    pub gpu_active_s: f64,
    /// Arithmetic-pipe busy seconds summed over all 8 pipes, normalized to
    /// one pipe (0..=8 × duration effectively, but we store pipe-seconds /
    /// 8 so the coefficient is "all arith pipes at full").
    pub gpu_arith_util_s: f64,
    /// Load/store-pipe busy seconds, normalized the same way (fraction of
    /// all 4 LS pipes, times seconds).
    pub gpu_ls_util_s: f64,
    /// Total DRAM bytes moved (lines × 64).
    pub dram_bytes: u64,
}

impl Activity {
    /// Activity of an idle board over `t` seconds.
    pub fn idle(t: f64) -> Self {
        Activity {
            duration_s: t,
            ..Default::default()
        }
    }

    /// Sum two sequential activity windows.
    pub fn concat(&self, other: &Activity) -> Activity {
        Activity {
            duration_s: self.duration_s + other.duration_s,
            cpu_busy_s: [
                self.cpu_busy_s[0] + other.cpu_busy_s[0],
                self.cpu_busy_s[1] + other.cpu_busy_s[1],
            ],
            gpu_active_s: self.gpu_active_s + other.gpu_active_s,
            gpu_arith_util_s: self.gpu_arith_util_s + other.gpu_arith_util_s,
            gpu_ls_util_s: self.gpu_ls_util_s + other.gpu_ls_util_s,
            dram_bytes: self.dram_bytes + other.dram_bytes,
        }
    }

    /// Scale the window as if the run repeated `n` times (used by the
    /// harness to stretch short kernels to meter-friendly durations, exactly
    /// like the paper's "we adjusted the number of iterations" methodology).
    pub fn repeat(&self, n: u32) -> Activity {
        let k = n as f64;
        Activity {
            duration_s: self.duration_s * k,
            cpu_busy_s: [self.cpu_busy_s[0] * k, self.cpu_busy_s[1] * k],
            gpu_active_s: self.gpu_active_s * k,
            gpu_arith_util_s: self.gpu_arith_util_s * k,
            gpu_ls_util_s: self.gpu_ls_util_s * k,
            dram_bytes: self.dram_bytes * n as u64,
        }
    }

    /// Average DRAM bandwidth over the window, bytes/second.
    pub fn dram_bw(&self) -> f64 {
        if self.duration_s == 0.0 {
            0.0
        } else {
            self.dram_bytes as f64 / self.duration_s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_is_all_zero_but_time() {
        let a = Activity::idle(2.0);
        assert_eq!(a.duration_s, 2.0);
        assert_eq!(a.cpu_busy_s, [0.0, 0.0]);
        assert_eq!(a.dram_bytes, 0);
    }

    #[test]
    fn concat_adds_everything() {
        let a = Activity {
            duration_s: 1.0,
            cpu_busy_s: [1.0, 0.0],
            gpu_active_s: 0.0,
            gpu_arith_util_s: 0.0,
            gpu_ls_util_s: 0.0,
            dram_bytes: 100,
        };
        let b = Activity {
            duration_s: 2.0,
            cpu_busy_s: [0.5, 2.0],
            gpu_active_s: 2.0,
            gpu_arith_util_s: 1.0,
            gpu_ls_util_s: 0.25,
            dram_bytes: 900,
        };
        let c = a.concat(&b);
        assert_eq!(c.duration_s, 3.0);
        assert_eq!(c.cpu_busy_s, [1.5, 2.0]);
        assert_eq!(c.dram_bytes, 1000);
        assert_eq!(c.gpu_arith_util_s, 1.0);
    }

    #[test]
    fn repeat_scales_linearly() {
        let a = Activity {
            duration_s: 0.1,
            cpu_busy_s: [0.1, 0.0],
            dram_bytes: 64,
            ..Default::default()
        };
        let r = a.repeat(20);
        assert!((r.duration_s - 2.0).abs() < 1e-12);
        assert_eq!(r.dram_bytes, 1280);
    }

    #[test]
    fn bandwidth_calc() {
        let a = Activity {
            duration_s: 2.0,
            dram_bytes: 1_000_000,
            ..Default::default()
        };
        assert_eq!(a.dram_bw(), 500_000.0);
        assert_eq!(Activity::default().dram_bw(), 0.0);
    }
}
