//! # powersim — board power model and power-meter simulation
//!
//! Reproduces the measurement side of the paper's methodology (§IV):
//!
//! * an **activity-based power model** of the Arndale / Exynos 5250 board
//!   (`P = P_idle + ΣP_i·util_i` over CPU cores, GPU pipes and the DRAM
//!   interface) — see [`PowerModel`];
//! * a **Yokogawa WT230** model (10 Hz sampling, 0.1% accuracy, 20-repetition
//!   mean/σ statistics) — see [`Wt230`];
//! * the [`Activity`] vector produced by `cpu-sim`/`mali-gpu` runs and
//!   consumed by both.
//!
//! Energy-to-solution (Figure 4 of the paper) is the measured energy of the
//! benchmark's parallel region, normalized to the Serial version by the
//! harness.

pub mod activity;
pub mod meter;
pub mod model;

pub use activity::Activity;
pub use meter::{mean_std, Measurement, MeterConfig, Wt230};
pub use model::PowerModel;

#[cfg(test)]
mod randomized_tests {
    //! Seeded randomized sweeps (the former proptest suite, rewritten over
    //! the in-tree PRNG so the workspace builds offline).

    use super::*;
    use sim_rng::Pcg32;

    fn random_activity(rng: &mut Pcg32) -> Activity {
        let t = 0.001 + rng.next_f64() * 10.0;
        let c0 = rng.next_f64() * 10.0;
        let c1 = rng.next_f64() * 10.0;
        let ga = rng.next_f64() * 10.0;
        let gl = rng.next_f64() * 10.0;
        let d = rng.next_u64() % 10_000_000_000;
        Activity {
            duration_s: t,
            cpu_busy_s: [c0.min(t), c1.min(t)],
            gpu_active_s: ga.min(t),
            gpu_arith_util_s: ga.min(t).min(gl + ga) * 0.5,
            gpu_ls_util_s: gl.min(t),
            dram_bytes: d,
        }
    }

    /// Power is bounded below by idle and above by the sum of all
    /// coefficients.
    #[test]
    fn power_bounded() {
        let m = PowerModel::default();
        let max = m.board_idle_w
            + 2.0 * m.cpu_core_w
            + m.host_during_gpu_w
            + m.gpu_base_w
            + m.gpu_arith_full_w
            + m.gpu_ls_full_w
            + m.dram_full_w;
        let mut rng = Pcg32::seed_from_u64(0xB0A7);
        for _ in 0..256 {
            let a = random_activity(&mut rng);
            let p = m.average_power(&a);
            assert!(p >= m.board_idle_w - 1e-12, "below idle for {a:?}");
            assert!(p <= max + 1e-9, "above rail sum for {a:?}");
        }
    }

    /// The meter's reading stays within gain+noise bounds of the truth.
    #[test]
    fn meter_within_rated_accuracy() {
        let m = PowerModel::default();
        let mut rng = Pcg32::seed_from_u64(0x57D);
        for seed in 0..128u64 {
            let a = random_activity(&mut rng);
            let truth = m.average_power(&a);
            let meas = Wt230::with_defaults(seed).measure(&m, &a, 20);
            let tol = 0.0016; // 0.1% gain + 0.05% noise, with margin
            assert!(
                (meas.mean_power_w - truth).abs() <= truth * tol,
                "seed {seed}: {} vs truth {truth}",
                meas.mean_power_w
            );
        }
    }

    /// Energy scales linearly when the activity window repeats.
    #[test]
    fn energy_linear_in_repeats() {
        let m = PowerModel::default();
        let mut rng = Pcg32::seed_from_u64(0xE4E);
        for _ in 0..128 {
            let a = random_activity(&mut rng);
            let n = 1 + rng.gen_below(19);
            let e1 = m.energy(&a);
            let en = m.energy(&a.repeat(n));
            assert!(
                (en - e1 * n as f64).abs() <= e1 * n as f64 * 1e-9 + 1e-12,
                "n {n}: {en} vs {e1}"
            );
        }
    }
}
