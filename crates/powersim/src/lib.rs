//! # powersim — board power model and power-meter simulation
//!
//! Reproduces the measurement side of the paper's methodology (§IV):
//!
//! * an **activity-based power model** of the Arndale / Exynos 5250 board
//!   (`P = P_idle + ΣP_i·util_i` over CPU cores, GPU pipes and the DRAM
//!   interface) — see [`PowerModel`];
//! * a **Yokogawa WT230** model (10 Hz sampling, 0.1% accuracy, 20-repetition
//!   mean/σ statistics) — see [`Wt230`];
//! * the [`Activity`] vector produced by `cpu-sim`/`mali-gpu` runs and
//!   consumed by both.
//!
//! Energy-to-solution (Figure 4 of the paper) is the measured energy of the
//! benchmark's parallel region, normalized to the Serial version by the
//! harness.

pub mod activity;
pub mod meter;
pub mod model;

pub use activity::Activity;
pub use meter::{mean_std, Measurement, MeterConfig, Wt230};
pub use model::PowerModel;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_activity() -> impl Strategy<Value = Activity> {
        (
            0.001f64..10.0,
            0.0f64..10.0,
            0.0f64..10.0,
            0.0f64..10.0,
            0.0f64..10.0,
            0u64..10_000_000_000,
        )
            .prop_map(|(t, c0, c1, ga, gl, d)| Activity {
                duration_s: t,
                cpu_busy_s: [c0.min(t), c1.min(t)],
                gpu_active_s: ga.min(t),
                gpu_arith_util_s: ga.min(t).min(gl + ga) * 0.5,
                gpu_ls_util_s: gl.min(t),
                dram_bytes: d,
            })
    }

    proptest! {
        /// Power is bounded below by idle and above by the sum of all
        /// coefficients.
        #[test]
        fn power_bounded(a in arb_activity()) {
            let m = PowerModel::default();
            let p = m.average_power(&a);
            let max = m.board_idle_w + 2.0 * m.cpu_core_w + m.host_during_gpu_w
                + m.gpu_base_w + m.gpu_arith_full_w + m.gpu_ls_full_w + m.dram_full_w;
            prop_assert!(p >= m.board_idle_w - 1e-12);
            prop_assert!(p <= max + 1e-9);
        }

        /// The meter's reading stays within gain+noise bounds of the truth.
        #[test]
        fn meter_within_rated_accuracy(a in arb_activity(), seed in 0u64..1000) {
            let m = PowerModel::default();
            let truth = m.average_power(&a);
            let meas = Wt230::with_defaults(seed).measure(&m, &a, 20);
            let tol = 0.0016; // 0.1% gain + 0.05% noise, with margin
            prop_assert!((meas.mean_power_w - truth).abs() <= truth * tol);
        }

        /// Energy scales linearly when the activity window repeats.
        #[test]
        fn energy_linear_in_repeats(a in arb_activity(), n in 1u32..20) {
            let m = PowerModel::default();
            let e1 = m.energy(&a);
            let en = m.energy(&a.repeat(n));
            prop_assert!((en - e1 * n as f64).abs() <= e1 * n as f64 * 1e-9 + 1e-12);
        }
    }
}
