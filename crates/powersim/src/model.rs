//! Board power model for the Samsung Exynos 5 Dual (Arndale) platform.
//!
//! Activity-based: `P = P_idle + Σ coefficient × utilization`. Coefficients
//! are calibrated so the *relative* power figures of the paper's Figure 3
//! hold: OpenMP ≈ +31% over Serial, OpenCL on the GPU ≈ Serial ±20% with
//! the sign tracking pipe/DRAM utilization.

use crate::activity::Activity;

/// Power coefficients of the simulated board (watts).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerModel {
    /// Whole-board idle power: PMIC, DRAM refresh, peripherals, both CPU
    /// cores clock-gated, GPU power-gated.
    pub board_idle_w: f64,
    /// One Cortex-A15 core running flat out at 1.7 GHz.
    pub cpu_core_w: f64,
    /// Host-side driver overhead while a GPU job is in flight (the CPU
    /// polls/sleeps in `clFinish`).
    pub host_during_gpu_w: f64,
    /// GPU powered with the job manager active but pipes idle.
    pub gpu_base_w: f64,
    /// All eight arithmetic pipes at 100% issue rate.
    pub gpu_arith_full_w: f64,
    /// All four load/store pipes at 100% issue rate.
    pub gpu_ls_full_w: f64,
    /// DRAM interface at 100% of sustained streaming bandwidth.
    pub dram_full_w: f64,
    /// Sustained bandwidth that counts as "100% DRAM utilization", bytes/s.
    pub dram_ref_bw: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            board_idle_w: 2.60,
            cpu_core_w: 1.25,
            host_during_gpu_w: 0.18,
            gpu_base_w: 0.35,
            gpu_arith_full_w: 1.05,
            gpu_ls_full_w: 0.35,
            dram_full_w: 1.10,
            dram_ref_bw: 5.12e9,
        }
    }
}

impl PowerModel {
    /// Average board power over an activity window, watts.
    pub fn average_power(&self, a: &Activity) -> f64 {
        if a.duration_s <= 0.0 {
            return self.board_idle_w;
        }
        let t = a.duration_s;
        let cpu = (a.cpu_busy_s[0] + a.cpu_busy_s[1]) / t * self.cpu_core_w;
        let gpu_window = (a.gpu_active_s / t).clamp(0.0, 1.0);
        let gpu = gpu_window * (self.gpu_base_w + self.host_during_gpu_w)
            + (a.gpu_arith_util_s / t).clamp(0.0, 1.0) * self.gpu_arith_full_w
            + (a.gpu_ls_util_s / t).clamp(0.0, 1.0) * self.gpu_ls_full_w;
        let dram = (a.dram_bw() / self.dram_ref_bw).clamp(0.0, 1.0) * self.dram_full_w;
        self.board_idle_w + cpu + gpu + dram
    }

    /// Exact energy of the window (power × time), joules. The meter model
    /// in [`crate::meter`] adds sampling/accuracy effects on top of this.
    pub fn energy(&self, a: &Activity) -> f64 {
        self.average_power(a) * a.duration_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serial_like(t: f64) -> Activity {
        Activity {
            duration_s: t,
            cpu_busy_s: [t, 0.0],
            dram_bytes: (1.0e9 * t) as u64,
            ..Default::default()
        }
    }

    #[test]
    fn idle_power_is_baseline() {
        let m = PowerModel::default();
        assert_eq!(m.average_power(&Activity::idle(1.0)), m.board_idle_w);
    }

    #[test]
    fn openmp_power_ratio_in_paper_band() {
        // Paper Fig. 3(a): OpenMP power is +23%..+45% over Serial.
        let m = PowerModel::default();
        let serial = serial_like(1.0);
        let omp = Activity {
            duration_s: 0.6,
            cpu_busy_s: [0.6, 0.6],
            dram_bytes: (1.6e9 * 0.6) as u64,
            ..Default::default()
        };
        let ratio = m.average_power(&omp) / m.average_power(&serial);
        assert!(
            (1.15..1.55).contains(&ratio),
            "OpenMP/Serial power ratio {ratio:.2} outside plausible band"
        );
    }

    #[test]
    fn gpu_power_near_serial() {
        // Paper Fig. 3(a): OpenCL power within roughly -20%..+25% of Serial.
        let m = PowerModel::default();
        let serial = serial_like(1.0);
        let gpu = Activity {
            duration_s: 1.0,
            gpu_active_s: 1.0,
            gpu_arith_util_s: 0.7,
            gpu_ls_util_s: 0.5,
            dram_bytes: 2_000_000_000,
            ..Default::default()
        };
        let ratio = m.average_power(&gpu) / m.average_power(&serial);
        assert!(
            (0.75..1.30).contains(&ratio),
            "GPU/Serial power ratio {ratio:.2}"
        );
    }

    #[test]
    fn stalled_gpu_draws_less_than_busy_gpu() {
        let m = PowerModel::default();
        let busy = Activity {
            duration_s: 1.0,
            gpu_active_s: 1.0,
            gpu_arith_util_s: 1.0,
            gpu_ls_util_s: 0.8,
            dram_bytes: 4_000_000_000,
            ..Default::default()
        };
        let stalled = Activity {
            duration_s: 1.0,
            gpu_active_s: 1.0,
            gpu_arith_util_s: 0.05,
            gpu_ls_util_s: 0.05,
            dram_bytes: 200_000_000,
            ..Default::default()
        };
        assert!(m.average_power(&stalled) < m.average_power(&busy) - 0.5);
    }

    #[test]
    fn energy_is_power_times_time() {
        let m = PowerModel::default();
        let a = serial_like(2.0);
        assert!((m.energy(&a) - m.average_power(&a) * 2.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_clamped() {
        // Over-reported activity (util > 1) must not explode the model.
        let m = PowerModel::default();
        let a = Activity {
            duration_s: 1.0,
            gpu_active_s: 5.0,
            gpu_arith_util_s: 5.0,
            gpu_ls_util_s: 5.0,
            dram_bytes: u64::MAX / 2,
            ..Default::default()
        };
        let p = m.average_power(&a);
        let max = m.board_idle_w
            + m.gpu_base_w
            + m.host_during_gpu_w
            + m.gpu_arith_full_w
            + m.gpu_ls_full_w
            + m.dram_full_w;
        assert!(p <= max + 1e-9);
    }
}
