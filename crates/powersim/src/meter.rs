//! Yokogawa WT230 power-meter model.
//!
//! The paper measures board power with a WT230: 10 Hz sampling, 0.1% rated
//! accuracy, and reports mean and standard deviation over 20 repetitions of
//! each experiment (observing that the deviation is negligible). This
//! module reproduces that measurement pipeline on top of the analytic power
//! trace, so the harness reports the same statistics the paper's Section IV-D
//! methodology produces.

use crate::activity::Activity;
use crate::model::PowerModel;
use sim_rng::Pcg32;

/// Meter characteristics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeterConfig {
    /// Sampling frequency, Hz (WT230: 10 Hz).
    pub sample_hz: f64,
    /// Rated gain accuracy as a fraction (WT230: 0.1% → 0.001). A fixed
    /// per-instrument gain error is drawn uniformly within ±accuracy.
    pub accuracy: f64,
    /// RMS of per-sample white noise as a fraction of the reading.
    pub sample_noise: f64,
}

impl Default for MeterConfig {
    fn default() -> Self {
        MeterConfig {
            sample_hz: 10.0,
            accuracy: 0.001,
            sample_noise: 0.0005,
        }
    }
}

/// One measured experiment: mean ± std over repetitions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Measurement {
    /// Simulated wall-clock duration of one repetition, seconds.
    pub duration_s: f64,
    pub mean_power_w: f64,
    pub std_power_w: f64,
    pub mean_energy_j: f64,
    pub std_energy_j: f64,
    pub repetitions: u32,
}

impl Measurement {
    /// Energy-to-solution per single run of the workload (the figure-4
    /// quantity) given that the measured window held `iters` back-to-back
    /// runs.
    pub fn energy_per_iteration(&self, iters: u32) -> f64 {
        self.mean_energy_j / iters as f64
    }

    /// Energy-delay product per solution (J·s): the metric that rewards
    /// being fast *and* frugal — E·t per iteration. Useful when comparing
    /// operating points where energy alone would pick an arbitrarily slow
    /// configuration (see the DVFS extension).
    pub fn edp_per_iteration(&self, iters: u32) -> f64 {
        let t_iter = self.duration_s / iters as f64;
        self.energy_per_iteration(iters) * t_iter
    }
}

/// The meter.
#[derive(Clone, Debug)]
pub struct Wt230 {
    cfg: MeterConfig,
    rng: Pcg32,
    /// Per-instrument gain error, fixed at construction (within ±accuracy).
    gain: f64,
    /// Fault plan captured at construction (the ambient plan forked by the
    /// meter seed, so two meters with different seeds fault independently).
    /// `None` disables injection and reproduces the fault-free pipeline
    /// bit for bit.
    faults: Option<sim_faults::FaultPlan>,
    /// Monotonic sample counter sequencing the per-sample fault rolls.
    fault_seq: u64,
}

impl Wt230 {
    /// Deterministic meter: all randomness comes from `seed` (and, when an
    /// ambient fault plan is installed, from the plan's seed).
    pub fn new(cfg: MeterConfig, seed: u64) -> Self {
        let mut rng = Pcg32::seed_from_u64(seed);
        let gain = 1.0 + rng.gen_range_f64(-cfg.accuracy, cfg.accuracy);
        let faults = sim_faults::current().map(|p| p.derive_u64(seed));
        Wt230 {
            cfg,
            rng,
            gain,
            faults,
            fault_seq: 0,
        }
    }

    pub fn with_defaults(seed: u64) -> Self {
        Wt230::new(MeterConfig::default(), seed)
    }

    /// Sample one repetition of a constant-power window; returns
    /// (mean sampled power, integrated energy).
    ///
    /// Fault injection: each 100 ms window may be dropped (the meter missed
    /// the readout) or jittered (extra noise beyond the rated accuracy).
    /// At least one sample always survives, as the real instrument always
    /// returns *something*.
    fn sample_once(&mut self, true_power: f64, duration_s: f64) -> (f64, f64) {
        let n = (duration_s * self.cfg.sample_hz).floor().max(1.0) as usize;
        let mut acc = 0.0;
        let mut kept = 0usize;
        for _ in 0..n {
            let noise = 1.0 + self.rng.gen_range_f64(-1.0, 1.0) * self.cfg.sample_noise;
            let mut reading = true_power * self.gain * noise;
            if let Some(plan) = self.faults {
                let seq = self.fault_seq;
                self.fault_seq += 1;
                if plan.roll(sim_faults::FaultSite::MeterDropout, seq) {
                    sim_faults::note(sim_faults::FaultSite::MeterDropout);
                    continue;
                }
                if plan.roll(sim_faults::FaultSite::MeterJitter, seq) {
                    sim_faults::note(sim_faults::FaultSite::MeterJitter);
                    reading *= plan.uniform(sim_faults::FaultSite::MeterJitter, seq, 0.97, 1.03);
                }
            }
            acc += reading;
            kept += 1;
        }
        if kept == 0 {
            // Every window dropped: fall back to the gain-only reading.
            acc = true_power * self.gain;
            kept = 1;
        }
        let mean = acc / kept as f64;
        (mean, mean * duration_s)
    }

    /// Full paper methodology: repeat the experiment `reps` times, sample
    /// each at 10 Hz, return mean/std statistics.
    pub fn measure(&mut self, model: &PowerModel, activity: &Activity, reps: u32) -> Measurement {
        assert!(reps > 0, "at least one repetition required");
        let true_power = model.average_power(activity);
        let mut powers = Vec::with_capacity(reps as usize);
        let mut energies = Vec::with_capacity(reps as usize);
        for _ in 0..reps {
            let (p, e) = self.sample_once(true_power, activity.duration_s);
            powers.push(p);
            energies.push(e);
        }
        let (pm, ps) = mean_std(&powers);
        let (em, es) = mean_std(&energies);
        Measurement {
            duration_s: activity.duration_s,
            mean_power_w: pm,
            std_power_w: ps,
            mean_energy_j: em,
            std_energy_j: es,
            repetitions: reps,
        }
    }
}

/// Sample mean and (population) standard deviation.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    assert!(!xs.is_empty());
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn activity(power_shape: f64, t: f64) -> Activity {
        Activity {
            duration_s: t,
            cpu_busy_s: [power_shape, 0.0],
            ..Default::default()
        }
    }

    #[test]
    fn measurement_close_to_analytic() {
        let model = PowerModel::default();
        let a = activity(2.0, 2.0);
        let truth = model.average_power(&a);
        let mut meter = Wt230::with_defaults(42);
        let m = meter.measure(&model, &a, 20);
        // Within 0.2% (gain 0.1% + noise).
        assert!(
            (m.mean_power_w - truth).abs() / truth < 0.002,
            "meter {m:?} vs truth {truth}"
        );
        assert!((m.mean_energy_j - truth * 2.0).abs() / (truth * 2.0) < 0.002);
    }

    #[test]
    fn std_dev_negligible_as_paper_reports() {
        // §IV-D: "the standard deviation is negligible".
        let model = PowerModel::default();
        let a = activity(1.0, 2.0);
        let mut meter = Wt230::with_defaults(7);
        let m = meter.measure(&model, &a, 20);
        assert!(m.std_power_w / m.mean_power_w < 0.001);
    }

    #[test]
    fn deterministic_given_seed() {
        let model = PowerModel::default();
        let a = activity(1.5, 1.0);
        let m1 = Wt230::with_defaults(99).measure(&model, &a, 20);
        let m2 = Wt230::with_defaults(99).measure(&model, &a, 20);
        assert_eq!(m1, m2);
    }

    #[test]
    fn different_instruments_differ_slightly() {
        let model = PowerModel::default();
        let a = activity(1.5, 1.0);
        let m1 = Wt230::with_defaults(1).measure(&model, &a, 20);
        let m2 = Wt230::with_defaults(2).measure(&model, &a, 20);
        assert_ne!(m1.mean_power_w, m2.mean_power_w);
        assert!((m1.mean_power_w - m2.mean_power_w).abs() / m1.mean_power_w < 0.005);
    }

    #[test]
    fn short_window_still_gets_one_sample() {
        let model = PowerModel::default();
        let a = activity(0.01, 0.01); // 10 ms < one 100 ms sample period
        let mut meter = Wt230::with_defaults(3);
        let m = meter.measure(&model, &a, 5);
        assert!(m.mean_power_w > 0.0);
    }

    #[test]
    fn energy_per_iteration_divides() {
        let m = Measurement {
            duration_s: 2.0,
            mean_power_w: 4.0,
            std_power_w: 0.0,
            mean_energy_j: 8.0,
            std_energy_j: 0.0,
            repetitions: 20,
        };
        assert_eq!(m.energy_per_iteration(4), 2.0);
    }

    #[test]
    fn edp_combines_energy_and_delay() {
        let m = Measurement {
            duration_s: 2.0,
            mean_power_w: 4.0,
            std_power_w: 0.0,
            mean_energy_j: 8.0,
            std_energy_j: 0.0,
            repetitions: 20,
        };
        // 4 iterations: 2 J and 0.5 s each -> EDP 1.0 J*s.
        assert!((m.edp_per_iteration(4) - 1.0).abs() < 1e-12);
        // A config twice as slow at half the power has the same energy but
        // twice the EDP.
        let slow = Measurement {
            duration_s: 4.0,
            mean_power_w: 2.0,
            mean_energy_j: 8.0,
            ..m
        };
        assert!(slow.edp_per_iteration(4) > m.edp_per_iteration(4) * 1.9);
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[1.0, 3.0]);
        assert_eq!(m, 2.0);
        assert_eq!(s, 1.0);
    }
}
