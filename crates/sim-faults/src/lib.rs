//! # sim-faults — deterministic fault injection for the simulation stack
//!
//! Long measurement campaigns on real boards die in boring ways: the OpenCL
//! compiler rejects a kernel, an enqueue returns `CL_OUT_OF_RESOURCES`, the
//! governor throttles the GPU mid-run, the power meter drops samples. This
//! crate models those failure paths as a reproducible *fault plan*: every
//! injected fault is a **pure function** of `(fault seed, scope, site,
//! sequence number)` — no shared RNG stream, no global mutable state on the
//! decision path — so a chaos run is byte-identical at any thread count and
//! any scheduling order.
//!
//! * [`FaultPlan`] — the seeded plan. [`FaultPlan::derive`] forks a child
//!   plan for a sub-scope (e.g. one suite cell, one retry attempt) so that
//!   faults in one cell are independent of every other cell.
//! * [`FaultSite`] — where a fault can strike (build, enqueue, meter, DVFS,
//!   worker thread). Each site has its own probability in [`FaultRates`].
//! * Ambient plumbing — [`install`] a process-wide plan (the harness CLI's
//!   `--fault-seed`), or [`with_plan`] to override it for the current thread
//!   for the duration of a closure (the harness wraps each suite cell this
//!   way). Injection hooks read [`current`].
//! * [`stats`] — per-site counters of faults actually injected, so the
//!   harness can report what the chaos run did.
//!
//! Injected errors embed [`TAG`] in their message so the retry policy can
//! distinguish simulated faults from genuine model errors ([`is_injected`]).

use sim_rng::SplitMix64;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Marker embedded in every injected error / panic message.
pub const TAG: &str = "[injected-fault]";

/// True when an error message carries the injected-fault marker.
pub fn is_injected(msg: &str) -> bool {
    msg.contains(TAG)
}

/// FNV-1a over a string — a stable, dependency-free way for injection
/// sites to key a fault decision on a program or benchmark name.
pub fn hash_key(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Where a fault can be injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// `clBuildProgram` rejects the kernel (transient in the simulation:
    /// a retry may build a fresh context successfully).
    BuildFailure,
    /// `CL_OUT_OF_RESOURCES` at enqueue time (transient).
    EnqueueOutOfResources,
    /// `CL_INVALID_KERNEL_ARGS` at enqueue time (transient).
    InvalidKernelArgs,
    /// The meter misses a 10 Hz sample window (dropout).
    MeterDropout,
    /// A meter sample carries extra noise beyond the rated accuracy.
    MeterJitter,
    /// The governor throttles the device mid-run, stretching the timing.
    DvfsThrottle,
    /// A pool worker thread dies (panic) while holding a task.
    WorkerPanic,
    /// The TCP connect to a peer is refused (the fleet's shard died, a
    /// restart is racing the request).
    NetConnectRefused,
    /// A socket read/write stalls. The stall duration is *recorded*, not
    /// slept (like the cell retry backoff), so chaos runs stay fast.
    NetStall,
    /// The peer's response is cut short mid-stream (FIN mid-body).
    NetTruncatedResponse,
    /// The response status line arrives as garbage (proxy corruption,
    /// protocol desync).
    NetGarbageStatus,
}

impl FaultSite {
    pub const ALL: [FaultSite; 11] = [
        FaultSite::BuildFailure,
        FaultSite::EnqueueOutOfResources,
        FaultSite::InvalidKernelArgs,
        FaultSite::MeterDropout,
        FaultSite::MeterJitter,
        FaultSite::DvfsThrottle,
        FaultSite::WorkerPanic,
        FaultSite::NetConnectRefused,
        FaultSite::NetStall,
        FaultSite::NetTruncatedResponse,
        FaultSite::NetGarbageStatus,
    ];

    fn index(self) -> usize {
        match self {
            FaultSite::BuildFailure => 0,
            FaultSite::EnqueueOutOfResources => 1,
            FaultSite::InvalidKernelArgs => 2,
            FaultSite::MeterDropout => 3,
            FaultSite::MeterJitter => 4,
            FaultSite::DvfsThrottle => 5,
            FaultSite::WorkerPanic => 6,
            FaultSite::NetConnectRefused => 7,
            FaultSite::NetStall => 8,
            FaultSite::NetTruncatedResponse => 9,
            FaultSite::NetGarbageStatus => 10,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            FaultSite::BuildFailure => "build-failure",
            FaultSite::EnqueueOutOfResources => "enqueue-oor",
            FaultSite::InvalidKernelArgs => "invalid-args",
            FaultSite::MeterDropout => "meter-dropout",
            FaultSite::MeterJitter => "meter-jitter",
            FaultSite::DvfsThrottle => "dvfs-throttle",
            FaultSite::WorkerPanic => "worker-panic",
            FaultSite::NetConnectRefused => "net-connect-refused",
            FaultSite::NetStall => "net-stall",
            FaultSite::NetTruncatedResponse => "net-truncate",
            FaultSite::NetGarbageStatus => "net-garbage-status",
        }
    }
}

/// Per-site fault probabilities (fractions in `[0, 1]`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultRates {
    pub build_failure: f64,
    pub enqueue_oor: f64,
    pub invalid_args: f64,
    pub meter_dropout: f64,
    pub meter_jitter: f64,
    pub dvfs_throttle: f64,
    pub worker_panic: f64,
    pub net_connect_refused: f64,
    pub net_stall: f64,
    pub net_truncated_response: f64,
    pub net_garbage_status: f64,
}

impl Default for FaultRates {
    /// Chaos-test defaults: high enough that a 72-cell suite sees several
    /// faults of each class, low enough that most cells still complete
    /// (possibly after retries).
    fn default() -> Self {
        FaultRates {
            build_failure: 0.06,
            enqueue_oor: 0.06,
            invalid_args: 0.03,
            meter_dropout: 0.05,
            meter_jitter: 0.05,
            dvfs_throttle: 0.10,
            worker_panic: 0.03,
            net_connect_refused: 0.08,
            net_stall: 0.08,
            net_truncated_response: 0.08,
            net_garbage_status: 0.05,
        }
    }
}

impl FaultRates {
    /// Rates that never fire; `FaultPlan` with these is inert.
    pub fn zero() -> Self {
        FaultRates {
            build_failure: 0.0,
            enqueue_oor: 0.0,
            invalid_args: 0.0,
            meter_dropout: 0.0,
            meter_jitter: 0.0,
            dvfs_throttle: 0.0,
            worker_panic: 0.0,
            net_connect_refused: 0.0,
            net_stall: 0.0,
            net_truncated_response: 0.0,
            net_garbage_status: 0.0,
        }
    }

    fn rate(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::BuildFailure => self.build_failure,
            FaultSite::EnqueueOutOfResources => self.enqueue_oor,
            FaultSite::InvalidKernelArgs => self.invalid_args,
            FaultSite::MeterDropout => self.meter_dropout,
            FaultSite::MeterJitter => self.meter_jitter,
            FaultSite::DvfsThrottle => self.dvfs_throttle,
            FaultSite::WorkerPanic => self.worker_panic,
            FaultSite::NetConnectRefused => self.net_connect_refused,
            FaultSite::NetStall => self.net_stall,
            FaultSite::NetTruncatedResponse => self.net_truncated_response,
            FaultSite::NetGarbageStatus => self.net_garbage_status,
        }
    }
}

/// A seeded fault plan. Copyable and cheap: carries no RNG state, only the
/// seed, a scope hash, and the rate table. Every decision is recomputed as
/// a hash of `(seed, scope, site, seq)`, so two plans with equal fields
/// make identical decisions regardless of call order or thread.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    scope: u64,
    rates: FaultRates,
}

impl FaultPlan {
    /// Root plan for `--fault-seed seed` with the default chaos rates.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            scope: SplitMix64::new(seed).next_u64(),
            rates: FaultRates::default(),
        }
    }

    pub fn with_rates(mut self, rates: FaultRates) -> Self {
        self.rates = rates;
        self
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn rates(&self) -> FaultRates {
        self.rates
    }

    /// Fork a child plan scoped by a string salt (e.g.
    /// `"spmv/OpenCL-opt/f32/a0"`). Children of distinct salts make
    /// independent decisions; the same salt always yields the same child.
    pub fn derive(&self, salt: &str) -> FaultPlan {
        self.derive_u64(hash_key(salt))
    }

    /// Fork a child plan scoped by an integer salt.
    pub fn derive_u64(&self, salt: u64) -> FaultPlan {
        let mut sm = SplitMix64::new(self.scope ^ salt.rotate_left(23));
        FaultPlan {
            seed: self.seed,
            scope: sm.next_u64(),
            rates: self.rates,
        }
    }

    /// The raw 64 decision bits for `(site, seq)` — a pure function of the
    /// plan's fields.
    fn bits(&self, site: FaultSite, seq: u64) -> u64 {
        let site_salt = (site.index() as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut sm = SplitMix64::new(self.scope ^ site_salt);
        let lane = sm.next_u64();
        SplitMix64::new(lane ^ seq.wrapping_mul(0xD1B5_4A32_D192_ED03)).next_u64()
    }

    /// Uniform in `[0, 1)` for `(site, seq)`.
    fn unit(&self, site: FaultSite, seq: u64) -> f64 {
        (self.bits(site, seq) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Does the fault at `site` strike for occurrence `seq`? Deterministic;
    /// does **not** record stats (see [`note`]).
    pub fn roll(&self, site: FaultSite, seq: u64) -> bool {
        self.unit(site, seq) < self.rates.rate(site)
    }

    /// Deterministic uniform draw in `[lo, hi)` tied to `(site, seq)` —
    /// used for fault magnitudes (throttle factor, jitter amplitude).
    /// Decorrelated from the [`roll`] decision at the same `(site, seq)`.
    pub fn uniform(&self, site: FaultSite, seq: u64, lo: f64, hi: f64) -> f64 {
        let bits = SplitMix64::new(self.bits(site, seq) ^ 0xA5A5_A5A5_5A5A_5A5A).next_u64();
        let u = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + u * (hi - lo)
    }
}

// ---- ambient plan ----

/// Process-wide installed plan (`--fault-seed` / `FAULT_SEED`). `None`
/// means fault injection is off globally.
static INSTALLED: Mutex<Option<FaultPlan>> = Mutex::new(None);

thread_local! {
    /// Per-thread override stack: the top entry (even `None`) shadows the
    /// installed plan. The harness pushes a per-cell derived plan here so
    /// every injection hook a cell reaches sees that cell's scope.
    static OVERRIDE: RefCell<Vec<Option<FaultPlan>>> = const { RefCell::new(Vec::new()) };
}

/// Install (or clear, with `None`) the process-wide fault plan.
pub fn install(plan: Option<FaultPlan>) {
    *INSTALLED.lock().unwrap_or_else(|e| e.into_inner()) = plan;
}

/// The installed process-wide plan, ignoring thread-local overrides.
pub fn installed() -> Option<FaultPlan> {
    *INSTALLED.lock().unwrap_or_else(|e| e.into_inner())
}

/// The plan injection hooks should consult right now: the innermost
/// [`with_plan`] override on this thread, else the installed plan.
pub fn current() -> Option<FaultPlan> {
    let over = OVERRIDE.with(|s| s.borrow().last().copied());
    match over {
        Some(plan_or_none) => plan_or_none,
        None => installed(),
    }
}

struct PopGuard;

impl Drop for PopGuard {
    fn drop(&mut self) {
        OVERRIDE.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Run `f` with `plan` as this thread's ambient fault plan (shadowing the
/// installed plan; `None` disables injection inside `f`). Unwind-safe: the
/// override is popped even if `f` panics.
pub fn with_plan<R>(plan: Option<FaultPlan>, f: impl FnOnce() -> R) -> R {
    OVERRIDE.with(|s| s.borrow_mut().push(plan));
    let _guard = PopGuard;
    f()
}

// ---- stats ----

static STATS: [AtomicU64; 11] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Record one injected fault at `site`. Hooks call this *only* when they
/// actually inject — so [`stats`] reports faults delivered, not rolls made.
pub fn note(site: FaultSite) {
    STATS[site.index()].fetch_add(1, Ordering::Relaxed);
}

/// Injected-fault counts per site, in [`FaultSite::ALL`] order.
pub fn stats() -> [(FaultSite, u64); 11] {
    let mut out = [(FaultSite::BuildFailure, 0); 11];
    for (i, site) in FaultSite::ALL.into_iter().enumerate() {
        out[i] = (site, STATS[site.index()].load(Ordering::Relaxed));
    }
    out
}

pub fn reset_stats() {
    for s in &STATS {
        s.store(0, Ordering::Relaxed);
    }
}

/// Pool-worker hook: panic (with the injected-fault tag) if the ambient
/// plan says worker `seq`'s task dies. Call from inside the pool's
/// per-task `catch_unwind`.
pub fn maybe_worker_panic(seq: u64) {
    if let Some(plan) = current() {
        if plan.roll(FaultSite::WorkerPanic, seq) {
            note(FaultSite::WorkerPanic);
            panic!("{TAG} worker thread died on task {seq}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolls_are_pure_functions() {
        let p = FaultPlan::new(7);
        let q = FaultPlan::new(7);
        for site in FaultSite::ALL {
            for seq in 0..64 {
                assert_eq!(p.roll(site, seq), q.roll(site, seq));
                assert_eq!(
                    p.uniform(site, seq, 0.0, 1.0).to_bits(),
                    q.uniform(site, seq, 0.0, 1.0).to_bits()
                );
            }
        }
    }

    #[test]
    fn call_order_does_not_matter() {
        let p = FaultPlan::new(3);
        let forward: Vec<bool> = (0..32)
            .map(|i| p.roll(FaultSite::BuildFailure, i))
            .collect();
        let backward: Vec<bool> = (0..32)
            .rev()
            .map(|i| p.roll(FaultSite::BuildFailure, i))
            .collect();
        let rev: Vec<bool> = backward.into_iter().rev().collect();
        assert_eq!(forward, rev);
    }

    #[test]
    fn seeds_and_scopes_decorrelate() {
        let a = FaultPlan::new(1);
        let b = FaultPlan::new(2);
        let hits = |p: &FaultPlan| -> Vec<bool> {
            (0..256)
                .map(|i| p.roll(FaultSite::DvfsThrottle, i))
                .collect()
        };
        assert_ne!(hits(&a), hits(&b), "different seeds, different plans");
        let c1 = a.derive("cell-1");
        let c2 = a.derive("cell-2");
        assert_ne!(hits(&c1), hits(&c2), "different scopes, different plans");
        assert_eq!(
            hits(&c1),
            hits(&a.derive("cell-1")),
            "same scope, same plan"
        );
    }

    #[test]
    fn rates_scale_hit_frequency() {
        let lo = FaultPlan::new(5).with_rates(FaultRates {
            build_failure: 0.01,
            ..FaultRates::zero()
        });
        let hi = FaultPlan::new(5).with_rates(FaultRates {
            build_failure: 0.5,
            ..FaultRates::zero()
        });
        let count = |p: &FaultPlan| {
            (0..10_000)
                .filter(|&i| p.roll(FaultSite::BuildFailure, i))
                .count()
        };
        let (nlo, nhi) = (count(&lo), count(&hi));
        assert!(nlo < 300, "1% rate fired {nlo}/10000");
        assert!((4000..6000).contains(&nhi), "50% rate fired {nhi}/10000");
        let zero = FaultPlan::new(5).with_rates(FaultRates::zero());
        assert_eq!(count(&zero), 0, "zero rates never fire");
    }

    #[test]
    fn uniform_respects_bounds() {
        let p = FaultPlan::new(11);
        for seq in 0..1000 {
            let x = p.uniform(FaultSite::MeterJitter, seq, 1.1, 1.4);
            assert!((1.1..1.4).contains(&x), "{x} out of range");
        }
    }

    #[test]
    fn ambient_override_shadows_installed() {
        // Serialized with other ambient users by running in one test.
        install(Some(FaultPlan::new(42)));
        assert_eq!(installed().map(|p| p.seed()), Some(42));
        let inner = with_plan(Some(FaultPlan::new(9)), || current().map(|p| p.seed()));
        assert_eq!(inner, Some(9));
        let masked = with_plan(None, current);
        assert_eq!(masked, None, "explicit None masks the installed plan");
        // Unwind-safety: the override is popped on panic.
        let _ = std::panic::catch_unwind(|| with_plan(Some(FaultPlan::new(1)), || panic!("x")));
        assert_eq!(current().map(|p| p.seed()), Some(42));
        install(None);
        assert_eq!(current(), None);
    }

    #[test]
    fn stats_count_notes() {
        reset_stats();
        note(FaultSite::MeterDropout);
        note(FaultSite::MeterDropout);
        note(FaultSite::WorkerPanic);
        let s: std::collections::HashMap<_, _> = stats().into_iter().collect();
        assert_eq!(s[&FaultSite::MeterDropout], 2);
        assert_eq!(s[&FaultSite::WorkerPanic], 1);
        assert_eq!(s[&FaultSite::BuildFailure], 0);
        reset_stats();
        assert!(stats().iter().all(|(_, n)| *n == 0));
    }

    #[test]
    fn tag_and_hash_helpers() {
        assert!(is_injected(&format!("launch failure: {TAG} boom")));
        assert!(!is_injected("launch failure: boom"));
        assert_eq!(hash_key("spmv"), hash_key("spmv"));
        assert_ne!(hash_key("spmv"), hash_key("vecop"));
    }
}
