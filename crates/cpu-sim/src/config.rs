//! Cortex-A15 cost-model configuration.
//!
//! Structural parameters (clock, core count, cache geometry) are the
//! documented Exynos 5250 values; per-op cycle costs are calibrated
//! effective throughput numbers for *scalar* code — the paper's CPU builds
//! use no NEON vectorization (§IV-B/§IV-C), so every vector-typed IR op is
//! scalarized when it runs here.

use memsim::{CacheConfig, DramConfig};

/// All knobs of the CPU timing model.
#[derive(Clone, Debug, PartialEq)]
pub struct CortexA15Config {
    /// Core clock: Exynos 5250 runs the A15 pair at 1.7 GHz.
    pub freq_hz: f64,
    /// Physical cores available (2 on the Exynos 5250).
    pub max_cores: u32,

    // ---- per-op effective cycle costs (scalar lane) -------------------
    /// Add/sub/compare/logic/min/max.
    pub cy_simple: f64,
    /// Multiply.
    pub cy_mul: f64,
    /// `mad` lowered to mul+add (scalar VFP has no fused issue win).
    pub cy_mad: f64,
    /// Divide (iterative, not pipelined).
    pub cy_div: f64,
    /// sqrt (VSQRT, not pipelined).
    pub cy_sqrt: f64,
    /// Reciprocal square root: VSQRT + VDIV back-to-back (no rsqrt
    /// instruction in scalar VFP).
    pub cy_rsqrt: f64,
    /// exp/log via libm call.
    pub cy_transcendental: f64,
    /// Moves, selects, casts, lane shuffles.
    pub cy_move: f64,
    /// Horizontal reduction per lane.
    pub cy_horiz: f64,
    /// Loop back-edge (compare + branch + index update).
    pub cy_loop: f64,
    /// Per-work-item dispatch when iterating an NDRange as nested loops.
    pub cy_item: f64,
    /// Atomic RMW (LDREX/STREX round trip).
    pub cy_atomic: f64,
    /// Multiplier on float costs when operating on f64 (scalar VFP double
    /// issue is slightly slower and moves twice the data through the RF).
    pub f64_factor: f64,
    /// Sustained instruction-level parallelism: effective ops retired per
    /// cycle for independent scalar arithmetic (the A15 is 3-wide OoO but
    /// scalar FP sustains well below that on these kernels).
    pub ilp: f64,
    /// Cost factor for *integer* simple/mul ops: address arithmetic
    /// dual-issues on the A15's two integer ALUs and hides behind FP, so
    /// it is far cheaper than its instruction count suggests.
    pub int_op_factor: f64,
    /// Compute-cycle inflation when both cores run (shared L2 ports,
    /// snoop traffic): why OpenMP tops out below 2.0x even when
    /// compute-bound (§V-A band 1.2..1.9).
    pub smp_compute_penalty: f64,

    // ---- memory -------------------------------------------------------
    /// Issue cost of one load/store lane (address generation + AGU slot).
    pub cy_mem_issue: f64,
    /// Extra core cycles for an L1 hit beyond the pipelined load slot.
    pub cy_l1_hit: f64,
    /// Core cycles exposed by an L2 hit (partially hidden by OoO).
    pub cy_l2_hit: f64,
    /// Fraction of DRAM latency exposed on *scattered* misses (OoO window
    /// hides some; dependent gathers expose most).
    pub scatter_latency_exposure: f64,
    /// Streaming bandwidth one core can sustain by itself (load/store unit
    /// + MSHR limits keep a single A15 well below controller peak).
    pub core_stream_bw: f64,
    /// Incremental aggregate-bandwidth factor per additional core (two
    /// streaming cores contend on the bus: aggregate =
    /// `core_stream_bw * (1 + smp_bw_scale * (cores-1))`).
    pub smp_bw_scale: f64,
    pub l1: CacheConfig,
    pub l2: CacheConfig,
    pub dram: DramConfig,

    // ---- OpenMP ---------------------------------------------------------
    /// Fork/join + barrier cost per parallel region, seconds.
    pub omp_region_overhead_s: f64,
}

impl Default for CortexA15Config {
    fn default() -> Self {
        CortexA15Config {
            freq_hz: 1.7e9,
            max_cores: 2,
            cy_simple: 1.0,
            cy_mul: 1.0,
            cy_mad: 1.7,
            cy_div: 14.0,
            cy_sqrt: 15.0,
            cy_rsqrt: 27.0,
            cy_transcendental: 30.0,
            cy_move: 0.5,
            cy_horiz: 1.0,
            cy_loop: 1.5,
            cy_item: 2.0,
            cy_atomic: 4.0,
            f64_factor: 1.25,
            ilp: 1.15,
            int_op_factor: 0.35,
            smp_compute_penalty: 1.10,
            cy_mem_issue: 1.0,
            cy_l1_hit: 0.75,
            cy_l2_hit: 9.0,
            scatter_latency_exposure: 0.55,
            core_stream_bw: 2.6e9,
            smp_bw_scale: 0.38,
            // 32 KiB / 64 B / 2-way I+D split: model D-cache only.
            l1: CacheConfig::new(32 * 1024, 64, 2),
            // 1 MiB shared L2, 16-way.
            l2: CacheConfig::new(1024 * 1024, 64, 16),
            dram: DramConfig::ddr3l_1600_x32(),
            omp_region_overhead_s: 18e-6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_exynos_5250() {
        let c = CortexA15Config::default();
        assert_eq!(c.freq_hz, 1.7e9);
        assert_eq!(c.max_cores, 2);
        assert_eq!(c.l1.size_bytes, 32 * 1024);
        assert_eq!(c.l2.size_bytes, 1024 * 1024);
    }

    #[test]
    fn special_ops_cost_more_than_simple() {
        let c = CortexA15Config::default();
        assert!(c.cy_div > 5.0 * c.cy_simple);
        assert!(c.cy_sqrt > 5.0 * c.cy_simple);
        assert!(c.cy_transcendental > c.cy_sqrt);
    }
}
