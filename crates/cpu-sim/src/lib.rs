//! # cpu-sim — ARM Cortex-A15 timing model
//!
//! Executes `kernel-ir` programs the way the paper's *Serial* and *OpenMP*
//! benchmark builds run on the Exynos 5250's Cortex-A15 pair:
//!
//! * **functional**: results are bit-identical to the interpreter's
//!   reference semantics (the same program text runs on the GPU model);
//! * **scalar**: no NEON — vector-typed IR ops are charged lane-by-lane,
//!   matching §IV-B's "these versions do not make use of vector
//!   instructions";
//! * **timing**: a calibrated per-op cycle table + L1/L2/DRAM hierarchy
//!   (roofline combination of compute and bandwidth, with exposed latency
//!   for scattered gathers);
//! * **OpenMP**: static block partition of work-groups over two cores with
//!   shared DRAM bandwidth and a fork/join overhead — which is exactly why
//!   memory-bound benchmarks only reach the paper's 1.2× while
//!   compute-bound ones approach 1.9×.

pub mod config;
pub mod device;

pub use config::CortexA15Config;
pub use device::{CortexA15, CpuReport};
