//! The Cortex-A15 device: executes kernel-ir programs functionally and
//! derives Serial (1-core) / OpenMP (2-core) timing, cache behaviour and
//! power activity.
//!
//! Scheduling model: the NDRange's work-groups are the OpenMP loop
//! iterations; a `cores`-way run partitions them into contiguous blocks
//! (static scheduling, like the paper's OpenMP builds), so per-group cost
//! differences surface as load imbalance — the effect `spmv` is designed to
//! measure.

use crate::config::CortexA15Config;
use kernel_ir::{
    run_ndrange_sharded, ArgBinding, ExecError, ExecTracer, MemAccess, MemoryPool, NDRange,
    OpClass, Pattern, Program, Scalar, ShardTracer, VType,
};
use memsim::{Hierarchy, HierarchyStats, StrideClassifier};
use powersim::Activity;
use telemetry::{Counters, WorkSpan};

/// Timing/energy outcome of one CPU run.
#[derive(Clone, Debug)]
pub struct CpuReport {
    /// Wall-clock time of the parallel region, seconds.
    pub time_s: f64,
    /// Core-compute component (max over cores), seconds.
    pub compute_time_s: f64,
    /// DRAM bandwidth component, seconds.
    pub mem_time_s: f64,
    /// Cores the run occupied.
    pub cores_used: u32,
    /// Activity vector for the power model.
    pub activity: Activity,
    /// Cache/DRAM statistics.
    pub hier: HierarchyStats,
    /// Total issued compute cycles (all cores).
    pub total_cycles: f64,
    /// Performance-counter snapshot for this run.
    pub counters: Counters,
    /// Per-core work-group execution intervals (simulated time, seconds,
    /// relative to the start of the parallel region).
    pub spans: Vec<WorkSpan>,
    /// Host worker threads the simulation's group loop actually ran on
    /// (1 = serial). Simulation-engine metadata — distinct from
    /// `cores_used`, which is the *modeled* A15 core count — and excluded
    /// from exported counters so suite outputs stay byte-identical across
    /// `SIM_THREADS` settings.
    pub sim_threads: usize,
    /// Why the engine forced serial group execution (e.g. global atomics),
    /// if it did.
    pub sim_serial_reason: Option<&'static str>,
    /// Injected mid-run DVFS throttle factor (> 1 stretches every
    /// time-like quantity), if the ambient fault plan fired one.
    pub dvfs_throttle: Option<f64>,
}

/// Mem-side tracer state: the cache hierarchy and stride classifiers whose
/// transitions depend on the global access order. Op-side cycles accumulate
/// per group in a [`CpuShard`]; [`ShardTracer::absorb_group`] recombines the
/// two halves in ascending group order, identically for 1..N sim threads.
struct CpuTracer<'c> {
    cfg: &'c CortexA15Config,
    hier: Hierarchy,
    /// Compute cycles charged to each completed group.
    group_cycles: Vec<f64>,
    strides: StrideClassifier,
    counters: Counters,
}

/// One work-group's op-side cycle accumulator (arithmetic, loop and
/// work-item overheads — everything whose cost needs no cache state).
struct CpuShard<'c> {
    cfg: &'c CortexA15Config,
    cur: f64,
    counters: Counters,
}

fn op_cost(c: &CortexA15Config, class: OpClass, ty: VType) -> f64 {
    let base = match class {
        OpClass::Simple => c.cy_simple,
        OpClass::Mul => c.cy_mul,
        OpClass::Mad => c.cy_mad,
        OpClass::Div => c.cy_div,
        OpClass::Special => c.cy_sqrt,
        OpClass::Rsqrt => c.cy_rsqrt,
        OpClass::Transcendental => c.cy_transcendental,
        OpClass::Move => c.cy_move,
        OpClass::Horizontal => c.cy_horiz,
    };
    // No NEON: vector ops are scalarized lane by lane.
    let lanes = ty.width as f64;
    let f64x = if ty.elem == Scalar::F64 {
        c.f64_factor
    } else {
        1.0
    };
    // Integer address arithmetic dual-issues and hides behind FP.
    let intx =
        if ty.elem.is_int() && matches!(class, OpClass::Simple | OpClass::Mul | OpClass::Move) {
            c.int_op_factor
        } else {
            1.0
        };
    base * lanes * f64x * intx / c.ilp
}

impl ExecTracer for CpuShard<'_> {
    fn op(&mut self, class: OpClass, ty: VType) {
        self.counters.note_op(class, ty);
        self.cur += op_cost(self.cfg, class, ty);
    }

    fn loop_iter(&mut self) {
        self.counters.note_loop_iter();
        self.cur += self.cfg.cy_loop / self.cfg.ilp;
    }

    fn thread_start(&mut self) {
        self.counters.note_thread_start();
        self.cur += self.cfg.cy_item / self.cfg.ilp;
    }

    fn group_start(&mut self) {
        self.counters.note_group_start();
    }

    fn barrier(&mut self, items: u32) {
        // Barriers are free on a sequential CPU schedule (each phase is a
        // plain loop) — but still counted.
        self.counters.note_barrier(items);
    }
}

impl<'c> CpuTracer<'c> {
    fn new(cfg: &'c CortexA15Config) -> Self {
        CpuTracer {
            cfg,
            hier: Hierarchy::with_l1(cfg.l1, cfg.l2),
            group_cycles: Vec::new(),
            strides: StrideClassifier::default(),
            counters: Counters::default(),
        }
    }

    /// Replay one recorded memory access through the stateful cache model,
    /// charging cycles to the group being absorbed.
    fn replay_mem(&mut self, a: &MemAccess, lanes: &[u64], cur: &mut f64) {
        self.counters.note_mem(a);
        let c = self.cfg;
        let write = matches!(a.kind, kernel_ir::AccessKind::Write);
        let atomic = matches!(a.kind, kernel_ir::AccessKind::Atomic);
        // Issue cost: one AGU slot per lane (scalarized, no NEON loads).
        *cur += c.cy_mem_issue * a.width as f64 / c.ilp;
        if atomic {
            *cur += c.cy_atomic;
        }
        match a.pattern {
            Pattern::Scalar | Pattern::Contiguous => {
                // Scalar streams that hop around (indirect x[col[j]]) are
                // scattered traffic even though each access is scalar.
                let streaming = a.pattern == Pattern::Contiguous
                    || self.strides.classify_stream(a.stream, a.addr);
                let out = self
                    .hier
                    .access(a.addr, a.bytes, write || atomic, streaming);
                *cur += out.l1_hits as f64 * c.cy_l1_hit + out.l2_hits as f64 * c.cy_l2_hit;
                if !streaming {
                    // Scattered misses expose latency the prefetcher can't
                    // hide.
                    *cur += out.dram_lines as f64
                        * c.dram.latency
                        * c.scatter_latency_exposure
                        * c.freq_hz;
                }
                // Streaming DRAM lines are charged through the bandwidth
                // term; the prefetcher hides their latency.
            }
            Pattern::Gather => {
                debug_assert_eq!(lanes.len(), a.width as usize);
                let lane_bytes = a.elem.bytes();
                for &addr in lanes {
                    let out = self.hier.access(addr, lane_bytes, write || atomic, false);
                    *cur += out.l1_hits as f64 * c.cy_l1_hit + out.l2_hits as f64 * c.cy_l2_hit;
                    // Scattered misses expose part of the DRAM latency to
                    // the core (the OoO window can't hide 110 ns).
                    *cur += out.dram_lines as f64
                        * c.dram.latency
                        * c.scatter_latency_exposure
                        * c.freq_hz;
                }
            }
        }
    }
}

impl<'c> ShardTracer for CpuTracer<'c> {
    type Shard = CpuShard<'c>;

    fn make_shard(&self) -> CpuShard<'c> {
        CpuShard {
            cfg: self.cfg,
            cur: 0.0,
            counters: Counters::default(),
        }
    }

    fn absorb_group(&mut self, shard: CpuShard<'c>, mem: &[MemAccess], lanes: &[u64]) {
        self.counters.merge_in(&shard.counters);
        let mut cur = shard.cur;
        let mut lc = 0usize;
        for a in mem {
            let nl = if a.pattern == Pattern::Gather {
                a.width as usize
            } else {
                0
            };
            self.replay_mem(a, &lanes[lc..lc + nl], &mut cur);
            lc += nl;
        }
        self.group_cycles.push(cur);
    }
}

/// The device.
#[derive(Clone, Debug, Default)]
pub struct CortexA15 {
    pub cfg: CortexA15Config,
}

impl CortexA15 {
    pub fn new(cfg: CortexA15Config) -> Self {
        CortexA15 { cfg }
    }

    /// Execute `program` over `ndrange` using `cores` cores (1 = the
    /// paper's Serial build, 2 = OpenMP). Mutates buffers in `pool`.
    pub fn run(
        &self,
        program: &Program,
        bindings: &[ArgBinding],
        pool: &mut MemoryPool,
        ndrange: NDRange,
        cores: u32,
    ) -> Result<CpuReport, ExecError> {
        assert!(
            cores >= 1 && cores <= self.cfg.max_cores,
            "cores must be in 1..={}",
            self.cfg.max_cores
        );
        let mut tracer = CpuTracer::new(&self.cfg);
        let stats = run_ndrange_sharded(
            program,
            bindings,
            pool,
            ndrange,
            &mut tracer,
            sim_pool::threads(),
        )?;
        let groups = tracer.group_cycles;
        debug_assert_eq!(groups.len(), ndrange.total_groups().max(1));

        // Static block partition over cores. Each group's interval on its
        // core is recorded as a telemetry span (in wall-clock seconds, with
        // the SMP penalty applied so spans line up with compute time).
        let mut core_cycles = vec![0.0f64; cores as usize];
        let chunk = groups.len().div_ceil(cores as usize).max(1);
        let smp = if cores > 1 {
            self.cfg.smp_compute_penalty
        } else {
            1.0
        };
        let cy_to_s = smp / self.cfg.freq_hz;
        let mut spans = Vec::with_capacity(groups.len());
        for (i, g) in groups.iter().enumerate() {
            let core = (i / chunk).min(cores as usize - 1);
            let start = core_cycles[core];
            core_cycles[core] = start + *g;
            spans.push(WorkSpan {
                core: core as u32,
                group: i as u32,
                start_s: start * cy_to_s,
                end_s: core_cycles[core] * cy_to_s,
            });
        }
        let total_cycles: f64 = core_cycles.iter().sum();
        let compute_time = core_cycles.iter().cloned().fold(0.0, f64::max) * smp / self.cfg.freq_hz;
        // Memory time: DRAM-side limit (controller efficiency, scatter
        // derating) or the cores' aggregate streaming capability, whichever
        // binds.
        let traffic = tracer.hier.stats.traffic;
        let dram_side = traffic.bandwidth_time(&self.cfg.dram);
        let aggregate_core_bw =
            self.cfg.core_stream_bw * (1.0 + self.cfg.smp_bw_scale * (cores as f64 - 1.0));
        let core_side = traffic.total_bytes(&self.cfg.dram) as f64 / aggregate_core_bw;
        let mem_time = dram_side.max(core_side);
        let region_overhead = if cores > 1 {
            self.cfg.omp_region_overhead_s
        } else {
            0.0
        };
        let time_s = compute_time.max(mem_time) + region_overhead;

        let mut cpu_busy = [0.0f64; 2];
        for c in 0..cores.min(2) as usize {
            // A core is busy (not clock-gated) for the whole region when it
            // has work; scale by its share when imbalanced.
            let share = if compute_time > 0.0 {
                (core_cycles[c] / self.cfg.freq_hz / compute_time).clamp(0.0, 1.0)
            } else {
                1.0
            };
            // Memory-stalled time still burns most of the core power; count
            // busy as the max of compute share and the stall window.
            cpu_busy[c] = time_s * share.max(if mem_time > compute_time { 0.85 } else { 0.0 });
        }

        let hier = tracer.hier.stats;
        let mut counters = tracer.counters;
        counters.absorb_hier(&hier);
        let activity = Activity {
            duration_s: time_s,
            cpu_busy_s: cpu_busy,
            gpu_active_s: 0.0,
            gpu_arith_util_s: 0.0,
            gpu_ls_util_s: 0.0,
            dram_bytes: hier.traffic.total_lines() * self.cfg.dram.line_bytes as u64,
        };

        let mut report = CpuReport {
            time_s,
            compute_time_s: compute_time,
            mem_time_s: mem_time,
            cores_used: cores,
            activity,
            hier,
            total_cycles,
            counters,
            spans,
            sim_threads: stats.threads,
            sim_serial_reason: stats.serial_reason,
            dvfs_throttle: None,
        };
        maybe_throttle(&mut report, &program.name);
        Ok(report)
    }
}

/// Fault injection: the `interactive` governor throttles the big cluster
/// mid-run, stretching every time-like quantity by one uniform factor.
/// Keyed on the kernel name, core count and group count so the decision is
/// a pure function of the run. Counters and traffic are unaffected.
fn maybe_throttle(report: &mut CpuReport, program_name: &str) {
    let Some(plan) = sim_faults::current() else {
        return;
    };
    let seq = sim_faults::hash_key(program_name)
        ^ (report.spans.len() as u64)
        ^ ((report.cores_used as u64) << 32);
    if !plan.roll(sim_faults::FaultSite::DvfsThrottle, seq) {
        return;
    }
    let k = plan.uniform(sim_faults::FaultSite::DvfsThrottle, seq, 1.1, 1.4);
    sim_faults::note(sim_faults::FaultSite::DvfsThrottle);
    report.dvfs_throttle = Some(k);
    report.time_s *= k;
    report.compute_time_s *= k;
    report.mem_time_s *= k;
    report.activity.duration_s *= k;
    report.activity.cpu_busy_s[0] *= k;
    report.activity.cpu_busy_s[1] *= k;
    for s in &mut report.spans {
        s.start_s *= k;
        s.end_s *= k;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel_ir::prelude::*;
    use kernel_ir::{Access, BufferData};

    /// out[i] = a[i] * a[i] with heavy per-item compute (to be compute-bound).
    fn compute_heavy(n_iters: i64) -> Program {
        let mut kb = KernelBuilder::new("heavy");
        let a = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
        let out = kb.arg_global(Scalar::F32, Access::WriteOnly, true);
        let gid = kb.query_global_id(0);
        let v = kb.load(Scalar::F32, a, gid.into());
        let acc = kb.mov(v.into(), VType::scalar(Scalar::F32));
        kb.for_loop(
            Operand::ImmI(0),
            Operand::ImmI(n_iters),
            Operand::ImmI(1),
            |kb, _| {
                kb.mad_into(
                    acc,
                    acc.into(),
                    Operand::ImmF(1.0000001),
                    Operand::ImmF(1e-7),
                );
            },
        );
        kb.store(out, gid.into(), acc.into());
        kb.finish()
    }

    fn streaming_kernel() -> Program {
        let mut kb = KernelBuilder::new("stream");
        let a = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
        let b = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
        let c = kb.arg_global(Scalar::F32, Access::WriteOnly, true);
        let gid = kb.query_global_id(0);
        let va = kb.load(Scalar::F32, a, gid.into());
        let vb = kb.load(Scalar::F32, b, gid.into());
        let s = kb.bin(BinOp::Add, va.into(), vb.into(), VType::scalar(Scalar::F32));
        kb.store(c, gid.into(), s.into());
        kb.finish()
    }

    fn setup_streaming(n: usize) -> (MemoryPool, [ArgBinding; 3]) {
        let mut pool = MemoryPool::new();
        let a = pool.add(BufferData::from(vec![1.0f32; n]));
        let b = pool.add(BufferData::from(vec![2.0f32; n]));
        let c = pool.add(BufferData::zeroed(Scalar::F32, n));
        (
            pool,
            [
                ArgBinding::Global(a),
                ArgBinding::Global(b),
                ArgBinding::Global(c),
            ],
        )
    }

    #[test]
    fn computes_correct_results() {
        let dev = CortexA15::default();
        let p = streaming_kernel();
        let (mut pool, bindings) = setup_streaming(1024);
        dev.run(&p, &bindings, &mut pool, NDRange::d1(1024, 64), 1)
            .unwrap();
        assert!(pool.get(2).as_f32().iter().all(|&x| x == 3.0));
    }

    #[test]
    fn compute_bound_kernel_scales_with_cores() {
        let dev = CortexA15::default();
        let p = compute_heavy(2000);
        let mk = || {
            let mut pool = MemoryPool::new();
            let a = pool.add(BufferData::from(vec![1.0f32; 128]));
            let out = pool.add(BufferData::zeroed(Scalar::F32, 128));
            (pool, [ArgBinding::Global(a), ArgBinding::Global(out)])
        };
        let (mut p1, b1) = mk();
        let r1 = dev.run(&p, &b1, &mut p1, NDRange::d1(128, 16), 1).unwrap();
        let (mut p2, b2) = mk();
        let r2 = dev.run(&p, &b2, &mut p2, NDRange::d1(128, 16), 2).unwrap();
        let speedup = r1.time_s / r2.time_s;
        // The smp_compute_penalty keeps even perfect splits below 2.0x,
        // matching the paper's observed 1.2..1.9 band.
        assert!(
            (1.55..=1.95).contains(&speedup),
            "compute-bound OpenMP speedup {speedup:.2} outside 1.55..1.95"
        );
    }

    #[test]
    fn memory_bound_kernel_scales_poorly() {
        let dev = CortexA15::default();
        let p = streaming_kernel();
        let n = 1 << 20; // 12 MiB of traffic >> L2
        let (mut p1, b1) = setup_streaming(n);
        let r1 = dev.run(&p, &b1, &mut p1, NDRange::d1(n, 256), 1).unwrap();
        let (mut p2, b2) = setup_streaming(n);
        let r2 = dev.run(&p, &b2, &mut p2, NDRange::d1(n, 256), 2).unwrap();
        let speedup = r1.time_s / r2.time_s;
        assert!(
            speedup < 1.6,
            "memory-bound kernel should not scale to 2 cores (got {speedup:.2})"
        );
    }

    #[test]
    fn time_positive_and_decomposed() {
        let dev = CortexA15::default();
        let p = streaming_kernel();
        let (mut pool, bindings) = setup_streaming(4096);
        let r = dev
            .run(&p, &bindings, &mut pool, NDRange::d1(4096, 64), 1)
            .unwrap();
        assert!(r.time_s > 0.0);
        assert!(r.time_s + 1e-15 >= r.compute_time_s.max(r.mem_time_s));
        assert!(r.activity.dram_bytes > 0);
        assert_eq!(r.cores_used, 1);
        assert_eq!(r.activity.cpu_busy_s[1], 0.0);
    }

    #[test]
    fn omp_run_uses_second_core() {
        let dev = CortexA15::default();
        let p = compute_heavy(100);
        let mut pool = MemoryPool::new();
        let a = pool.add(BufferData::from(vec![1.0f32; 256]));
        let out = pool.add(BufferData::zeroed(Scalar::F32, 256));
        let b = [ArgBinding::Global(a), ArgBinding::Global(out)];
        let r = dev.run(&p, &b, &mut pool, NDRange::d1(256, 16), 2).unwrap();
        assert!(r.activity.cpu_busy_s[1] > 0.0);
    }

    #[test]
    fn imbalanced_groups_hurt_two_core_time() {
        // Group 0..7 heavy, 8..15 trivial → block partition puts all heavy
        // work on core 0.
        let mut kb = KernelBuilder::new("imb");
        let out = kb.arg_global(Scalar::F32, Access::ReadWrite, true);
        let gid = kb.query_global_id(0);
        let half = kb.bin(
            BinOp::Lt,
            gid.into(),
            Operand::ImmI(128),
            VType::scalar(Scalar::U32),
        );
        let acc = kb.mov(Operand::ImmF(1.0), VType::scalar(Scalar::F32));
        kb.if_then(half.into(), |kb| {
            kb.for_loop(
                Operand::ImmI(0),
                Operand::ImmI(5000),
                Operand::ImmI(1),
                |kb, _| {
                    kb.mad_into(acc, acc.into(), Operand::ImmF(0.9999), Operand::ImmF(1e-6));
                },
            );
        });
        kb.store(out, gid.into(), acc.into());
        let p = kb.finish();
        let dev = CortexA15::default();
        let mut pool = MemoryPool::new();
        let o = pool.add(BufferData::zeroed(Scalar::F32, 256));
        let b = [ArgBinding::Global(o)];
        let r1 = dev.run(&p, &b, &mut pool, NDRange::d1(256, 16), 1).unwrap();
        let r2 = dev.run(&p, &b, &mut pool, NDRange::d1(256, 16), 2).unwrap();
        let speedup = r1.time_s / r2.time_s;
        assert!(
            speedup < 1.25,
            "all-heavy-on-one-core should not speed up (got {speedup:.2})"
        );
    }

    #[test]
    fn f64_slower_than_f32() {
        let mk = |elem: Scalar| {
            let mut kb = KernelBuilder::new("fp");
            let a = kb.arg_global(elem, Access::ReadOnly, true);
            let out = kb.arg_global(elem, Access::WriteOnly, true);
            let gid = kb.query_global_id(0);
            let v = kb.load(elem, a, gid.into());
            let acc = kb.mov(v.into(), VType::scalar(elem));
            kb.for_loop(
                Operand::ImmI(0),
                Operand::ImmI(500),
                Operand::ImmI(1),
                |kb, _| {
                    kb.mad_into(
                        acc,
                        acc.into(),
                        Operand::ImmF(1.000001),
                        Operand::ImmF(1e-9),
                    );
                },
            );
            kb.store(out, gid.into(), acc.into());
            kb.finish()
        };
        let dev = CortexA15::default();
        let run = |elem: Scalar| {
            let mut pool = MemoryPool::new();
            let (a, o) = match elem {
                Scalar::F32 => (
                    pool.add(BufferData::from(vec![1.0f32; 64])),
                    pool.add(BufferData::zeroed(Scalar::F32, 64)),
                ),
                _ => (
                    pool.add(BufferData::from(vec![1.0f64; 64])),
                    pool.add(BufferData::zeroed(Scalar::F64, 64)),
                ),
            };
            let b = [ArgBinding::Global(a), ArgBinding::Global(o)];
            dev.run(&mk(elem), &b, &mut pool, NDRange::d1(64, 16), 1)
                .unwrap()
                .time_s
        };
        let t32 = run(Scalar::F32);
        let t64 = run(Scalar::F64);
        assert!(
            t64 > t32,
            "f64 ({t64:.3e}) should be slower than f32 ({t32:.3e})"
        );
    }

    #[test]
    fn gather_misses_cost_latency() {
        // Random gather over a large buffer vs contiguous reads of the same
        // volume: gather must be slower.
        let n: usize = 1 << 18;
        let mut kb = KernelBuilder::new("gather");
        let idx_buf = kb.arg_global(Scalar::U32, Access::ReadOnly, true);
        let x = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
        let out = kb.arg_global(Scalar::F32, Access::WriteOnly, true);
        let gid = kb.query_global_id(0);
        let i = kb.load(Scalar::U32, idx_buf, gid.into());
        // gather via a width-1 indirect load: still classified Scalar
        // pattern, so build a width-2 index vector to force Gather.
        let iv = kb.mov(Operand::ImmI(0), VType::new(Scalar::U32, 2));
        kb.insert_into(iv, i.into(), 0);
        kb.insert_into(iv, i.into(), 1);
        let v = kb.load(Scalar::F32, x, iv.into());
        let s = kb.horiz(HorizOp::Add, v);
        kb.store(out, gid.into(), s.into());
        let p = kb.finish();
        p.validate().unwrap();

        let dev = CortexA15::default();
        let run = |indices: Vec<u32>| {
            let mut pool = MemoryPool::new();
            let ib = pool.add(BufferData::from(indices));
            let xb = pool.add(BufferData::zeroed(Scalar::F32, n));
            let ob = pool.add(BufferData::zeroed(Scalar::F32, n / 16));
            let b = [
                ArgBinding::Global(ib),
                ArgBinding::Global(xb),
                ArgBinding::Global(ob),
            ];
            dev.run(&p, &b, &mut pool, NDRange::d1(n / 16, 64), 1)
                .unwrap()
                .time_s
        };
        let seq: Vec<u32> = (0..n as u32 / 16).collect();
        let scattered: Vec<u32> = (0..n as u32 / 16)
            .map(|i| (i.wrapping_mul(2654435761)) % (n as u32))
            .collect();
        let t_seq = run(seq);
        let t_rand = run(scattered);
        assert!(
            t_rand > 1.5 * t_seq,
            "scattered gather ({t_rand:.3e}) should be ≫ sequential ({t_seq:.3e})"
        );
    }
}
