//! Dynamic counters vs static analysis: on a loop-free kernel, the
//! telemetry counters divided by the item count must reproduce
//! `kernel_ir::stats::analyze` exactly — the contract that makes static
//! prediction and dynamic measurement diffable.

use cpu_sim::{CortexA15, CortexA15Config};
use kernel_ir::prelude::*;
use kernel_ir::Access;

/// A loop-free saxpy-with-trimmings kernel: loads, a mad, a special op
/// and a store, so every `StaticMix` column is exercised.
fn loop_free_kernel() -> Program {
    let mut kb = KernelBuilder::new("parity");
    let a = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
    let b = kb.arg_global(Scalar::F32, Access::ReadOnly, true);
    let c = kb.arg_global(Scalar::F32, Access::WriteOnly, true);
    let gid = kb.query_global_id(0);
    let va = kb.load(Scalar::F32, a, gid.into());
    let vb = kb.load(Scalar::F32, b, gid.into());
    let m = kb.mad(va.into(), vb.into(), vb.into(), VType::scalar(Scalar::F32));
    let s = kb.un(UnOp::Sqrt, m.into(), VType::scalar(Scalar::F32));
    kb.store(c, gid.into(), s.into());
    kb.finish()
}

#[test]
fn per_item_counters_match_static_mix() {
    let program = loop_free_kernel();
    let predicted = kernel_ir::stats::analyze(&program);
    assert!(!predicted.has_dynamic_loops, "kernel must be loop-free");

    let n = 1024usize;
    let mut pool = MemoryPool::new();
    let bindings: Vec<ArgBinding> = (0..3)
        .map(|i| ArgBinding::Global(pool.add(kernel_ir::BufferData::F32(vec![0.5 + i as f32; n]))))
        .collect();
    let dev = CortexA15::new(CortexA15Config::default());
    let report = dev
        .run(&program, &bindings, &mut pool, NDRange::d1(n, 64), 2)
        .expect("launch");

    let measured = report.counters.per_item_mix();
    assert_eq!(report.counters.threads, n as u64);
    assert_eq!(measured.flops, predicted.flops, "flops per item");
    assert_eq!(measured.int_ops, predicted.int_ops, "int ops per item");
    assert_eq!(
        measured.special_ops, predicted.special_ops,
        "special ops per item"
    );
    assert_eq!(measured.loads, predicted.loads, "loads per item");
    assert_eq!(measured.stores, predicted.stores, "stores per item");
    assert_eq!(measured.atomics, predicted.atomics, "atomics per item");
    assert_eq!(
        measured.bytes_read, predicted.bytes_read,
        "bytes read per item"
    );
    assert_eq!(
        measured.bytes_written, predicted.bytes_written,
        "bytes written per item"
    );
}

#[test]
fn spans_cover_compute_time_per_core() {
    let program = loop_free_kernel();
    let n = 4096usize;
    let mut pool = MemoryPool::new();
    let bindings: Vec<ArgBinding> = (0..3)
        .map(|_| ArgBinding::Global(pool.add(kernel_ir::BufferData::F32(vec![1.0; n]))))
        .collect();
    let dev = CortexA15::new(CortexA15Config::default());
    let report = dev
        .run(&program, &bindings, &mut pool, NDRange::d1(n, 64), 2)
        .expect("launch");

    assert_eq!(report.spans.len(), n / 64, "one span per work-group");
    // The latest span end is the compute component of the region time.
    let makespan = report.spans.iter().map(|s| s.end_s).fold(0.0, f64::max);
    let rel = (makespan - report.compute_time_s).abs() / report.compute_time_s;
    assert!(
        rel < 1e-9,
        "makespan {makespan:.3e} vs compute {:.3e}",
        report.compute_time_s
    );
    // Spans on one core never overlap.
    for core in 0..2u32 {
        let mut ends: Vec<(f64, f64)> = report
            .spans
            .iter()
            .filter(|s| s.core == core)
            .map(|s| (s.start_s, s.end_s))
            .collect();
        ends.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in ends.windows(2) {
            assert!(w[0].1 <= w[1].0 + 1e-15, "overlap on core {core}");
        }
    }
}
