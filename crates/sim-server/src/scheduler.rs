//! The job scheduler: coalesce duplicate in-flight cells, batch distinct
//! cells, bound the queue, and push the overflow back to the client.
//!
//! One dispatcher thread owns all simulation work. Request handlers
//! [`admit`](Scheduler::admit) the cells a sweep still needs (all-or-
//! nothing against the queue bound — a partially admitted sweep would
//! strand queued work when the rest is rejected) and then block on the
//! returned [`Slot`]s. The dispatcher drains the whole queue into one
//! batch and hands it to the evaluation function, which fans the batch
//! out on `sim-pool` — so distinct cells from concurrent sweeps share one
//! fork/join region, and the pool is never entered from two threads at
//! once.
//!
//! Coalescing: a cell that is already queued or running is *joined*, not
//! re-queued — both sweeps wait on the same slot and the simulator runs
//! the cell exactly once. Determinism is preserved trivially: the
//! evaluation function is a pure function of the spec, so batching,
//! coalescing and arrival order can only change *when* a result is
//! computed, never its bytes.
//!
//! Priority: admission carries a [`Lane`]. Interactive cells (single
//! lookups, small sweeps) queue ahead of bulk full-grid work — the
//! dispatcher drains the interactive queue into a batch first and leaves
//! bulk cells parked — but a bulk queue that has been passed over for
//! [`BULK_AGING_ROUNDS`] consecutive batches is merged into the next one
//! (a *promotion*), so bulk work is delayed, never starved. Lanes move
//! only *when* a cell is evaluated; its bytes are lane-independent.

use crate::key::{CellKey, CellSpec};
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Which scheduler queue admitted cells ride. Interactive work is
/// drained ahead of bulk; see the module docs for the aging rule.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Lane {
    /// Cell lookups, probes and small sweeps: drained first.
    #[default]
    Interactive,
    /// Full-grid sweeps and other large batches: drained when the
    /// interactive queue is empty, or via aging.
    Bulk,
}

impl Lane {
    pub fn index(self) -> usize {
        match self {
            Lane::Interactive => 0,
            Lane::Bulk => 1,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Lane::Interactive => "interactive",
            Lane::Bulk => "bulk",
        }
    }
}

/// A parked bulk queue passed over for this many consecutive batch
/// pickups is merged into the next batch regardless of interactive
/// pressure.
pub const BULK_AGING_ROUNDS: u64 = 2;

/// Why a sweep could not be admitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// The queue bound would be exceeded: the client should retry later
    /// (HTTP 429).
    Busy {
        queue_depth: usize,
        queue_cap: usize,
    },
    /// The scheduler is draining for shutdown (HTTP 503).
    ShuttingDown,
    /// The dispatcher thread is gone (its setup panicked or it aborted):
    /// nothing will ever drain the queue again (HTTP 500).
    Poisoned,
}

/// A cell whose evaluation was abandoned: the batch evaluator panicked
/// (or broke its one-payload-per-spec contract), so this slot will never
/// carry a payload. Waiters must surface an error, not retry the wait.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Abandoned {
    pub message: String,
}

/// Where one cell's wall-clock went: admission-to-dispatch wait, then
/// batch evaluation. Coalesced waiters on a shared slot see the timing of
/// the one evaluation that actually ran. Feeds the per-cell `queue_wait`
/// and `eval_batch` stage histograms — sample counts depend only on the
/// cells evaluated, never on how requests were sharded.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SlotTiming {
    /// Microseconds from admission to dispatcher pickup.
    pub queue_us: u64,
    /// Microseconds the cell's batch spent in the evaluation function.
    pub eval_us: u64,
}

/// A future result of one cell. Waiters block on [`wait`](Slot::wait).
#[derive(Debug)]
pub struct Slot {
    result: Mutex<Option<(Result<String, Abandoned>, SlotTiming)>>,
    done: Condvar,
    admitted: Instant,
}

impl Slot {
    fn new() -> Arc<Slot> {
        Arc::new(Slot {
            result: Mutex::new(None),
            done: Condvar::new(),
            admitted: Instant::now(),
        })
    }

    /// Block until the dispatcher settles this slot: the payload on
    /// success, [`Abandoned`] when the evaluation died. A slot is always
    /// settled eventually — fulfilled by a completed batch, or abandoned
    /// by the dispatcher's panic guards — so this cannot hang forever.
    pub fn wait(&self) -> Result<String, Abandoned> {
        self.wait_timed().0
    }

    /// [`wait`](Slot::wait), also reporting where the time went.
    pub fn wait_timed(&self) -> (Result<String, Abandoned>, SlotTiming) {
        let mut guard = self.result.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some((r, t)) = guard.as_ref() {
                return (r.clone(), *t);
            }
            guard = self.done.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// [`wait_timed`](Slot::wait_timed) with a deadline: returns `None`
    /// if the slot is still unsettled after `timeout`. The safety nets
    /// (batch panic guard, dispatcher poison guard) settle slots on
    /// every failure path they can see, but an evaluation that *wedges*
    /// without panicking — a deadlock or unbounded loop in simulator
    /// code — settles nothing; before this existed such a cell hung its
    /// handler, and the connection, forever.
    pub fn wait_deadline(
        &self,
        timeout: Duration,
    ) -> Option<(Result<String, Abandoned>, SlotTiming)> {
        let deadline = Instant::now() + timeout;
        let mut guard = self.result.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some((r, t)) = guard.as_ref() {
                return Some((r.clone(), *t));
            }
            let left = deadline.checked_duration_since(Instant::now())?;
            let (g, wait) = self
                .done
                .wait_timeout(guard, left)
                .unwrap_or_else(|e| e.into_inner());
            guard = g;
            if wait.timed_out() && guard.is_none() {
                return None;
            }
        }
    }

    fn settle(&self, result: Result<String, Abandoned>, timing: SlotTiming) {
        let mut guard = self.result.lock().unwrap_or_else(|e| e.into_inner());
        // First writer wins: a batch-panic abandonment and the dispatcher
        // exit guard may both reach the same slot.
        if guard.is_none() {
            *guard = Some((result, timing));
        }
        self.done.notify_all();
    }

    /// Microseconds this slot has been waiting since admission.
    fn queued_us(&self) -> u64 {
        self.admitted.elapsed().as_micros().min(u64::MAX as u128) as u64
    }
}

struct Job {
    spec: CellSpec,
    slot: Arc<Slot>,
}

#[derive(Default)]
struct State {
    /// Admitted interactive cells, not yet picked up by the dispatcher.
    queue_hi: VecDeque<CellKey>,
    /// Admitted bulk cells; drained after `queue_hi`, subject to aging.
    queue_lo: VecDeque<CellKey>,
    /// Consecutive batch pickups that left a non-empty bulk queue
    /// parked — the aging clock.
    bulk_skipped: u64,
    /// Every admitted-but-unfinished cell (queued or in the running
    /// batch); the coalescing index.
    active: HashMap<CellKey, Job>,
    /// Cells in the batch currently being evaluated.
    running: usize,
    shutdown: bool,
    /// The dispatcher is gone without draining; nothing new is admitted.
    poisoned: bool,
    // Monotone counters for /metrics.
    simulated: u64,
    coalesced: u64,
    rejected: u64,
    batches: u64,
    eval_panics: u64,
    abandoned: u64,
    bulk_promotions: u64,
}

impl State {
    fn queued(&self) -> usize {
        self.queue_hi.len() + self.queue_lo.len()
    }
}

/// Live + lifetime scheduler numbers for `/metrics`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    pub queue_depth: usize,
    /// Queued cells in the interactive lane.
    pub interactive_depth: usize,
    /// Queued cells in the bulk lane.
    pub bulk_depth: usize,
    pub in_flight: usize,
    pub simulated: u64,
    pub coalesced: u64,
    pub rejected: u64,
    pub batches: u64,
    /// Batches whose evaluation panicked (every cell in them abandoned).
    pub eval_panics: u64,
    /// Cells abandoned by panicking evaluations or a dying dispatcher.
    pub abandoned: u64,
    /// Times an aged bulk queue was merged into a batch despite queued
    /// interactive work.
    pub bulk_promotions: u64,
}

struct Shared {
    st: Mutex<State>,
    work: Condvar,
}

/// The coalescing batch scheduler. See the module docs for the contract.
pub struct Scheduler {
    shared: Arc<Shared>,
    queue_cap: usize,
    dispatcher: Option<std::thread::JoinHandle<()>>,
}

impl Scheduler {
    /// Start the dispatcher.
    ///
    /// `make_eval` runs once *on the dispatcher thread* and returns the
    /// batch evaluation function — this indirection lets the owner build
    /// thread-bound state (benchmark suites are `Sync` but not `Send`)
    /// without requiring it to cross threads. The evaluation function
    /// must return exactly one payload per input spec, in order.
    pub fn start<M, F>(queue_cap: usize, make_eval: M) -> Scheduler
    where
        M: FnOnce() -> F + Send + 'static,
        F: FnMut(&[CellSpec]) -> Vec<String>,
    {
        let shared = Arc::new(Shared {
            st: Mutex::new(State::default()),
            work: Condvar::new(),
        });
        let dispatcher = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("sim-server-dispatcher".into())
                .spawn(move || dispatcher_loop(&shared, make_eval))
                .expect("spawn dispatcher")
        };
        Scheduler {
            shared,
            queue_cap,
            dispatcher: Some(dispatcher),
        }
    }

    /// Admit the distinct cells a sweep still needs, into `lane`. Returns
    /// one slot per input (coalesced cells share slots with earlier
    /// sweeps, regardless of lane — the cell runs once either way). All-
    /// or-nothing: when the *new* cells would push the combined queue
    /// past its bound, nothing is enqueued and the caller gets
    /// [`AdmitError::Busy`].
    pub fn admit(&self, cells: &[CellSpec], lane: Lane) -> Result<Vec<Arc<Slot>>, AdmitError> {
        // Hash every spec before taking the lock: the canonicalization is
        // the expensive part and needs no shared state.
        let keys: Vec<CellKey> = cells.iter().map(CellSpec::key).collect();
        let mut st = self.shared.st.lock().unwrap_or_else(|e| e.into_inner());
        if st.shutdown {
            return Err(AdmitError::ShuttingDown);
        }
        if st.poisoned {
            return Err(AdmitError::Poisoned);
        }
        // First pass: count how many are genuinely new (a sweep may also
        // carry duplicates within itself — those coalesce too). A set, not
        // a `contains` scan: paper-scale sweeps made this pass O(n²).
        let mut new_keys: HashSet<CellKey> = HashSet::with_capacity(keys.len());
        for key in &keys {
            if !st.active.contains_key(key) {
                new_keys.insert(*key);
            }
        }
        if st.queued() + new_keys.len() > self.queue_cap {
            st.rejected += 1;
            return Err(AdmitError::Busy {
                queue_depth: st.queued(),
                queue_cap: self.queue_cap,
            });
        }
        let mut slots = Vec::with_capacity(cells.len());
        for (spec, &key) in cells.iter().zip(&keys) {
            if let Some(job) = st.active.get(&key) {
                let shared = job.slot.clone();
                st.coalesced += 1;
                slots.push(shared);
                continue;
            }
            let slot = Slot::new();
            st.active.insert(
                key,
                Job {
                    spec: spec.clone(),
                    slot: slot.clone(),
                },
            );
            match lane {
                Lane::Interactive => st.queue_hi.push_back(key),
                Lane::Bulk => st.queue_lo.push_back(key),
            }
            slots.push(slot);
        }
        drop(st);
        self.shared.work.notify_one();
        Ok(slots)
    }

    pub fn stats(&self) -> SchedulerStats {
        let st = self.shared.st.lock().unwrap_or_else(|e| e.into_inner());
        SchedulerStats {
            queue_depth: st.queued(),
            interactive_depth: st.queue_hi.len(),
            bulk_depth: st.queue_lo.len(),
            in_flight: st.running,
            simulated: st.simulated,
            coalesced: st.coalesced,
            rejected: st.rejected,
            batches: st.batches,
            eval_panics: st.eval_panics,
            abandoned: st.abandoned,
            bulk_promotions: st.bulk_promotions,
        }
    }

    /// Stop admitting, drain the queue, and join the dispatcher. Every
    /// already-admitted cell is still evaluated and its waiters released.
    pub fn shutdown(&mut self) {
        {
            let mut st = self.shared.st.lock().unwrap_or_else(|e| e.into_inner());
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Last-resort poison guard: if the dispatcher thread unwinds past the
/// per-batch `catch_unwind` (e.g. `make_eval` itself panicked), mark the
/// scheduler poisoned and abandon every admitted job, so waiters error
/// out instead of blocking on slots nobody will ever settle.
struct DispatcherGuard<'a> {
    shared: &'a Shared,
    clean_exit: bool,
}

impl Drop for DispatcherGuard<'_> {
    fn drop(&mut self) {
        if self.clean_exit {
            return;
        }
        let mut st = self.shared.st.lock().unwrap_or_else(|e| e.into_inner());
        st.poisoned = true;
        st.running = 0;
        st.queue_hi.clear();
        st.queue_lo.clear();
        let orphans: Vec<Arc<Slot>> = st.active.drain().map(|(_, job)| job.slot).collect();
        st.abandoned += orphans.len() as u64;
        drop(st);
        for slot in orphans {
            let timing = SlotTiming {
                queue_us: slot.queued_us(),
                eval_us: 0,
            };
            slot.settle(
                Err(Abandoned {
                    message: "scheduler dispatcher died".into(),
                }),
                timing,
            );
        }
    }
}

fn dispatcher_loop<M, F>(shared: &Shared, make_eval: M)
where
    M: FnOnce() -> F,
    F: FnMut(&[CellSpec]) -> Vec<String>,
{
    let mut guard = DispatcherGuard {
        shared,
        clean_exit: false,
    };
    let mut eval = make_eval();
    loop {
        // Pick up a batch: the whole interactive queue first, with the
        // bulk queue merged in only when no interactive work is waiting,
        // the scheduler is draining, or the bulk queue has aged past
        // `BULK_AGING_ROUNDS` consecutive pickups (a promotion).
        let batch: Vec<(CellKey, CellSpec, Arc<Slot>)> = {
            let mut st = shared.st.lock().unwrap_or_else(|e| e.into_inner());
            while st.queued() == 0 && !st.shutdown {
                st = shared.work.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            if st.queued() == 0 && st.shutdown {
                guard.clean_exit = true;
                return;
            }
            let take_hi = !st.queue_hi.is_empty();
            let aged = st.bulk_skipped >= BULK_AGING_ROUNDS;
            let take_lo = !st.queue_lo.is_empty() && (!take_hi || aged || st.shutdown);
            let mut keys: Vec<CellKey> = st.queue_hi.drain(..).collect();
            if take_lo {
                if take_hi && aged {
                    st.bulk_promotions += 1;
                }
                keys.extend(st.queue_lo.drain(..));
                st.bulk_skipped = 0;
            } else if st.queue_lo.is_empty() {
                st.bulk_skipped = 0;
            } else {
                st.bulk_skipped += 1;
            }
            st.running = keys.len();
            st.batches += 1;
            keys.into_iter()
                .map(|k| {
                    let job = st.active.get(&k).expect("queued key is active");
                    (k, job.spec.clone(), job.slot.clone())
                })
                .collect()
        };
        // Queue-wait ends at pickup; everything after is evaluation time.
        let queue_us: Vec<u64> = batch.iter().map(|(_, _, slot)| slot.queued_us()).collect();
        let eval_started = Instant::now();

        let specs: Vec<CellSpec> = batch.iter().map(|(_, s, _)| s.clone()).collect();
        // A panic in the evaluation function must not kill the dispatcher:
        // before this guard existed it abandoned every in-flight slot and
        // handler threads hung in `Slot::wait` forever. The payload-count
        // contract is checked inside the same guard so a miscounting eval
        // abandons its batch instead of tearing the thread down.
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| eval(&specs)))
            .map_err(|p| {
                format!(
                    "batch evaluation panicked: {}",
                    crate::panic_message(p.as_ref())
                )
            })
            .and_then(|payloads| {
                if payloads.len() == batch.len() {
                    Ok(payloads)
                } else {
                    Err(format!(
                        "batch evaluation returned {} payloads for {} specs",
                        payloads.len(),
                        batch.len()
                    ))
                }
            });

        let eval_us = eval_started.elapsed().as_micros().min(u64::MAX as u128) as u64;
        let mut st = shared.st.lock().unwrap_or_else(|e| e.into_inner());
        st.running = 0;
        match outcome {
            Ok(payloads) => {
                st.simulated += batch.len() as u64;
                for (((key, _, slot), payload), queue_us) in
                    batch.into_iter().zip(payloads).zip(&queue_us)
                {
                    st.active.remove(&key);
                    slot.settle(
                        Ok(payload),
                        SlotTiming {
                            queue_us: *queue_us,
                            eval_us,
                        },
                    );
                }
            }
            Err(message) => {
                telemetry::log::debug(&message);
                st.eval_panics += 1;
                st.abandoned += batch.len() as u64;
                for ((key, _, slot), queue_us) in batch.into_iter().zip(&queue_us) {
                    st.active.remove(&key);
                    slot.settle(
                        Err(Abandoned {
                            message: message.clone(),
                        }),
                        SlotTiming {
                            queue_us: *queue_us,
                            eval_us,
                        },
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    fn spec(bench: &str) -> CellSpec {
        CellSpec {
            sim_version: "0.1.0".into(),
            device: "dev".into(),
            scale: "test".into(),
            bench: bench.into(),
            version: "Serial".into(),
            precision: 32,
            fault_seed: None,
            passes: None,
            params: vec![],
        }
    }

    fn echo_eval() -> impl FnMut(&[CellSpec]) -> Vec<String> {
        |specs: &[CellSpec]| specs.iter().map(|s| format!("r:{}", s.bench)).collect()
    }

    #[test]
    fn evaluates_and_fulfills() {
        let sched = Scheduler::start(64, echo_eval);
        let slots = sched
            .admit(&[spec("a"), spec("b")], Lane::Interactive)
            .unwrap();
        assert_eq!(slots[0].wait().unwrap(), "r:a");
        assert_eq!(slots[1].wait().unwrap(), "r:b");
        let st = sched.stats();
        assert_eq!(st.simulated, 2);
        assert_eq!(st.queue_depth, 0);
        assert_eq!(st.in_flight, 0);
    }

    /// Two identical concurrent submissions run the simulation once: the
    /// second joins the first's slot while the eval function is gated.
    #[test]
    fn duplicate_in_flight_cells_coalesce() {
        let evals = Arc::new(AtomicU64::new(0));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let sched = {
            let evals = evals.clone();
            let gate = gate.clone();
            Scheduler::start(64, move || {
                move |specs: &[CellSpec]| {
                    evals.fetch_add(specs.len() as u64, Ordering::SeqCst);
                    // Hold the batch until the test opens the gate, so the
                    // second submission provably arrives while in-flight.
                    let (lock, cv) = &*gate;
                    let mut open = lock.lock().unwrap();
                    while !*open {
                        open = cv.wait(open).unwrap();
                    }
                    specs.iter().map(|s| format!("r:{}", s.bench)).collect()
                }
            })
        };

        let s1 = sched.admit(&[spec("x")], Lane::Interactive).unwrap();
        // Wait until the dispatcher has picked the batch up (in_flight=1).
        while sched.stats().in_flight != 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let s2 = sched.admit(&[spec("x")], Lane::Interactive).unwrap();
        assert_eq!(sched.stats().coalesced, 1);
        // Same slot object: both waiters get the single evaluation.
        assert!(Arc::ptr_eq(&s1[0], &s2[0]));

        let waiter = std::thread::spawn(move || (s1[0].wait().unwrap(), s2[0].wait().unwrap()));
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        let (r1, r2) = waiter.join().unwrap();
        assert_eq!(r1, "r:x");
        assert_eq!(r2, "r:x");
        assert_eq!(evals.load(Ordering::SeqCst), 1, "exactly one simulation");
    }

    /// Duplicates inside a single sweep also collapse to one evaluation.
    #[test]
    fn intra_sweep_duplicates_coalesce() {
        let sched = Scheduler::start(64, echo_eval);
        let slots = sched
            .admit(&[spec("a"), spec("a"), spec("a")], Lane::Interactive)
            .unwrap();
        for s in &slots {
            assert_eq!(s.wait().unwrap(), "r:a");
        }
        assert_eq!(sched.stats().simulated, 1);
        assert_eq!(sched.stats().coalesced, 2);
    }

    #[test]
    fn queue_bound_rejects_all_or_nothing() {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let sched = {
            let gate = gate.clone();
            Scheduler::start(2, move || {
                move |specs: &[CellSpec]| {
                    let (lock, cv) = &*gate;
                    let mut open = lock.lock().unwrap();
                    while !*open {
                        open = cv.wait(open).unwrap();
                    }
                    specs.iter().map(|s| format!("r:{}", s.bench)).collect()
                }
            })
        };
        // First admission is drained into the running batch immediately;
        // park it behind the gate.
        let s0 = sched.admit(&[spec("warm")], Lane::Interactive).unwrap();
        while sched.stats().in_flight != 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Queue capacity is 2: two queued cells fit...
        let s1 = sched
            .admit(&[spec("a"), spec("b")], Lane::Interactive)
            .unwrap();
        // ...a third does not, and the oversized sweep is rejected whole —
        // even its coalescible member "a" is not joined on rejection.
        let err = sched
            .admit(&[spec("a"), spec("c"), spec("d")], Lane::Interactive)
            .unwrap_err();
        assert_eq!(
            err,
            AdmitError::Busy {
                queue_depth: 2,
                queue_cap: 2
            }
        );
        assert_eq!(sched.stats().rejected, 1);
        // Coalescing against queued cells needs no capacity and still works.
        let s2 = sched.admit(&[spec("a")], Lane::Interactive).unwrap();
        assert!(Arc::ptr_eq(&s1[0], &s2[0]));

        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        assert_eq!(s0[0].wait().unwrap(), "r:warm");
        assert_eq!(s1[1].wait().unwrap(), "r:b");
        assert_eq!(s2[0].wait().unwrap(), "r:a");
    }

    /// Concurrent distinct sweeps end up in one fork/join batch when they
    /// arrive while the dispatcher is busy.
    #[test]
    fn distinct_cells_batch_together() {
        let batches = Arc::new(Mutex::new(Vec::<usize>::new()));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let sched = {
            let batches = batches.clone();
            let gate = gate.clone();
            Scheduler::start(64, move || {
                let mut first = true;
                move |specs: &[CellSpec]| {
                    batches.lock().unwrap().push(specs.len());
                    if first {
                        first = false;
                        let (lock, cv) = &*gate;
                        let mut open = lock.lock().unwrap();
                        while !*open {
                            open = cv.wait(open).unwrap();
                        }
                    }
                    specs.iter().map(|s| format!("r:{}", s.bench)).collect()
                }
            })
        };
        let s0 = sched.admit(&[spec("w")], Lane::Interactive).unwrap();
        while sched.stats().in_flight != 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // These three sweeps queue while the first batch is gated...
        let sa = sched.admit(&[spec("a")], Lane::Interactive).unwrap();
        let sb = sched.admit(&[spec("b")], Lane::Interactive).unwrap();
        let sc = sched.admit(&[spec("c")], Lane::Interactive).unwrap();
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        s0[0].wait().unwrap();
        sa[0].wait().unwrap();
        sb[0].wait().unwrap();
        sc[0].wait().unwrap();
        // ...and are drained as one 3-cell batch.
        assert_eq!(*batches.lock().unwrap(), vec![1, 3]);
    }

    /// A panic in the batch evaluation function used to kill the
    /// dispatcher and leave every waiter blocked in `Slot::wait` forever.
    /// Now the batch is abandoned (waiters get `Err`), the dispatcher
    /// survives, and the next batch evaluates normally.
    #[test]
    fn eval_panic_releases_waiters_and_dispatcher_survives() {
        let sched = Scheduler::start(64, || {
            |specs: &[CellSpec]| {
                if specs.iter().any(|s| s.bench == "boom") {
                    panic!("injected eval panic");
                }
                specs.iter().map(|s| format!("r:{}", s.bench)).collect()
            }
        });

        let doomed = sched
            .admit(&[spec("boom"), spec("boom2")], Lane::Interactive)
            .unwrap();
        let err = doomed[0].wait().unwrap_err();
        assert!(
            err.message.contains("injected eval panic"),
            "abandonment must carry the panic message, got: {}",
            err.message
        );
        // boom2 rode in the same batch; it is abandoned too, not hung.
        assert!(doomed[1].wait().is_err());

        let st = sched.stats();
        assert_eq!(st.eval_panics, 1);
        assert_eq!(st.abandoned, 2);
        assert_eq!(st.simulated, 0);
        assert_eq!(st.in_flight, 0, "abandoned batch is not left in flight");

        // The dispatcher survived: fresh work still evaluates, and the
        // previously-abandoned key is admittable again (not stuck active).
        let ok = sched
            .admit(&[spec("fine"), spec("boom2")], Lane::Interactive)
            .unwrap();
        assert_eq!(ok[0].wait().unwrap(), "r:fine");
        assert_eq!(ok[1].wait().unwrap(), "r:boom2");
        assert_eq!(sched.stats().simulated, 2);
    }

    /// An evaluation function that breaks the one-payload-per-spec
    /// contract abandons its batch instead of tearing the dispatcher down.
    #[test]
    fn wrong_payload_count_abandons_batch() {
        let sched = Scheduler::start(64, || |_specs: &[CellSpec]| vec!["only-one".to_string()]);
        let slots = sched
            .admit(&[spec("a"), spec("b")], Lane::Interactive)
            .unwrap();
        let err = slots[0].wait().unwrap_err();
        assert!(err.message.contains("1 payloads for 2 specs"), "{err:?}");
        assert_eq!(sched.stats().abandoned, 2);
    }

    /// If `make_eval` itself panics the dispatcher thread is gone for
    /// good: admitted slots are abandoned by the poison guard and later
    /// admissions fail fast with `Poisoned` instead of queueing work
    /// nobody will drain.
    #[test]
    fn dispatcher_death_poisons_the_scheduler() {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let sched = {
            let gate = gate.clone();
            Scheduler::start(64, move || {
                // Stall setup until a victim sweep is admitted, then die.
                let (lock, cv) = &*gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
                // `*open` is always true here; the branch just keeps the
                // returned closure reachable for type inference.
                if *open {
                    panic!("make_eval failed");
                }
                |_specs: &[CellSpec]| -> Vec<String> { Vec::new() }
            })
        };
        let slots = sched.admit(&[spec("victim")], Lane::Interactive).unwrap();
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        // The guard flips the poison flag *before* settling the orphaned
        // slots, so once the victim's wait has returned the flag is
        // guaranteed visible to new admissions.
        let err = slots[0].wait().unwrap_err();
        assert!(err.message.contains("dispatcher died"), "{err:?}");
        assert!(matches!(
            sched.admit(&[spec("later")], Lane::Interactive),
            Err(AdmitError::Poisoned)
        ));
        assert_eq!(sched.stats().abandoned, 1);
    }

    /// `wait_timed` attributes wall-clock to queue-wait vs evaluation,
    /// and coalesced waiters observe the timing of the one evaluation
    /// that ran.
    #[test]
    fn wait_timed_reports_queue_and_eval_time() {
        let sched = Scheduler::start(64, || {
            |specs: &[CellSpec]| {
                std::thread::sleep(Duration::from_millis(5));
                specs.iter().map(|s| format!("r:{}", s.bench)).collect()
            }
        });
        let s1 = sched.admit(&[spec("t")], Lane::Interactive).unwrap();
        let s2 = sched.admit(&[spec("t")], Lane::Interactive).unwrap();
        let (r1, t1) = s1[0].wait_timed();
        let (r2, t2) = s2[0].wait_timed();
        assert_eq!(r1.unwrap(), "r:t");
        assert_eq!(r2.unwrap(), "r:t");
        assert!(t1.eval_us >= 5_000, "eval covers the sleep: {t1:?}");
        assert_eq!(t1, t2, "coalesced waiters share one timing");
    }

    #[test]
    fn shutdown_drains_admitted_work() {
        let mut sched = Scheduler::start(64, echo_eval);
        let slots = sched
            .admit(&[spec("a"), spec("b"), spec("c")], Lane::Interactive)
            .unwrap();
        sched.shutdown();
        for (s, b) in slots.iter().zip(["a", "b", "c"]) {
            assert_eq!(s.wait().unwrap(), format!("r:{b}"));
        }
        assert!(matches!(
            sched.admit(&[spec("d")], Lane::Interactive),
            Err(AdmitError::ShuttingDown)
        ));
    }

    /// With both lanes populated behind a gated batch, the next pickup
    /// takes only the interactive queue; the bulk cell waits for a later
    /// batch. Evaluation results are identical either way — the lane
    /// changes only *when* the bulk cell runs.
    #[test]
    fn interactive_lane_is_drained_before_bulk() {
        let batches = Arc::new(Mutex::new(Vec::<Vec<String>>::new()));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let sched = {
            let batches = batches.clone();
            let gate = gate.clone();
            Scheduler::start(64, move || {
                let mut first = true;
                move |specs: &[CellSpec]| {
                    batches
                        .lock()
                        .unwrap()
                        .push(specs.iter().map(|s| s.bench.clone()).collect());
                    if first {
                        first = false;
                        let (lock, cv) = &*gate;
                        let mut open = lock.lock().unwrap();
                        while !*open {
                            open = cv.wait(open).unwrap();
                        }
                    }
                    specs.iter().map(|s| format!("r:{}", s.bench)).collect()
                }
            })
        };
        // Park the dispatcher on a warm batch, then queue bulk BEFORE
        // interactive.
        let w = sched.admit(&[spec("w")], Lane::Interactive).unwrap();
        while sched.stats().in_flight != 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let b = sched.admit(&[spec("bulk")], Lane::Bulk).unwrap();
        let i = sched.admit(&[spec("inter")], Lane::Interactive).unwrap();
        assert_eq!(sched.stats().bulk_depth, 1);
        assert_eq!(sched.stats().interactive_depth, 1);
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        assert_eq!(w[0].wait().unwrap(), "r:w");
        assert_eq!(i[0].wait().unwrap(), "r:inter");
        assert_eq!(b[0].wait().unwrap(), "r:bulk");
        // The interactive cell got its own batch ahead of the bulk cell,
        // despite being admitted after it.
        assert_eq!(
            *batches.lock().unwrap(),
            vec![vec!["w"], vec!["inter"], vec!["bulk"]]
        );
        assert_eq!(sched.stats().bulk_promotions, 0);
    }

    /// A bulk queue passed over for `BULK_AGING_ROUNDS` pickups is merged
    /// into the next batch even though interactive work is still queued —
    /// bulk is delayed, never starved.
    #[test]
    fn aged_bulk_queue_is_promoted_past_interactive_work() {
        let batches = Arc::new(Mutex::new(Vec::<Vec<String>>::new()));
        // A counting semaphore of batch permits: each release lets the
        // evaluation function finish exactly one batch, so the test can
        // interleave admissions between pickups deterministically.
        let permits = Arc::new((Mutex::new(0u64), Condvar::new()));
        let sched = {
            let batches = batches.clone();
            let permits = permits.clone();
            Scheduler::start(64, move || {
                move |specs: &[CellSpec]| {
                    batches
                        .lock()
                        .unwrap()
                        .push(specs.iter().map(|s| s.bench.clone()).collect());
                    let (lock, cv) = &*permits;
                    let mut n = lock.lock().unwrap();
                    while *n == 0 {
                        n = cv.wait(n).unwrap();
                    }
                    *n -= 1;
                    specs.iter().map(|s| format!("r:{}", s.bench)).collect()
                }
            })
        };
        let release = || {
            let (lock, cv) = &*permits;
            *lock.lock().unwrap() += 1;
            cv.notify_all();
        };
        let await_pickup = |want: usize| {
            while batches.lock().unwrap().len() != want {
                std::thread::sleep(Duration::from_millis(1));
            }
        };

        // Batch 1 ("w") holds the dispatcher while bulk and the first
        // interactive cell queue up behind it.
        let mut slots = vec![sched.admit(&[spec("w")], Lane::Interactive).unwrap()];
        await_pickup(1);
        slots.push(sched.admit(&[spec("bulk")], Lane::Bulk).unwrap());
        slots.push(sched.admit(&[spec("i0")], Lane::Interactive).unwrap());
        // Each released batch evaluates one interactive cell and skips
        // the parked bulk queue, ticking the aging clock; admit the next
        // interactive cell only after the pickup, so the bulk queue is
        // provably non-empty at every skip.
        for round in 0..BULK_AGING_ROUNDS {
            release(); // finish current batch -> next pickup skips bulk
            await_pickup(2 + round as usize);
            slots.push(
                sched
                    .admit(&[spec(&format!("i{}", round + 1))], Lane::Interactive)
                    .unwrap(),
            );
        }
        // The aging clock has now hit BULK_AGING_ROUNDS: the next pickup
        // merges the bulk queue in despite queued interactive work.
        release();
        await_pickup(2 + BULK_AGING_ROUNDS as usize);
        let final_batch = batches.lock().unwrap().last().unwrap().clone();
        assert!(
            final_batch.contains(&"bulk".to_string()),
            "aged bulk cell must ride the promoted batch: {final_batch:?}"
        );
        release();
        for s in slots.iter().flatten() {
            assert!(s.wait().is_ok());
        }
        assert_eq!(sched.stats().bulk_promotions, 1);
        assert_eq!(sched.stats().bulk_depth, 0);
        // Drain any stray permit waiters before drop joins the thread.
        release();
    }

    /// `wait_deadline` returns `None` when evaluation wedges without
    /// settling the slot, and a settled slot still resolves normally.
    #[test]
    fn wait_deadline_times_out_on_wedged_eval_and_resolves_after() {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let sched = {
            let gate = gate.clone();
            Scheduler::start(64, move || {
                move |specs: &[CellSpec]| {
                    // Simulate a wedged (not panicking) evaluation.
                    let (lock, cv) = &*gate;
                    let mut open = lock.lock().unwrap();
                    while !*open {
                        open = cv.wait(open).unwrap();
                    }
                    specs.iter().map(|s| format!("r:{}", s.bench)).collect()
                }
            })
        };
        let slots = sched.admit(&[spec("stuck")], Lane::Interactive).unwrap();
        let started = Instant::now();
        assert!(
            slots[0].wait_deadline(Duration::from_millis(50)).is_none(),
            "deadline must fire while the evaluation is wedged"
        );
        assert!(started.elapsed() >= Duration::from_millis(50));
        // Un-wedge; the same slot then settles and waiters resolve.
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        let (result, _) = slots[0]
            .wait_deadline(Duration::from_secs(30))
            .expect("slot settles once evaluation completes");
        assert_eq!(result.unwrap(), "r:stuck");
    }
}
