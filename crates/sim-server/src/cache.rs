//! Content-addressed result cache: [`CellKey`] → opaque result payload.
//!
//! The cache stores *encoded* cell results (the server wires in the
//! harness checkpoint codec, so a payload is exactly one `simstate`-style
//! entry) keyed by the canonical spec hash. An in-memory LRU with a
//! configurable capacity fronts an optional on-disk snapshot: the whole
//! cache serializes to a deterministic, sorted, line-oriented `simcache
//! v1` document (same token codec as the key module) that the owner
//! persists with `atomic_write`. Corrupt snapshot lines are dropped, not
//! fatal — a damaged cache costs recomputation, never a crash.

use crate::key::{esc, unesc, CellKey, CellSpec, Tokens};
use std::collections::HashMap;

const MAGIC: &str = "simcache v1";

/// One cached result: the spec it answers plus the encoded payload.
#[derive(Clone, Debug)]
pub struct CachedCell {
    pub spec: CellSpec,
    pub payload: String,
    /// LRU stamp: larger = more recently used.
    stamp: u64,
}

/// Running totals; monotone over the life of the cache (survive eviction,
/// not restarts).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
}

/// An in-memory LRU keyed by [`CellKey`].
///
/// Not internally synchronized: the server owns it behind a mutex. All
/// operations are O(1) except eviction's victim scan, which is O(n) —
/// fine for the thousands-of-cells scale this serves, and it keeps the
/// structure a plain `HashMap` with no unsafe intrusive lists.
pub struct Cache {
    capacity: usize,
    map: HashMap<CellKey, CachedCell>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// `capacity` of 0 disables storage entirely (every lookup misses).
    pub fn new(capacity: usize) -> Cache {
        Cache {
            capacity,
            map: HashMap::new(),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Look up a key, refreshing its recency. Counts a hit or a miss.
    pub fn get(&mut self, key: CellKey) -> Option<CachedCell> {
        self.clock += 1;
        let clock = self.clock;
        match self.map.get_mut(&key) {
            Some(cell) => {
                cell.stamp = clock;
                self.stats.hits += 1;
                Some(cell.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Look up without touching recency or counters (metrics, tests).
    pub fn peek(&self, key: CellKey) -> Option<&CachedCell> {
        self.map.get(&key)
    }

    /// Insert (or refresh) a result, evicting the least-recently-used
    /// entries if over capacity. Idempotent for identical payloads.
    pub fn insert(&mut self, spec: CellSpec, payload: String) {
        if self.capacity == 0 {
            return;
        }
        let key = spec.key();
        self.clock += 1;
        let stamp = self.clock;
        self.stats.insertions += 1;
        self.map.insert(
            key,
            CachedCell {
                spec,
                payload,
                stamp,
            },
        );
        while self.map.len() > self.capacity {
            // O(n) victim scan; see the struct-level note.
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, c)| c.stamp)
                .map(|(k, _)| *k)
                .expect("non-empty map over capacity");
            self.map.remove(&victim);
            self.stats.evictions += 1;
        }
    }

    /// Serialize to the `simcache v1` snapshot format. Lines are sorted
    /// by key, so the bytes are a pure function of the *set* of entries
    /// (recency and counters are deliberately not persisted).
    pub fn snapshot(&self) -> Vec<u8> {
        let mut lines: Vec<String> = self
            .map
            .iter()
            .map(|(k, c)| format!("{k}|{}|{}", esc(&c.spec.canonical()), esc(&c.payload)))
            .collect();
        lines.sort_unstable();
        let mut out = String::with_capacity(lines.iter().map(|l| l.len() + 1).sum::<usize>() + 16);
        out.push_str(MAGIC);
        out.push('\n');
        for l in &lines {
            out.push_str(l);
            out.push('\n');
        }
        out.into_bytes()
    }

    /// Restore entries from a snapshot produced by [`snapshot`](Self::snapshot).
    ///
    /// Returns the number of entries loaded, or `None` when the document
    /// is not a simcache at all. Lines whose stored key does not match
    /// the recomputed spec hash (tampering, torn write, schema change)
    /// are dropped. `validate` lets the owner reject payloads it cannot
    /// decode. Loaded entries land in sorted-key order (deterministic
    /// recency) and respect capacity.
    pub fn restore(&mut self, bytes: &[u8], validate: impl Fn(&str) -> bool) -> Option<usize> {
        let text = std::str::from_utf8(bytes).ok()?;
        let mut lines = text.lines();
        if lines.next()? != MAGIC {
            return None;
        }
        let mut loaded = 0;
        for line in lines {
            let mut t = Tokens::new(line);
            let parsed = (|| {
                let key: CellKey = t.str()?.parse().ok()?;
                let spec = CellSpec::from_canonical(&unesc(t.str()?)?)?;
                let payload = unesc(t.str()?)?;
                if spec.key() != key || !validate(&payload) {
                    return None;
                }
                Some((spec, payload))
            })();
            if let Some((spec, payload)) = parsed {
                // Bypass the hit/miss/insertion counters: a warm start is
                // bookkeeping, not traffic.
                if self.capacity > 0 {
                    let key = spec.key();
                    self.clock += 1;
                    let stamp = self.clock;
                    self.map.insert(
                        key,
                        CachedCell {
                            spec,
                            payload,
                            stamp,
                        },
                    );
                    if self.map.len() <= self.capacity {
                        loaded += 1;
                    } else {
                        self.map.remove(&key);
                    }
                }
            }
        }
        Some(loaded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(bench: &str) -> CellSpec {
        CellSpec {
            sim_version: "0.1.0".into(),
            device: "exynos5250".into(),
            scale: "test".into(),
            bench: bench.into(),
            version: "Serial".into(),
            precision: 32,
            fault_seed: None,
            passes: None,
            params: vec![],
        }
    }

    #[test]
    fn hit_miss_and_counters() {
        let mut c = Cache::new(8);
        let k = spec("spmv").key();
        assert!(c.get(k).is_none());
        c.insert(spec("spmv"), "payload-a".into());
        let got = c.get(k).unwrap();
        assert_eq!(got.payload, "payload-a");
        assert_eq!(
            c.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                insertions: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn lru_evicts_the_coldest() {
        let mut c = Cache::new(2);
        c.insert(spec("a"), "1".into());
        c.insert(spec("b"), "2".into());
        // Touch "a" so "b" is the LRU victim.
        assert!(c.get(spec("a").key()).is_some());
        c.insert(spec("c"), "3".into());
        assert_eq!(c.len(), 2);
        assert!(c.peek(spec("a").key()).is_some());
        assert!(c.peek(spec("b").key()).is_none());
        assert!(c.peek(spec("c").key()).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let mut c = Cache::new(0);
        c.insert(spec("a"), "1".into());
        assert!(c.is_empty());
        assert!(c.get(spec("a").key()).is_none());
    }

    #[test]
    fn snapshot_is_deterministic_and_restores() {
        let mut a = Cache::new(16);
        a.insert(spec("spmv"), "p1".into());
        a.insert(spec("vecop"), "p2".into());
        a.insert(spec("hist"), "p3".into());
        let snap = a.snapshot();
        // Insertion order must not matter.
        let mut b = Cache::new(16);
        b.insert(spec("hist"), "p3".into());
        b.insert(spec("vecop"), "p2".into());
        b.insert(spec("spmv"), "p1".into());
        assert_eq!(snap, b.snapshot());

        let mut c = Cache::new(16);
        assert_eq!(c.restore(&snap, |_| true), Some(3));
        assert_eq!(c.snapshot(), snap);
        // Restore does not count as traffic.
        assert_eq!(c.stats(), CacheStats::default());
        assert_eq!(c.get(spec("vecop").key()).unwrap().payload, "p2");
    }

    #[test]
    fn corrupt_snapshot_lines_are_dropped() {
        let mut a = Cache::new(16);
        a.insert(spec("spmv"), "p1".into());
        a.insert(spec("vecop"), "p2".into());
        let mut text = String::from_utf8(a.snapshot()).unwrap();
        text.push_str("not|a|valid|line\n");
        // Tampered key: flip a hex digit of the first entry line.
        let tampered = {
            let mut lines: Vec<&str> = text.lines().collect();
            let flipped = lines[1].replacen(
                &lines[1][..1],
                if &lines[1][..1] == "0" { "1" } else { "0" },
                1,
            );
            let owned = flipped;
            lines[1] = &owned;
            lines.join("\n") + "\n"
        };
        let mut c = Cache::new(16);
        // Exactly one pristine line survives (the untampered second entry).
        assert_eq!(c.restore(tampered.as_bytes(), |_| true), Some(1));

        // Validation hook rejects undecodable payloads.
        let mut d = Cache::new(16);
        assert_eq!(d.restore(&a.snapshot(), |p| p != "p1"), Some(1));
        assert!(d.peek(spec("spmv").key()).is_none());
        assert!(d.peek(spec("vecop").key()).is_some());

        // A foreign document is rejected outright.
        assert_eq!(Cache::new(4).restore(b"nonsense\n", |_| true), None);
    }

    #[test]
    fn restore_respects_capacity() {
        let mut a = Cache::new(16);
        for name in ["a", "b", "c", "d"] {
            a.insert(spec(name), name.to_string());
        }
        let snap = a.snapshot();
        let mut small = Cache::new(2);
        let loaded = small.restore(&snap, |_| true).unwrap();
        assert_eq!(loaded, 2);
        assert_eq!(small.len(), 2);
    }
}
