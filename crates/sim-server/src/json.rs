//! A minimal, dependency-free JSON parser for request bodies.
//!
//! Supports the full value grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null) with two deliberate restrictions
//! that fit the wire format: integers that fit `u64`/`i64` are kept
//! exact (a `fault_seed` must not round-trip through `f64`), and input
//! size/depth are bounded so a hostile body cannot blow the stack.

/// Parsed JSON value. Integer-looking numbers are kept exact.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// A number with a fraction/exponent part.
    Num(f64),
    /// A non-negative integer that fits `u64`.
    UInt(u64),
    /// A negative integer that fits `i64`.
    Int(i64),
    Str(String),
    Arr(Vec<Json>),
    /// Key order is preserved (irrelevant for lookups, useful for tests).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::UInt(n) => Some(*n as f64),
            Json::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// Escape a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    telemetry::json_escape(s)
}

const MAX_DEPTH: usize = 64;

/// Parse one JSON document. Trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            fields.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let e = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling for non-BMP chars.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".into());
                                }
                                self.pos += 1;
                                self.expect(b'u')
                                    .map_err(|_| "lone high surrogate".to_string())?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err("bad low surrogate".into());
                                }
                                let c = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(c).ok_or("bad surrogate pair")?
                            } else {
                                char::from_u32(cp).ok_or("bad \\u escape")?
                            };
                            out.push(c);
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                Some(b) if b < 0x20 => return Err("raw control char in string".into()),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or("truncated \\u escape")?;
        self.pos += 4;
        u32::from_str_radix(std::str::from_utf8(hex).map_err(|e| e.to_string())?, 16)
            .map_err(|e| e.to_string())
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !fractional {
            // Keep integers exact: a u64 seed survives the wire.
            if let Some(neg) = text.strip_prefix('-') {
                if let Ok(n) = neg.parse::<i64>() {
                    return Ok(Json::Int(-n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_sweep_request_shape() {
        let body = r#"{"scale":"test","fault_seed":18446744073709551615,
            "cells":[{"bench":"spmv","version":"OpenCL-Opt","precision":"single"}]}"#;
        let v = parse(body).unwrap();
        assert_eq!(v.get("scale").unwrap().as_str(), Some("test"));
        // Max u64 survives exactly (would be lossy through f64).
        assert_eq!(v.get("fault_seed").unwrap().as_u64(), Some(u64::MAX));
        let cells = v.get("cells").unwrap().as_arr().unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].get("bench").unwrap().as_str(), Some("spmv"));
    }

    #[test]
    fn scalars_and_nesting() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("-12").unwrap(), Json::Int(-12));
        assert_eq!(parse("12").unwrap(), Json::UInt(12));
        assert_eq!(parse("1.5e3").unwrap(), Json::Num(1500.0));
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Obj(vec![]));
        assert_eq!(
            parse(r#"[1,[2,{"a":null}]]"#).unwrap(),
            Json::Arr(vec![
                Json::UInt(1),
                Json::Arr(vec![
                    Json::UInt(2),
                    Json::Obj(vec![("a".into(), Json::Null)])
                ])
            ])
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            parse(r#""a\"b\\c\n\tAé""#).unwrap(),
            Json::Str("a\"b\\c\n\tA\u{e9}".into())
        );
        // Raw astral char and escaped surrogate pair both decode.
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("\u{1f600}".into()));
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("\u{1f600}".into())
        );
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse("\"raw\ncontrol\"").is_err());
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "1 2",
            "{\"a\" 1}",
            "\"x",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        // Depth bomb is an error, not a stack overflow.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn escape_helper_round_trips() {
        let hostile = "quote\" slash\\ newline\n tab\t";
        let doc = format!("\"{}\"", escape(hostile));
        assert_eq!(parse(&doc).unwrap(), Json::Str(hostile.into()));
    }
}
