//! Per-shard circuit breaker for the router's fan-out path.
//!
//! A dead or flapping shard must not eat the retry budget of every sweep
//! that touches it. The breaker trips **open** after `threshold`
//! consecutive transport failures; open shards are skipped outright until
//! a cooldown elapses, at which point one caller is granted a
//! **half-open probe** (the router hits `/healthz`) — success closes the
//! breaker, failure re-opens it and restarts the cooldown.
//!
//! The breaker tracks *transport* outcomes only: a shard that answers —
//! even with 429 or 500 — is alive, and callers report that as success.

use std::time::{Duration, Instant};

/// Breaker state, exported on `/metrics` as
/// `sim_router_breaker_state{shard="i"}` via [`BreakerState::code`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

impl BreakerState {
    /// Metric encoding: 0 = closed (healthy), 1 = half-open (probing),
    /// 2 = open (shard quarantined).
    pub fn code(self) -> u64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        }
    }
}

/// What the caller may do with a shard right now.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Breaker closed: send the request.
    Allow,
    /// Breaker open (cooldown running) or a probe is already in flight:
    /// skip this shard.
    Deny,
    /// Cooldown elapsed: the caller holds the one half-open probe slot
    /// and must report the probe's outcome via `on_success`/`on_failure`.
    Probe,
}

#[derive(Debug)]
pub struct Breaker {
    threshold: u32,
    cooldown: Duration,
    consecutive_failures: u32,
    state: BreakerState,
    opened_at: Option<Instant>,
}

impl Breaker {
    /// `threshold` consecutive transport failures trip the breaker;
    /// `cooldown` must elapse before a half-open probe is granted.
    /// A threshold of 0 is clamped to 1.
    pub fn new(threshold: u32, cooldown: Duration) -> Breaker {
        Breaker {
            threshold: threshold.max(1),
            cooldown,
            consecutive_failures: 0,
            state: BreakerState::Closed,
            opened_at: None,
        }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// May the caller contact the shard? Open breakers grant exactly one
    /// [`Decision::Probe`] per elapsed cooldown (the state moves to
    /// half-open until the probe reports back).
    pub fn decide(&mut self) -> Decision {
        match self.state {
            BreakerState::Closed => Decision::Allow,
            BreakerState::HalfOpen => Decision::Deny,
            BreakerState::Open => {
                let elapsed = self
                    .opened_at
                    .map(|t| t.elapsed() >= self.cooldown)
                    .unwrap_or(true);
                if elapsed {
                    self.state = BreakerState::HalfOpen;
                    Decision::Probe
                } else {
                    Decision::Deny
                }
            }
        }
    }

    /// A request (or probe) reached the shard and got an HTTP answer.
    pub fn on_success(&mut self) {
        self.consecutive_failures = 0;
        self.state = BreakerState::Closed;
        self.opened_at = None;
    }

    /// A request (or probe) failed at the transport layer.
    pub fn on_failure(&mut self) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        if self.state == BreakerState::HalfOpen || self.consecutive_failures >= self.threshold {
            self.state = BreakerState::Open;
            self.opened_at = Some(Instant::now());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let mut b = Breaker::new(3, Duration::from_secs(3600));
        for _ in 0..2 {
            b.on_failure();
            assert_eq!(b.state(), BreakerState::Closed);
            assert_eq!(b.decide(), Decision::Allow);
        }
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.decide(), Decision::Deny, "cooldown still running");
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = Breaker::new(3, Duration::from_secs(3600));
        b.on_failure();
        b.on_failure();
        b.on_success();
        b.on_failure();
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Closed, "streak was reset");
    }

    #[test]
    fn half_open_probe_closes_on_success_and_reopens_on_failure() {
        let mut b = Breaker::new(1, Duration::ZERO);
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        // Zero cooldown: the next decide grants the probe slot.
        assert_eq!(b.decide(), Decision::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // While the probe is out, other callers are denied.
        assert_eq!(b.decide(), Decision::Deny);
        // Probe fails → back to open, cooldown restarted.
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        // Probe again; this time it succeeds → closed.
        assert_eq!(b.decide(), Decision::Probe);
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.decide(), Decision::Allow);
    }

    #[test]
    fn zero_threshold_is_clamped_to_one() {
        let mut b = Breaker::new(0, Duration::from_secs(3600));
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn state_codes_are_stable() {
        assert_eq!(BreakerState::Closed.code(), 0);
        assert_eq!(BreakerState::HalfOpen.code(), 1);
        assert_eq!(BreakerState::Open.code(), 2);
    }
}
