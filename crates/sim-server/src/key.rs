//! Canonical cell identity: [`CellSpec`] → [`CellKey`].
//!
//! A *cell* is one fully-specified experiment point: benchmark × version ×
//! precision × problem scale × device config × fault seed × optimizer
//! pass pipeline × simulator version. Its [`CellKey`] is a stable 64-bit FNV-1a hash of the
//! *canonical serialization* of the spec, so any two parties that agree on
//! the spec agree on the key — the `harness` checkpoint store
//! (`simstate v3` lines carry the key) and the server's content-addressed
//! cache speak the same identity, and a warm-start from a checkpoint is a
//! pure key-space import.
//!
//! Canonicalization rules (pinned by unit tests):
//!
//! * fields appear in one fixed order, regardless of how the spec was
//!   built or which order a JSON request listed them in;
//! * free-form strings are percent-escaped ([`esc`]) so the `|`-separated
//!   line structure cannot be broken by hostile names;
//! * numeric device/DVFS parameters are encoded as IEEE-754 **bit
//!   patterns** in hex ([`fbits`]) and sorted by name — `0.1` hashes the
//!   same on every platform and round-trips exactly;
//! * the schema version is part of the hashed bytes, so a future change
//!   to these rules invalidates old keys instead of colliding with them.
//!
//! This module also hosts the shared token-level codec (escaping, float
//! bit-patterns, the [`Tokens`] reader) that used to be private to
//! `harness::checkpoint`; the checkpoint and the cache snapshot format
//! both build on it.

use std::fmt;

/// Version of the canonicalization schema itself (hashed into every key).
/// v2 added the optimizer `passes` field; v1 keys are deliberately orphaned
/// (an optimized and an unoptimized run must never share a cache line).
pub const KEY_SCHEMA_VERSION: u32 = 2;

// ---- shared token-level codec ----

/// Percent-encode the bytes that would break a `|`/`,`-separated line.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'%' | b'|' | b',' | b'\n' | b'\r' => out.push_str(&format!("%{b:02x}")),
            _ => out.push(b as char),
        }
    }
    out
}

/// Inverse of [`esc`]. `None` on malformed escapes or invalid UTF-8.
pub fn unesc(s: &str) -> Option<String> {
    let mut out = Vec::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

/// An `f64` as its 64-bit IEEE-754 bit pattern in hex: exact round trip,
/// no locale or shortest-float formatting hazards.
pub fn fbits(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// Inverse of [`fbits`].
pub fn fbits_parse(s: &str) -> Option<f64> {
    Some(f64::from_bits(u64::from_str_radix(s, 16).ok()?))
}

/// Sequential token reader over one '|'-separated line.
pub struct Tokens<'a> {
    it: std::str::Split<'a, char>,
}

impl<'a> Tokens<'a> {
    pub fn new(line: &'a str) -> Self {
        Tokens {
            it: line.split('|'),
        }
    }

    /// Next raw token.
    pub fn str(&mut self) -> Option<&'a str> {
        self.it.next()
    }

    /// Next token, percent-unescaped.
    pub fn string(&mut self) -> Option<String> {
        unesc(self.it.next()?)
    }

    /// Next token as an `f64` bit pattern.
    pub fn f64(&mut self) -> Option<f64> {
        fbits_parse(self.it.next()?)
    }

    pub fn u64(&mut self) -> Option<u64> {
        self.it.next()?.parse().ok()
    }

    pub fn u32(&mut self) -> Option<u32> {
        self.it.next()?.parse().ok()
    }

    pub fn usize(&mut self) -> Option<usize> {
        self.it.next()?.parse().ok()
    }
}

// ---- the spec and its key ----

/// A fully-normalized experiment cell specification.
///
/// Everything that can change the bytes of a cell's result must be in
/// here; anything not in here must not affect the result (that is the
/// determinism contract the simulator already pins: thread count, cache
/// state and arrival order are all absent by design).
#[derive(Clone, Debug, PartialEq)]
pub struct CellSpec {
    /// Simulator version (key invalidation across releases).
    pub sim_version: String,
    /// Device / platform fingerprint (e.g. "exynos5250").
    pub device: String,
    /// Problem-size scale tag ("paper" / "test").
    pub scale: String,
    /// Benchmark short name (spmv, vecop, …).
    pub bench: String,
    /// Version label in dashed wire form (Serial, OpenMP, OpenCL,
    /// OpenCL-Opt).
    pub version: String,
    /// Precision in bits (32 / 64).
    pub precision: u8,
    /// Fault-injection seed, when chaos is requested for this cell.
    pub fault_seed: Option<u64>,
    /// Optimizer pass pipeline applied to every kernel of the cell, in the
    /// comma-separated form `kernel_ir::Pipeline` parses ("cf,cse,dce").
    /// `None` means the unoptimized baseline — a distinct key from any
    /// pipeline, including an empty one.
    pub passes: Option<String>,
    /// Named numeric overrides (DVFS frequency, voltage, …), hashed as
    /// bit patterns and sorted by name. Empty for the default config.
    pub params: Vec<(String, f64)>,
}

impl CellSpec {
    /// The canonical serialized form: fixed field order, escaped strings,
    /// bit-exact floats, name-sorted params. This is what gets hashed and
    /// what the cache snapshot stores.
    pub fn canonical(&self) -> String {
        let mut params: Vec<&(String, f64)> = self.params.iter().collect();
        params.sort_by(|a, b| a.0.cmp(&b.0));
        let params = params
            .iter()
            .map(|(k, v)| format!("{}={}", esc(k), fbits(*v)))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "cellspec v{}|{}|{}|{}|{}|{}|{}|{}|{}|{}",
            KEY_SCHEMA_VERSION,
            esc(&self.sim_version),
            esc(&self.device),
            esc(&self.scale),
            esc(&self.bench),
            esc(&self.version),
            self.precision,
            self.fault_seed
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into()),
            self.passes
                .as_deref()
                .map(esc)
                .unwrap_or_else(|| "-".into()),
            params,
        )
    }

    /// Parse a [`canonical`](Self::canonical) line back into a spec.
    pub fn from_canonical(line: &str) -> Option<CellSpec> {
        let mut t = Tokens::new(line);
        if t.str()? != format!("cellspec v{KEY_SCHEMA_VERSION}") {
            return None;
        }
        let sim_version = t.string()?;
        let device = t.string()?;
        let scale = t.string()?;
        let bench = t.string()?;
        let version = t.string()?;
        let precision = t.str()?.parse().ok()?;
        let fault_seed = match t.str()? {
            "-" => None,
            s => Some(s.parse().ok()?),
        };
        let passes = match t.str()? {
            "-" => None,
            s => Some(unesc(s)?),
        };
        let mut params = Vec::new();
        match t.str()? {
            "" => {}
            s => {
                for kv in s.split(',') {
                    let (k, v) = kv.split_once('=')?;
                    params.push((unesc(k)?, fbits_parse(v)?));
                }
            }
        }
        Some(CellSpec {
            sim_version,
            device,
            scale,
            bench,
            version,
            precision,
            fault_seed,
            passes,
            params,
        })
    }

    /// The content address of this cell.
    pub fn key(&self) -> CellKey {
        CellKey(fnv1a64(self.canonical().as_bytes()))
    }
}

/// Stable 64-bit content address of a [`CellSpec`]. Displays as 16 hex
/// digits (the form used in `GET /v1/cell/<key>` and `simstate v3`
/// lines).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellKey(pub u64);

impl fmt::Display for CellKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl std::str::FromStr for CellKey {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, ()> {
        if s.len() != 16 {
            return Err(());
        }
        u64::from_str_radix(s, 16).map(CellKey).map_err(|_| ())
    }
}

/// FNV-1a, 64-bit: tiny, dependency-free, stable across platforms. Not
/// cryptographic — the cache is a performance layer, not a trust boundary.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CellSpec {
        CellSpec {
            sim_version: "0.1.0".into(),
            device: "exynos5250".into(),
            scale: "test".into(),
            bench: "spmv".into(),
            version: "OpenCL-Opt".into(),
            precision: 32,
            fault_seed: Some(7),
            passes: Some("cf,cse,dce".into()),
            params: vec![("gpu_mhz".into(), 533.0), ("a".into(), 0.1)],
        }
    }

    #[test]
    fn canonical_round_trips_exactly() {
        let s = spec();
        let c = s.canonical();
        let back = CellSpec::from_canonical(&c).unwrap();
        // Params come back name-sorted; keys and canonical forms agree.
        assert_eq!(back.key(), s.key());
        assert_eq!(back.canonical(), c);
        assert_eq!(back.bench, "spmv");
        assert_eq!(back.fault_seed, Some(7));
    }

    #[test]
    fn param_order_does_not_change_the_key() {
        let a = spec();
        let mut b = spec();
        b.params.reverse();
        assert_eq!(a.key(), b.key());
        assert_eq!(a.canonical(), b.canonical());
    }

    #[test]
    fn every_field_changes_the_key() {
        let base = spec().key();
        let mut s = spec();
        s.sim_version = "0.2.0".into();
        assert_ne!(s.key(), base);
        let mut s = spec();
        s.device = "other".into();
        assert_ne!(s.key(), base);
        let mut s = spec();
        s.scale = "paper".into();
        assert_ne!(s.key(), base);
        let mut s = spec();
        s.bench = "vecop".into();
        assert_ne!(s.key(), base);
        let mut s = spec();
        s.version = "Serial".into();
        assert_ne!(s.key(), base);
        let mut s = spec();
        s.precision = 64;
        assert_ne!(s.key(), base);
        let mut s = spec();
        s.fault_seed = None;
        assert_ne!(s.key(), base);
        let mut s = spec();
        s.passes = None;
        assert_ne!(s.key(), base);
        let mut s = spec();
        s.passes = Some("cf".into());
        assert_ne!(s.key(), base);
        let mut s = spec();
        s.params[1].1 = 0.2;
        assert_ne!(s.key(), base);
    }

    /// Pin the exact hash so an accidental canonicalization change (field
    /// order, separators, float formatting) breaks this build instead of
    /// silently orphaning every persisted cache and checkpoint.
    #[test]
    fn key_is_pinned() {
        assert_eq!(
            spec().canonical(),
            "cellspec v2|0.1.0|exynos5250|test|spmv|OpenCL-Opt|32|7\
             |cf%2ccse%2cdce|a=3fb999999999999a,gpu_mhz=4080a80000000000"
        );
        assert_eq!(spec().key().0, fnv1a64(spec().canonical().as_bytes()));
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn float_bits_round_trip_hostile_values() {
        for x in [
            0.1_f64,
            -0.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            std::f64::consts::PI,
            // An f32 widened to f64 (the widening is exact): covers specs
            // whose params originate as single-precision values.
            std::f32::consts::E as f64,
        ] {
            assert_eq!(fbits_parse(&fbits(x)).unwrap().to_bits(), x.to_bits());
        }
        // NaN bit patterns survive too (payload preserved).
        let nan = f64::from_bits(0x7ff8_0000_0000_1234);
        assert_eq!(fbits_parse(&fbits(nan)).unwrap().to_bits(), nan.to_bits());
    }

    #[test]
    fn key_display_parses_back() {
        let k = spec().key();
        let s = k.to_string();
        assert_eq!(s.len(), 16);
        assert_eq!(s.parse::<CellKey>().unwrap(), k);
        assert!("xyz".parse::<CellKey>().is_err());
        assert!("0123".parse::<CellKey>().is_err());
    }

    #[test]
    fn escaping_round_trips() {
        for s in ["plain", "a|b,c%d", "line\nbreak\r", "", "100%"] {
            assert_eq!(unesc(&esc(s)).as_deref(), Some(s));
        }
        assert_eq!(unesc("%zz"), None);
        assert_eq!(unesc("%7"), None);
    }

    #[test]
    fn hostile_names_cannot_break_structure() {
        let mut s = spec();
        s.bench = "evil|cell,with%tricks\n".into();
        let c = s.canonical();
        assert_eq!(c.lines().count(), 1);
        let back = CellSpec::from_canonical(&c).unwrap();
        assert_eq!(back.bench, s.bench);
        assert_eq!(back.key(), s.key());
    }
}
