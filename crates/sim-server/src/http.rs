//! Minimal HTTP/1.1 plumbing over `std::net` — enough protocol for a
//! localhost experiment service, and nothing more.
//!
//! Server side: [`Server::bind`] + [`Server::run`] accept loop, one
//! handler thread per connection (scoped, so the handler may borrow the
//! engine), `Connection: close` semantics, bounded header/body sizes and
//! a read timeout so one stuck client cannot wedge an acceptor thread
//! forever. Client side: [`request`], a one-shot request helper used by
//! `harness submit` and the end-to-end tests.
//!
//! The client can also carry a deterministic network [`FaultPlan`]
//! ([`request_with_chaos`]): connect refusal, recorded (never slept)
//! stalls, truncated responses and garbage status lines are rolled as
//! pure functions of the request *content* and attempt number, so a
//! chaotic routed sweep makes identical fault decisions at any
//! `SIM_THREADS` and across runs with ephemeral ports.

use crate::key::fnv1a64;
use crate::panic_message;
use sim_faults::{FaultPlan, FaultSite};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Maximum accepted size of the request head (request line + headers).
const MAX_HEAD: usize = 16 * 1024;
/// Maximum accepted request body size.
const MAX_BODY: usize = 16 * 1024 * 1024;

// ---- timeout defaults ----
//
// Every timeout the serving stack uses defaults here, in one place; the
// CLI's `--timeout-ms` overrides the per-request one.

/// Default client request timeout (ms): a full-grid sweep simulates many
/// cells, so the data-plane default is generous.
pub const DEFAULT_TIMEOUT_MS: u64 = 600_000;
/// Default timeout (ms) for cheap control-plane probes (`/healthz`).
pub const DEFAULT_PROBE_TIMEOUT_MS: u64 = 10_000;
/// Default per-connection server socket timeout (ms).
pub const DEFAULT_IO_TIMEOUT_MS: u64 = 30_000;
/// Timeout for the stop handle's wake-up poke to the acceptor.
const STOP_POKE_TIMEOUT: Duration = Duration::from_secs(1);

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path with query string, verbatim (e.g. `/v1/cell/abc123`).
    pub path: String,
    /// Header names lowercased.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One response to send.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
    /// Extra headers (e.g. `Retry-After` on 429).
    pub extra_headers: Vec<(String, String)>,
}

impl Response {
    pub fn new(status: u16, content_type: &'static str, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type,
            body: body.into(),
            extra_headers: Vec::new(),
        }
    }

    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response::new(status, "text/plain; charset=utf-8", body)
    }

    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response::new(status, "application/json", body)
    }

    pub fn jsonl(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response::new(status, "application/jsonl", body)
    }

    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.extra_headers.push((name.into(), value.into()));
        self
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }
}

/// Why [`read_request`] could not produce a request — each variant maps
/// to a different answer on the wire.
#[derive(Debug)]
pub enum ReadError {
    /// Head or declared body exceeds the configured caps → 413.
    TooLarge(String),
    /// Syntactically broken request → 400.
    Malformed(String),
    /// Transport failure (peer gone, timeout): nothing left to answer.
    Io(io::Error),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::TooLarge(m) | ReadError::Malformed(m) => f.write_str(m),
            ReadError::Io(e) => e.fmt(f),
        }
    }
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> ReadError {
        ReadError::Io(e)
    }
}

/// Read and parse one request from a stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ReadError> {
    let bad = |m: &str| ReadError::Malformed(m.to_string());
    // Read until the blank line ending the head.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(p) = find_head_end(&buf) {
            break p;
        }
        if buf.len() > MAX_HEAD {
            return Err(ReadError::TooLarge("request head too large".into()));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ReadError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-request",
            )));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| bad("non-UTF8 head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or_else(|| bad("empty request"))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .ok_or_else(|| bad("bad request line"))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| bad("bad request line"))?
        .to_string();
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (k, v) = line.split_once(':').ok_or_else(|| bad("bad header"))?;
        headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
    }
    let req = Request {
        method,
        path,
        headers,
        body: Vec::new(),
    };
    let len: usize = match req.header("content-length") {
        Some(v) => v.parse().map_err(|_| bad("bad content-length"))?,
        None => 0,
    };
    if len > MAX_BODY {
        return Err(ReadError::TooLarge("request body too large".into()));
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < len {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ReadError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            )));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(len);
    Ok(Request { body, ..req })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Serialize and send one response.
pub fn write_response(stream: &mut TcpStream, resp: &Response) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        resp.status,
        resp.reason(),
        resp.content_type,
        resp.body.len()
    );
    for (k, v) in &resp.extra_headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

/// Handle to stop a running [`Server`] from another thread (or from a
/// handler, e.g. a shutdown endpoint).
#[derive(Clone)]
pub struct StopHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl StopHandle {
    /// Request shutdown. Idempotent; pokes the acceptor awake.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // The acceptor blocks in accept(); a throwaway connection wakes it
        // so it can observe the flag.
        let _ = TcpStream::connect_timeout(&self.addr, STOP_POKE_TIMEOUT);
    }

    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

/// A bound listener plus its stop flag.
pub struct Server {
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    io_timeout: Duration,
}

impl Server {
    /// Bind (use port 0 for an ephemeral port; read it back with
    /// [`local_addr`](Self::local_addr)).
    pub fn bind(addr: &str) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            stop: Arc::new(AtomicBool::new(false)),
            io_timeout: Duration::from_millis(DEFAULT_IO_TIMEOUT_MS),
        })
    }

    /// Override the per-connection socket timeout (`--timeout-ms`).
    pub fn set_io_timeout(&mut self, timeout: Duration) {
        self.io_timeout = timeout;
    }

    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    pub fn stop_handle(&self) -> io::Result<StopHandle> {
        Ok(StopHandle {
            stop: self.stop.clone(),
            addr: self.local_addr()?,
        })
    }

    /// Accept-and-dispatch loop: one scoped thread per connection, until
    /// the stop handle fires. Handler errors (including panics) become
    /// 500s; oversized requests get 413, malformed ones 400; connection
    /// I/O errors are logged and dropped (the peer is gone anyway).
    pub fn run<H>(&self, handler: H) -> io::Result<()>
    where
        H: Fn(&Request) -> Response + Send + Sync,
    {
        let handler = &handler;
        std::thread::scope(|scope| {
            loop {
                let (mut stream, peer) = match self.listener.accept() {
                    Ok(c) => c,
                    Err(e) => {
                        if self.stop.load(Ordering::SeqCst) {
                            break;
                        }
                        telemetry::log::debug(&format!("accept error: {e}"));
                        continue;
                    }
                };
                if self.stop.load(Ordering::SeqCst) {
                    // The wake-up poke (or a late client); close and exit.
                    break;
                }
                let io_timeout = self.io_timeout;
                scope.spawn(move || {
                    let _ = stream.set_read_timeout(Some(io_timeout));
                    let _ = stream.set_write_timeout(Some(io_timeout));
                    match read_request(&mut stream) {
                        Ok(req) => {
                            // A panicking handler must cost one request,
                            // not the whole accept loop: a panic out of a
                            // scoped thread would propagate from
                            // `thread::scope` and kill the server.
                            let resp = match std::panic::catch_unwind(AssertUnwindSafe(|| {
                                handler(&req)
                            })) {
                                Ok(resp) => resp,
                                Err(payload) => {
                                    telemetry::log::debug(&format!(
                                        "handler panicked on {} {}: {}",
                                        req.method,
                                        req.path,
                                        panic_message(payload.as_ref())
                                    ));
                                    Response::text(500, "internal error: handler panicked\n")
                                }
                            };
                            if let Err(e) = write_response(&mut stream, &resp) {
                                telemetry::log::debug(&format!("write to {peer} failed: {e}"));
                            }
                        }
                        Err(ReadError::Io(e)) => {
                            telemetry::log::debug(&format!("request from {peer} aborted: {e}"));
                        }
                        Err(ReadError::TooLarge(m)) => {
                            telemetry::log::debug(&format!("oversized request from {peer}: {m}"));
                            let resp = Response::text(413, format!("{m}\n"));
                            let _ = write_response(&mut stream, &resp);
                        }
                        Err(ReadError::Malformed(m)) => {
                            telemetry::log::debug(&format!("bad request from {peer}: {m}"));
                            let resp = Response::text(400, format!("bad request: {m}\n"));
                            let _ = write_response(&mut stream, &resp);
                        }
                    }
                });
            }
        });
        Ok(())
    }
}

/// One-shot HTTP client: connect, send, read the full response. Returns
/// `(status, body)`.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
    timeout: Duration,
) -> io::Result<(u16, Vec<u8>)> {
    let (status, _, body) = request_full(addr, method, path, body, timeout)?;
    Ok((status, body))
}

/// A full client-side response: status, headers (names lowercased),
/// body.
pub type FullResponse = (u16, Vec<(String, String)>, Vec<u8>);

/// [`request`], but also returning the response headers (names
/// lowercased) — the router reads `Retry-After` off backend 429s.
pub fn request_full(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
    timeout: Duration,
) -> io::Result<FullResponse> {
    request_with(addr, method, path, &[], body, timeout)
}

/// [`request_full`] with extra request headers — the router stamps
/// `X-Sim-Trace-Id` onto shard sub-requests so one trace id follows a
/// sweep across the whole fleet. Header names/values must be single-line
/// ASCII; callers own that.
pub fn request_with(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    timeout: Duration,
) -> io::Result<FullResponse> {
    request_with_chaos(addr, method, path, headers, body, timeout, None)
}

// ---- deterministic network chaos ----

/// Total milliseconds of injected socket stall *recorded* by the client
/// (never slept, like the cell retry backoff — chaos runs stay fast).
static NET_STALL_RECORDED_MS: AtomicU64 = AtomicU64::new(0);

pub fn net_stall_recorded_ms_total() -> u64 {
    NET_STALL_RECORDED_MS.load(Ordering::Relaxed)
}

/// Scope a network fault plan to one attempt of one request. Rolls are
/// keyed on the request *content* (method, path, body hash) and the
/// attempt number — never on socket addresses or timing — so the chaos a
/// sweep sees is a pure function of the sweep itself: identical at any
/// `SIM_THREADS`, across runs, and across ephemeral-port restarts.
pub fn chaos_attempt_plan(
    base: &FaultPlan,
    method: &str,
    path: &str,
    body: &[u8],
    attempt: u32,
) -> FaultPlan {
    base.derive(&format!("{method} {path}"))
        .derive_u64(fnv1a64(body))
        .derive_u64(attempt as u64 + 1)
}

/// [`request_with`], optionally under a network fault plan already scoped
/// to this attempt (see [`chaos_attempt_plan`]). Injected failures carry
/// the [`sim_faults::TAG`] marker so retry policies can skip real backoff
/// sleeps for them.
pub fn request_with_chaos(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    timeout: Duration,
    chaos: Option<&FaultPlan>,
) -> io::Result<FullResponse> {
    let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    if let Some(plan) = chaos {
        if plan.roll(FaultSite::NetConnectRefused, 0) {
            sim_faults::note(FaultSite::NetConnectRefused);
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("{} connect to {addr} refused", sim_faults::TAG),
            ));
        }
        if plan.roll(FaultSite::NetStall, 0) {
            sim_faults::note(FaultSite::NetStall);
            let ms = plan.uniform(FaultSite::NetStall, 0, 5.0, 80.0) as u64;
            NET_STALL_RECORDED_MS.fetch_add(ms, Ordering::Relaxed);
        }
    }
    let sock_addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| bad("unresolvable address"))?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nContent-Type: application/json\r\nConnection: close\r\n",
        body.len()
    );
    for (k, v) in headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let mut corrupted = false;
    if let Some(plan) = chaos {
        if plan.roll(FaultSite::NetGarbageStatus, 0) {
            sim_faults::note(FaultSite::NetGarbageStatus);
            let n = raw.len().min(12);
            raw[..n].fill(b'#');
            corrupted = true;
        } else if plan.roll(FaultSite::NetTruncatedResponse, 0) && !raw.is_empty() {
            sim_faults::note(FaultSite::NetTruncatedResponse);
            // Cut the stream at a seeded point, always losing at least one
            // byte so the cut never goes unnoticed.
            let frac = plan.uniform(FaultSite::NetTruncatedResponse, 0, 0.0, 0.95);
            let keep = ((raw.len() as f64 * frac) as usize).min(raw.len() - 1);
            raw.truncate(keep);
            corrupted = true;
        }
    }
    match parse_response(&raw) {
        Ok(resp) => Ok(resp),
        Err(e) if corrupted => Err(io::Error::new(e.kind(), format!("{} {e}", sim_faults::TAG))),
        Err(e) => Err(e),
    }
}

/// Parse a raw HTTP/1.1 response: status line, headers (names
/// lowercased), body. The body is validated against `Content-Length` when
/// the header is present — a short read (peer died mid-stream) is an
/// error here rather than a silently partial payload downstream.
fn parse_response(raw: &[u8]) -> io::Result<FullResponse> {
    let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    let head_end = find_head_end(raw).ok_or_else(|| bad("truncated response head"))?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("non-UTF8 head"))?;
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (k, v) = line.split_once(':').ok_or_else(|| bad("bad header"))?;
        headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
    }
    let mut body = raw[head_end + 4..].to_vec();
    if let Some((_, v)) = headers.iter().find(|(k, _)| k == "content-length") {
        let declared: usize = v.parse().map_err(|_| bad("bad content-length"))?;
        if body.len() < declared {
            return Err(bad(&format!(
                "truncated response body: got {} of {declared} bytes",
                body.len()
            )));
        }
        body.truncate(declared);
    }
    Ok((status, headers, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_round_trip() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let stop = server.stop_handle().unwrap();
        let t = std::thread::spawn(move || {
            server.run(|req| match (req.method.as_str(), req.path.as_str()) {
                ("GET", "/healthz") => Response::text(200, "ok\n"),
                ("POST", "/echo") => Response::jsonl(200, req.body.clone()),
                ("GET", "/busy") => Response::text(429, "busy\n").with_header("Retry-After", "1"),
                _ => Response::text(404, "no such route\n"),
            })
        });

        let (st, body) = request(&addr, "GET", "/healthz", b"", Duration::from_secs(5)).unwrap();
        assert_eq!((st, body.as_slice()), (200, b"ok\n".as_slice()));

        let payload = b"{\"x\":1}\n{\"y\":2}\n";
        let (st, body) = request(&addr, "POST", "/echo", payload, Duration::from_secs(5)).unwrap();
        assert_eq!(st, 200);
        assert_eq!(body, payload);

        let (st, _) = request(&addr, "GET", "/busy", b"", Duration::from_secs(5)).unwrap();
        assert_eq!(st, 429);

        let (st, _) = request(&addr, "GET", "/nope", b"", Duration::from_secs(5)).unwrap();
        assert_eq!(st, 404);

        stop.stop();
        t.join().unwrap().unwrap();
    }

    /// `request_with` delivers extra headers to the handler (the trace-id
    /// propagation path).
    #[test]
    fn request_with_sends_extra_headers() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let stop = server.stop_handle().unwrap();
        let t = std::thread::spawn(move || {
            server.run(|req| {
                let id = req.header("X-Sim-Trace-Id").unwrap_or("absent");
                Response::text(200, format!("{id}\n"))
            })
        });
        let (st, _, body) = request_with(
            &addr,
            "GET",
            "/",
            &[("X-Sim-Trace-Id", "00000000deadbeef")],
            b"",
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(st, 200);
        assert_eq!(body, b"00000000deadbeef\n");
        let (st, _, body) = request_full(&addr, "GET", "/", b"", Duration::from_secs(5)).unwrap();
        assert_eq!(st, 200);
        assert_eq!(body, b"absent\n");
        stop.stop();
        t.join().unwrap().unwrap();
    }

    /// A panicking handler answers 500 on that one connection and the
    /// server keeps serving — the doc-promised behaviour that used to
    /// propagate out of `thread::scope` and kill the accept loop.
    #[test]
    fn handler_panic_answers_500_and_server_survives() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let stop = server.stop_handle().unwrap();
        let t = std::thread::spawn(move || {
            server.run(|req| match req.path.as_str() {
                "/boom" => panic!("handler exploded"),
                _ => Response::text(200, "ok\n"),
            })
        });

        for _ in 0..3 {
            let (st, body) = request(&addr, "GET", "/boom", b"", Duration::from_secs(5)).unwrap();
            assert_eq!(st, 500);
            assert!(
                String::from_utf8_lossy(&body).contains("handler panicked"),
                "{body:?}"
            );
            let (st, _) = request(&addr, "GET", "/fine", b"", Duration::from_secs(5)).unwrap();
            assert_eq!(st, 200, "server must survive a handler panic");
        }

        stop.stop();
        t.join().unwrap().unwrap();
    }

    /// Oversized requests are a 413 (distinct from malformed 400): a
    /// declared body over the cap is refused from the Content-Length
    /// header alone, and a head over the cap is refused mid-read.
    #[test]
    fn oversized_requests_get_413_and_malformed_get_400() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let stop = server.stop_handle().unwrap();
        let t = std::thread::spawn(move || server.run(|_| Response::text(200, "ok\n")));

        let raw = |payload: &[u8]| -> (u16, String) {
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            s.write_all(payload).unwrap();
            let mut out = Vec::new();
            s.read_to_end(&mut out).unwrap();
            let text = String::from_utf8_lossy(&out).into_owned();
            let status = text
                .split(' ')
                .nth(1)
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            (status, text)
        };

        // Declared body over MAX_BODY: refused before any body is read.
        let huge = format!(
            "POST /v1/sweep HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let (st, text) = raw(huge.as_bytes());
        assert_eq!(st, 413, "{text}");
        assert!(text.contains("request body too large"), "{text}");

        // Head over MAX_HEAD without a terminating blank line.
        let mut long_head = b"GET / HTTP/1.1\r\n".to_vec();
        long_head.resize(long_head.len() + MAX_HEAD + 16, b'x');
        let (st, text) = raw(&long_head);
        assert_eq!(st, 413, "{text}");
        assert!(text.contains("request head too large"), "{text}");

        // Genuinely malformed requests keep their 400.
        let (st, text) = raw(b"NONSENSE\r\n\r\n");
        assert_eq!(st, 400, "{text}");
        let (st, text) = raw(b"POST / HTTP/1.1\r\nContent-Length: lots\r\n\r\n");
        assert_eq!(st, 400, "{text}");

        // And the server still answers a well-formed request afterwards.
        let a = addr.to_string();
        let (st, _) = request(&a, "GET", "/", b"", Duration::from_secs(5)).unwrap();
        assert_eq!(st, 200);

        stop.stop();
        t.join().unwrap().unwrap();
    }

    #[test]
    fn request_full_exposes_response_headers() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let stop = server.stop_handle().unwrap();
        let t = std::thread::spawn(move || {
            server.run(|_| Response::text(429, "busy\n").with_header("Retry-After", "3"))
        });
        let (st, headers, _) =
            request_full(&addr, "GET", "/", b"", Duration::from_secs(5)).unwrap();
        assert_eq!(st, 429);
        let retry = headers
            .iter()
            .find(|(k, _)| k == "retry-after")
            .map(|(_, v)| v.as_str());
        assert_eq!(retry, Some("3"));
        stop.stop();
        t.join().unwrap().unwrap();
    }

    /// Content-Length is validated client-side: a body shorter than the
    /// declared length is an error, not a silently partial payload.
    #[test]
    fn client_rejects_truncated_response_body() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let t = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = [0u8; 4096];
            let _ = s.read(&mut buf);
            s.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nshort")
                .unwrap();
        });
        let err = request(&addr, "GET", "/", b"", Duration::from_secs(5)).unwrap_err();
        assert!(err.to_string().contains("truncated response body"), "{err}");
        t.join().unwrap();
    }

    fn net_plan(rates: sim_faults::FaultRates) -> FaultPlan {
        FaultPlan::new(9).with_rates(rates)
    }

    /// An injected connect refusal never touches the network and carries
    /// the injected-fault tag, so retry policies skip real sleeps for it.
    #[test]
    fn injected_connect_refusal_is_tagged() {
        let plan = net_plan(sim_faults::FaultRates {
            net_connect_refused: 1.0,
            ..sim_faults::FaultRates::zero()
        });
        let scoped = chaos_attempt_plan(&plan, "POST", "/v1/cells", b"body", 0);
        // Reserved port 1: if the roll failed to fire we would error
        // differently, without the tag.
        let err = request_with_chaos(
            "127.0.0.1:1",
            "POST",
            "/v1/cells",
            &[],
            b"body",
            Duration::from_millis(200),
            Some(&scoped),
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
        assert!(sim_faults::is_injected(&err.to_string()), "{err}");
    }

    /// Garbage status lines and truncated responses hit the wire for real
    /// and surface as tagged parse errors; a stall is recorded, not slept.
    #[test]
    fn injected_corruption_is_tagged_and_stall_is_recorded() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let stop = server.stop_handle().unwrap();
        let t = std::thread::spawn(move || server.run(|_| Response::text(200, "hello world\n")));

        let run = |rates: sim_faults::FaultRates| {
            let scoped = chaos_attempt_plan(&net_plan(rates), "GET", "/", b"", 0);
            request_with_chaos(
                &addr,
                "GET",
                "/",
                &[],
                b"",
                Duration::from_secs(5),
                Some(&scoped),
            )
        };

        let err = run(sim_faults::FaultRates {
            net_garbage_status: 1.0,
            ..sim_faults::FaultRates::zero()
        })
        .unwrap_err();
        assert!(sim_faults::is_injected(&err.to_string()), "{err}");

        let err = run(sim_faults::FaultRates {
            net_truncated_response: 1.0,
            ..sim_faults::FaultRates::zero()
        })
        .unwrap_err();
        assert!(sim_faults::is_injected(&err.to_string()), "{err}");

        let before = net_stall_recorded_ms_total();
        let started = std::time::Instant::now();
        let (st, _, body) = run(sim_faults::FaultRates {
            net_stall: 1.0,
            ..sim_faults::FaultRates::zero()
        })
        .unwrap();
        assert_eq!(st, 200);
        assert_eq!(body, b"hello world\n");
        assert!(net_stall_recorded_ms_total() >= before + 5);
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "stall must be recorded, not slept"
        );

        stop.stop();
        t.join().unwrap().unwrap();
    }

    /// Chaos decisions are keyed on request content and attempt number:
    /// the same request re-rolls per attempt, and a different body makes
    /// independent decisions.
    #[test]
    fn chaos_plans_are_content_and_attempt_scoped() {
        let base = FaultPlan::new(17);
        let a0 = chaos_attempt_plan(&base, "POST", "/v1/cells", b"k1", 0);
        let a0_again = chaos_attempt_plan(&base, "POST", "/v1/cells", b"k1", 0);
        let a1 = chaos_attempt_plan(&base, "POST", "/v1/cells", b"k1", 1);
        let other = chaos_attempt_plan(&base, "POST", "/v1/cells", b"k2", 0);
        assert_eq!(a0, a0_again);
        assert_ne!(a0, a1);
        assert_ne!(a0, other);
    }

    #[test]
    fn concurrent_connections_are_served() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let stop = server.stop_handle().unwrap();
        let t = std::thread::spawn(move || {
            server.run(|req| Response::text(200, format!("len={}\n", req.body.len())))
        });
        std::thread::scope(|s| {
            for i in 0..8usize {
                let addr = addr.clone();
                s.spawn(move || {
                    let body = vec![b'x'; i * 1000];
                    let (st, out) =
                        request(&addr, "POST", "/", &body, Duration::from_secs(5)).unwrap();
                    assert_eq!(st, 200);
                    assert_eq!(out, format!("len={}\n", i * 1000).into_bytes());
                });
            }
        });
        stop.stop();
        t.join().unwrap().unwrap();
    }
}
