//! Minimal HTTP/1.1 plumbing over `std::net` — enough protocol for a
//! localhost experiment service, and nothing more.
//!
//! Server side: [`Server::bind`] + [`Server::run`] accept loop, one
//! handler thread per connection (scoped, so the handler may borrow the
//! engine), `Connection: close` semantics, bounded header/body sizes and
//! a read timeout so one stuck client cannot wedge an acceptor thread
//! forever. Client side: [`request`], a one-shot request helper used by
//! `harness submit` and the end-to-end tests.

use crate::panic_message;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Maximum accepted size of the request head (request line + headers).
const MAX_HEAD: usize = 16 * 1024;
/// Maximum accepted request body size.
const MAX_BODY: usize = 16 * 1024 * 1024;
/// Per-connection socket timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path with query string, verbatim (e.g. `/v1/cell/abc123`).
    pub path: String,
    /// Header names lowercased.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One response to send.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
    /// Extra headers (e.g. `Retry-After` on 429).
    pub extra_headers: Vec<(String, String)>,
}

impl Response {
    pub fn new(status: u16, content_type: &'static str, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type,
            body: body.into(),
            extra_headers: Vec::new(),
        }
    }

    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response::new(status, "text/plain; charset=utf-8", body)
    }

    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response::new(status, "application/json", body)
    }

    pub fn jsonl(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response::new(status, "application/jsonl", body)
    }

    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.extra_headers.push((name.into(), value.into()));
        self
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }
}

/// Why [`read_request`] could not produce a request — each variant maps
/// to a different answer on the wire.
#[derive(Debug)]
pub enum ReadError {
    /// Head or declared body exceeds the configured caps → 413.
    TooLarge(String),
    /// Syntactically broken request → 400.
    Malformed(String),
    /// Transport failure (peer gone, timeout): nothing left to answer.
    Io(io::Error),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::TooLarge(m) | ReadError::Malformed(m) => f.write_str(m),
            ReadError::Io(e) => e.fmt(f),
        }
    }
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> ReadError {
        ReadError::Io(e)
    }
}

/// Read and parse one request from a stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ReadError> {
    let bad = |m: &str| ReadError::Malformed(m.to_string());
    // Read until the blank line ending the head.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(p) = find_head_end(&buf) {
            break p;
        }
        if buf.len() > MAX_HEAD {
            return Err(ReadError::TooLarge("request head too large".into()));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ReadError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-request",
            )));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| bad("non-UTF8 head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or_else(|| bad("empty request"))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .ok_or_else(|| bad("bad request line"))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| bad("bad request line"))?
        .to_string();
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (k, v) = line.split_once(':').ok_or_else(|| bad("bad header"))?;
        headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
    }
    let req = Request {
        method,
        path,
        headers,
        body: Vec::new(),
    };
    let len: usize = match req.header("content-length") {
        Some(v) => v.parse().map_err(|_| bad("bad content-length"))?,
        None => 0,
    };
    if len > MAX_BODY {
        return Err(ReadError::TooLarge("request body too large".into()));
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < len {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ReadError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-body",
            )));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(len);
    Ok(Request { body, ..req })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Serialize and send one response.
pub fn write_response(stream: &mut TcpStream, resp: &Response) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        resp.status,
        resp.reason(),
        resp.content_type,
        resp.body.len()
    );
    for (k, v) in &resp.extra_headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

/// Handle to stop a running [`Server`] from another thread (or from a
/// handler, e.g. a shutdown endpoint).
#[derive(Clone)]
pub struct StopHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl StopHandle {
    /// Request shutdown. Idempotent; pokes the acceptor awake.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // The acceptor blocks in accept(); a throwaway connection wakes it
        // so it can observe the flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }

    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

/// A bound listener plus its stop flag.
pub struct Server {
    listener: TcpListener,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Bind (use port 0 for an ephemeral port; read it back with
    /// [`local_addr`](Self::local_addr)).
    pub fn bind(addr: &str) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    pub fn stop_handle(&self) -> io::Result<StopHandle> {
        Ok(StopHandle {
            stop: self.stop.clone(),
            addr: self.local_addr()?,
        })
    }

    /// Accept-and-dispatch loop: one scoped thread per connection, until
    /// the stop handle fires. Handler errors (including panics) become
    /// 500s; oversized requests get 413, malformed ones 400; connection
    /// I/O errors are logged and dropped (the peer is gone anyway).
    pub fn run<H>(&self, handler: H) -> io::Result<()>
    where
        H: Fn(&Request) -> Response + Send + Sync,
    {
        let handler = &handler;
        std::thread::scope(|scope| {
            loop {
                let (mut stream, peer) = match self.listener.accept() {
                    Ok(c) => c,
                    Err(e) => {
                        if self.stop.load(Ordering::SeqCst) {
                            break;
                        }
                        telemetry::log::debug(&format!("accept error: {e}"));
                        continue;
                    }
                };
                if self.stop.load(Ordering::SeqCst) {
                    // The wake-up poke (or a late client); close and exit.
                    break;
                }
                scope.spawn(move || {
                    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
                    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
                    match read_request(&mut stream) {
                        Ok(req) => {
                            // A panicking handler must cost one request,
                            // not the whole accept loop: a panic out of a
                            // scoped thread would propagate from
                            // `thread::scope` and kill the server.
                            let resp = match std::panic::catch_unwind(AssertUnwindSafe(|| {
                                handler(&req)
                            })) {
                                Ok(resp) => resp,
                                Err(payload) => {
                                    telemetry::log::debug(&format!(
                                        "handler panicked on {} {}: {}",
                                        req.method,
                                        req.path,
                                        panic_message(payload.as_ref())
                                    ));
                                    Response::text(500, "internal error: handler panicked\n")
                                }
                            };
                            if let Err(e) = write_response(&mut stream, &resp) {
                                telemetry::log::debug(&format!("write to {peer} failed: {e}"));
                            }
                        }
                        Err(ReadError::Io(e)) => {
                            telemetry::log::debug(&format!("request from {peer} aborted: {e}"));
                        }
                        Err(ReadError::TooLarge(m)) => {
                            telemetry::log::debug(&format!("oversized request from {peer}: {m}"));
                            let resp = Response::text(413, format!("{m}\n"));
                            let _ = write_response(&mut stream, &resp);
                        }
                        Err(ReadError::Malformed(m)) => {
                            telemetry::log::debug(&format!("bad request from {peer}: {m}"));
                            let resp = Response::text(400, format!("bad request: {m}\n"));
                            let _ = write_response(&mut stream, &resp);
                        }
                    }
                });
            }
        });
        Ok(())
    }
}

/// One-shot HTTP client: connect, send, read the full response. Returns
/// `(status, body)`.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
    timeout: Duration,
) -> io::Result<(u16, Vec<u8>)> {
    let (status, _, body) = request_full(addr, method, path, body, timeout)?;
    Ok((status, body))
}

/// A full client-side response: status, headers (names lowercased),
/// body.
pub type FullResponse = (u16, Vec<(String, String)>, Vec<u8>);

/// [`request`], but also returning the response headers (names
/// lowercased) — the router reads `Retry-After` off backend 429s.
pub fn request_full(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
    timeout: Duration,
) -> io::Result<FullResponse> {
    request_with(addr, method, path, &[], body, timeout)
}

/// [`request_full`] with extra request headers — the router stamps
/// `X-Sim-Trace-Id` onto shard sub-requests so one trace id follows a
/// sweep across the whole fleet. Header names/values must be single-line
/// ASCII; callers own that.
pub fn request_with(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    timeout: Duration,
) -> io::Result<FullResponse> {
    let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    let sock_addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| bad("unresolvable address"))?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nContent-Type: application/json\r\nConnection: close\r\n",
        body.len()
    );
    for (k, v) in headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let head_end = find_head_end(&raw).ok_or_else(|| bad("truncated response head"))?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("non-UTF8 head"))?;
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (k, v) = line.split_once(':').ok_or_else(|| bad("bad header"))?;
        headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
    }
    Ok((status, headers, raw[head_end + 4..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_round_trip() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let stop = server.stop_handle().unwrap();
        let t = std::thread::spawn(move || {
            server.run(|req| match (req.method.as_str(), req.path.as_str()) {
                ("GET", "/healthz") => Response::text(200, "ok\n"),
                ("POST", "/echo") => Response::jsonl(200, req.body.clone()),
                ("GET", "/busy") => Response::text(429, "busy\n").with_header("Retry-After", "1"),
                _ => Response::text(404, "no such route\n"),
            })
        });

        let (st, body) = request(&addr, "GET", "/healthz", b"", Duration::from_secs(5)).unwrap();
        assert_eq!((st, body.as_slice()), (200, b"ok\n".as_slice()));

        let payload = b"{\"x\":1}\n{\"y\":2}\n";
        let (st, body) = request(&addr, "POST", "/echo", payload, Duration::from_secs(5)).unwrap();
        assert_eq!(st, 200);
        assert_eq!(body, payload);

        let (st, _) = request(&addr, "GET", "/busy", b"", Duration::from_secs(5)).unwrap();
        assert_eq!(st, 429);

        let (st, _) = request(&addr, "GET", "/nope", b"", Duration::from_secs(5)).unwrap();
        assert_eq!(st, 404);

        stop.stop();
        t.join().unwrap().unwrap();
    }

    /// `request_with` delivers extra headers to the handler (the trace-id
    /// propagation path).
    #[test]
    fn request_with_sends_extra_headers() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let stop = server.stop_handle().unwrap();
        let t = std::thread::spawn(move || {
            server.run(|req| {
                let id = req.header("X-Sim-Trace-Id").unwrap_or("absent");
                Response::text(200, format!("{id}\n"))
            })
        });
        let (st, _, body) = request_with(
            &addr,
            "GET",
            "/",
            &[("X-Sim-Trace-Id", "00000000deadbeef")],
            b"",
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(st, 200);
        assert_eq!(body, b"00000000deadbeef\n");
        let (st, _, body) = request_full(&addr, "GET", "/", b"", Duration::from_secs(5)).unwrap();
        assert_eq!(st, 200);
        assert_eq!(body, b"absent\n");
        stop.stop();
        t.join().unwrap().unwrap();
    }

    /// A panicking handler answers 500 on that one connection and the
    /// server keeps serving — the doc-promised behaviour that used to
    /// propagate out of `thread::scope` and kill the accept loop.
    #[test]
    fn handler_panic_answers_500_and_server_survives() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let stop = server.stop_handle().unwrap();
        let t = std::thread::spawn(move || {
            server.run(|req| match req.path.as_str() {
                "/boom" => panic!("handler exploded"),
                _ => Response::text(200, "ok\n"),
            })
        });

        for _ in 0..3 {
            let (st, body) = request(&addr, "GET", "/boom", b"", Duration::from_secs(5)).unwrap();
            assert_eq!(st, 500);
            assert!(
                String::from_utf8_lossy(&body).contains("handler panicked"),
                "{body:?}"
            );
            let (st, _) = request(&addr, "GET", "/fine", b"", Duration::from_secs(5)).unwrap();
            assert_eq!(st, 200, "server must survive a handler panic");
        }

        stop.stop();
        t.join().unwrap().unwrap();
    }

    /// Oversized requests are a 413 (distinct from malformed 400): a
    /// declared body over the cap is refused from the Content-Length
    /// header alone, and a head over the cap is refused mid-read.
    #[test]
    fn oversized_requests_get_413_and_malformed_get_400() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let stop = server.stop_handle().unwrap();
        let t = std::thread::spawn(move || server.run(|_| Response::text(200, "ok\n")));

        let raw = |payload: &[u8]| -> (u16, String) {
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            s.write_all(payload).unwrap();
            let mut out = Vec::new();
            s.read_to_end(&mut out).unwrap();
            let text = String::from_utf8_lossy(&out).into_owned();
            let status = text
                .split(' ')
                .nth(1)
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            (status, text)
        };

        // Declared body over MAX_BODY: refused before any body is read.
        let huge = format!(
            "POST /v1/sweep HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let (st, text) = raw(huge.as_bytes());
        assert_eq!(st, 413, "{text}");
        assert!(text.contains("request body too large"), "{text}");

        // Head over MAX_HEAD without a terminating blank line.
        let mut long_head = b"GET / HTTP/1.1\r\n".to_vec();
        long_head.resize(long_head.len() + MAX_HEAD + 16, b'x');
        let (st, text) = raw(&long_head);
        assert_eq!(st, 413, "{text}");
        assert!(text.contains("request head too large"), "{text}");

        // Genuinely malformed requests keep their 400.
        let (st, text) = raw(b"NONSENSE\r\n\r\n");
        assert_eq!(st, 400, "{text}");
        let (st, text) = raw(b"POST / HTTP/1.1\r\nContent-Length: lots\r\n\r\n");
        assert_eq!(st, 400, "{text}");

        // And the server still answers a well-formed request afterwards.
        let a = addr.to_string();
        let (st, _) = request(&a, "GET", "/", b"", Duration::from_secs(5)).unwrap();
        assert_eq!(st, 200);

        stop.stop();
        t.join().unwrap().unwrap();
    }

    #[test]
    fn request_full_exposes_response_headers() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let stop = server.stop_handle().unwrap();
        let t = std::thread::spawn(move || {
            server.run(|_| Response::text(429, "busy\n").with_header("Retry-After", "3"))
        });
        let (st, headers, _) =
            request_full(&addr, "GET", "/", b"", Duration::from_secs(5)).unwrap();
        assert_eq!(st, 429);
        let retry = headers
            .iter()
            .find(|(k, _)| k == "retry-after")
            .map(|(_, v)| v.as_str());
        assert_eq!(retry, Some("3"));
        stop.stop();
        t.join().unwrap().unwrap();
    }

    #[test]
    fn concurrent_connections_are_served() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let stop = server.stop_handle().unwrap();
        let t = std::thread::spawn(move || {
            server.run(|req| Response::text(200, format!("len={}\n", req.body.len())))
        });
        std::thread::scope(|s| {
            for i in 0..8usize {
                let addr = addr.clone();
                s.spawn(move || {
                    let body = vec![b'x'; i * 1000];
                    let (st, out) =
                        request(&addr, "POST", "/", &body, Duration::from_secs(5)).unwrap();
                    assert_eq!(st, 200);
                    assert_eq!(out, format!("len={}\n", i * 1000).into_bytes());
                });
            }
        });
        stop.stop();
        t.join().unwrap().unwrap();
    }
}
