//! Minimal HTTP/1.1 plumbing over `std::net` — enough protocol for a
//! localhost experiment service, and nothing more.
//!
//! Server side: [`Server::bind`] + [`Server::run`], a std-only
//! non-blocking event loop. One reactor thread owns every socket: it
//! accepts from a non-blocking listener and advances per-connection
//! state machines (reading-head → reading-body → handling → writing,
//! see [`ConnState`]) as bytes become available, so a slowloris peer
//! trickling one byte per tick costs an idle state machine instead of a
//! wedged thread, and one process can hold thousands of open
//! connections. Complete requests are handed to a fixed pool of
//! `--workers` handler threads through a two-lane priority queue:
//! interactive traffic (cell lookups, probes, small sweeps — see
//! [`classify_lane`]) is drained before bulk full-grid work, and a bulk
//! request that has waited [`LANE_AGING_ROUNDS`] dispatch rounds is
//! promoted so bulk is never starved. `Connection: close` semantics,
//! bounded header/body sizes, and an idle-progress deadline per
//! connection. Client side: [`request`], a one-shot request helper used
//! by `harness submit` and the end-to-end tests.
//!
//! The client can also carry a deterministic network [`FaultPlan`]
//! ([`request_with_chaos`]): connect refusal, recorded (never slept)
//! stalls, truncated responses and garbage status lines are rolled as
//! pure functions of the request *content* and attempt number, so a
//! chaotic routed sweep makes identical fault decisions at any
//! `SIM_THREADS` and across runs with ephemeral ports.

use crate::key::fnv1a64;
use crate::panic_message;
use crate::scheduler::Lane;
use sim_faults::{FaultPlan, FaultSite};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use telemetry::LatencyHistogram;

/// Maximum accepted size of the request head (request line + headers).
const MAX_HEAD: usize = 16 * 1024;
/// Maximum accepted request body size.
const MAX_BODY: usize = 16 * 1024 * 1024;

// ---- timeout defaults ----
//
// Every timeout the serving stack uses defaults here, in one place; the
// CLI's `--timeout-ms` overrides the per-request one.

/// Default client request timeout (ms): a full-grid sweep simulates many
/// cells, so the data-plane default is generous.
pub const DEFAULT_TIMEOUT_MS: u64 = 600_000;
/// Default timeout (ms) for cheap control-plane probes (`/healthz`).
pub const DEFAULT_PROBE_TIMEOUT_MS: u64 = 10_000;
/// Default per-connection server socket timeout (ms): a connection that
/// makes no byte progress for this long while reading or writing is
/// closed (connections parked in a handler are exempt — the scheduler's
/// wait deadline covers those).
pub const DEFAULT_IO_TIMEOUT_MS: u64 = 30_000;
/// Timeout for the stop handle's wake-up poke to the acceptor.
const STOP_POKE_TIMEOUT: Duration = Duration::from_secs(1);

// ---- event-loop tuning ----

/// Default number of handler worker threads (`--workers`).
pub const DEFAULT_WORKERS: usize = 4;
/// Default interactive-lane budget (`--priority-cells`): sweep bodies
/// naming at most this many cells ride the interactive lane.
pub const DEFAULT_PRIORITY_CELLS: usize = 8;
/// A bulk request that has waited this many dispatch rounds (one round =
/// one job handed to a worker) is promoted past the interactive lane.
pub const LANE_AGING_ROUNDS: u64 = 8;
/// Reactor idle sleep cap: with no readable socket the poll loop backs
/// off to at most this long per tick.
const IDLE_TICK_CAP: Duration = Duration::from_millis(1);
/// Cap on the per-connection read-poll backoff exponent: an idle reader
/// is polled at most every `2^REACTOR_BACKOFF_MAX` ticks.
const REACTOR_BACKOFF_MAX: u32 = 6;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path with query string, verbatim (e.g. `/v1/cell/abc123`).
    pub path: String,
    /// Header names lowercased.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One response to send.
#[derive(Debug)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
    /// Extra headers (e.g. `Retry-After` on 429).
    pub extra_headers: Vec<(String, String)>,
}

impl Response {
    pub fn new(status: u16, content_type: &'static str, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type,
            body: body.into(),
            extra_headers: Vec::new(),
        }
    }

    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response::new(status, "text/plain; charset=utf-8", body)
    }

    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response::new(status, "application/json", body)
    }

    pub fn jsonl(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response::new(status, "application/jsonl", body)
    }

    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.extra_headers.push((name.into(), value.into()));
        self
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }
}

/// Why the request parser could not produce a request — each variant
/// maps to a different answer on the wire.
#[derive(Debug)]
pub enum ReadError {
    /// Head or declared body exceeds the configured caps → 413.
    TooLarge(String),
    /// Syntactically broken request → 400.
    Malformed(String),
    /// Transport failure (peer gone, timeout): nothing left to answer.
    Io(io::Error),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::TooLarge(m) | ReadError::Malformed(m) => f.write_str(m),
            ReadError::Io(e) => e.fmt(f),
        }
    }
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> ReadError {
        ReadError::Io(e)
    }
}

/// Resolve `Content-Length` strictly: absent is `None`, repeated but
/// *equal* values collapse to one (proxies re-stamp the header), and
/// conflicting duplicates are an error — the classic request-smuggling
/// ambiguity, where "take the first match" silently picks a side. Used
/// by the server-side parser (answers 400) and the client-side
/// [`parse_response`] alike.
fn content_length_of(headers: &[(String, String)]) -> Result<Option<usize>, String> {
    let mut declared: Option<usize> = None;
    for (k, v) in headers {
        if k != "content-length" {
            continue;
        }
        let n: usize = v
            .trim()
            .parse()
            .map_err(|_| "bad content-length".to_string())?;
        match declared {
            Some(prev) if prev != n => {
                return Err(format!("conflicting content-length headers: {prev} vs {n}"));
            }
            _ => declared = Some(n),
        }
    }
    Ok(declared)
}

/// Parse the request head (request line + headers); the body is read
/// separately by the connection state machine.
fn parse_head(head: &[u8]) -> Result<Request, ReadError> {
    let bad = |m: &str| ReadError::Malformed(m.to_string());
    let head = std::str::from_utf8(head).map_err(|_| bad("non-UTF8 head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or_else(|| bad("empty request"))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .ok_or_else(|| bad("bad request line"))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| bad("bad request line"))?
        .to_string();
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (k, v) = line.split_once(':').ok_or_else(|| bad("bad header"))?;
        headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
    }
    Ok(Request {
        method,
        path,
        headers,
        body: Vec::new(),
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Serialize one response to its wire bytes.
fn encode_response(resp: &Response) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        resp.status,
        resp.reason(),
        resp.content_type,
        resp.body.len()
    );
    for (k, v) in &resp.extra_headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(&resp.body);
    out
}

/// Serialize and send one response over a blocking stream.
pub fn write_response(stream: &mut TcpStream, resp: &Response) -> io::Result<()> {
    stream.write_all(&encode_response(resp))?;
    stream.flush()
}

// ---- priority lanes ----

/// Classify a request into a dispatch [`Lane`]. Only the sweep endpoints
/// can be bulk: a body asking for the full grid (`"cells":"all"`) or
/// naming more than `priority_cells` cells rides the bulk lane behind
/// interactive traffic. Everything else — `/v1/cell`, health and metrics
/// probes, small sweeps — is interactive. The cell count is a cheap
/// syntactic estimate (occurrences of the `"bench"` key), deliberately
/// computed without a JSON parse so classification is O(body) on the
/// reactor thread; handlers still parse and validate for real.
pub fn classify_lane(req: &Request, priority_cells: usize) -> Lane {
    if req.method != "POST" || !matches!(req.path.as_str(), "/v1/sweep" | "/v1/cells") {
        return Lane::Interactive;
    }
    if find_subslice(&req.body, b"\"cells\":\"all\"").is_some()
        || find_subslice(&req.body, b"\"cells\": \"all\"").is_some()
    {
        return Lane::Bulk;
    }
    if count_occurrences(&req.body, b"\"bench\"") <= priority_cells {
        Lane::Interactive
    } else {
        Lane::Bulk
    }
}

fn find_subslice(hay: &[u8], needle: &[u8]) -> Option<usize> {
    hay.windows(needle.len()).position(|w| w == needle)
}

fn count_occurrences(hay: &[u8], needle: &[u8]) -> usize {
    if hay.len() < needle.len() {
        return 0;
    }
    hay.windows(needle.len()).filter(|w| *w == needle).count()
}

/// Per-lane dispatch telemetry, shared between the reactor (enqueue),
/// the workers (dispatch) and the `/metrics` page (snapshot).
#[derive(Default)]
pub struct LaneMetrics {
    inner: Mutex<LaneCounters>,
}

#[derive(Default)]
struct LaneCounters {
    depth: [u64; 2],
    dispatched: [u64; 2],
    promoted_bulk: u64,
    wait: [LatencyHistogram; 2],
}

/// Point-in-time copy of [`LaneMetrics`] for rendering.
#[derive(Clone, Debug, Default)]
pub struct LaneSnapshot {
    pub interactive_depth: u64,
    pub bulk_depth: u64,
    pub dispatched_interactive: u64,
    pub dispatched_bulk: u64,
    pub promoted_bulk: u64,
    pub wait_interactive: LatencyHistogram,
    pub wait_bulk: LatencyHistogram,
}

impl LaneMetrics {
    fn lock(&self) -> MutexGuard<'_, LaneCounters> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn on_enqueue(&self, lane: Lane) {
        self.lock().depth[lane.index()] += 1;
    }

    fn on_dispatch(&self, lane: Lane, waited_us: u64, promoted: bool) {
        let mut c = self.lock();
        let i = lane.index();
        c.depth[i] = c.depth[i].saturating_sub(1);
        c.dispatched[i] += 1;
        if promoted {
            c.promoted_bulk += 1;
        }
        c.wait[i].record_us(waited_us);
    }

    pub fn snapshot(&self) -> LaneSnapshot {
        let c = self.lock();
        LaneSnapshot {
            interactive_depth: c.depth[Lane::Interactive.index()],
            bulk_depth: c.depth[Lane::Bulk.index()],
            dispatched_interactive: c.dispatched[Lane::Interactive.index()],
            dispatched_bulk: c.dispatched[Lane::Bulk.index()],
            promoted_bulk: c.promoted_bulk,
            wait_interactive: c.wait[Lane::Interactive.index()].clone(),
            wait_bulk: c.wait[Lane::Bulk.index()].clone(),
        }
    }
}

// ---- dispatch queue ----

/// A complete request waiting for a worker.
struct PendingJob {
    /// Connection slot to deliver the response to.
    token: usize,
    req: Request,
    lane: Lane,
    enqueued: Instant,
    /// Dispatch-round counter at enqueue time — the aging clock.
    round: u64,
}

#[derive(Default)]
struct DispatchState {
    hi: VecDeque<PendingJob>,
    lo: VecDeque<PendingJob>,
    /// Jobs handed to workers so far; one pick = one round.
    rounds: u64,
    stop: bool,
}

impl DispatchState {
    fn push(&mut self, mut job: PendingJob) {
        job.round = self.rounds;
        match job.lane {
            Lane::Interactive => self.hi.push_back(job),
            Lane::Bulk => self.lo.push_back(job),
        }
    }

    /// Next job for a worker: interactive first, bulk otherwise — unless
    /// the oldest bulk job has waited [`LANE_AGING_ROUNDS`] rounds, in
    /// which case it is promoted past the interactive lane. Returns the
    /// job and whether this pick was an aging promotion (i.e. it
    /// overtook queued interactive work).
    fn pick(&mut self) -> Option<(PendingJob, bool)> {
        let aged = self
            .lo
            .front()
            .is_some_and(|j| self.rounds.saturating_sub(j.round) >= LANE_AGING_ROUNDS);
        let (job, promoted) = if aged {
            (self.lo.pop_front(), !self.hi.is_empty())
        } else if let Some(job) = self.hi.pop_front() {
            (Some(job), false)
        } else {
            (self.lo.pop_front(), false)
        };
        let job = job?;
        self.rounds += 1;
        Some((job, promoted))
    }
}

struct Dispatch {
    st: Mutex<DispatchState>,
    cv: Condvar,
}

fn worker_loop<H>(
    dispatch: &Dispatch,
    completions: &Mutex<Vec<(usize, Response)>>,
    lanes: &LaneMetrics,
    handler: &H,
) where
    H: Fn(&Request) -> Response + Send + Sync,
{
    loop {
        let picked = {
            let mut st = dispatch.st.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(p) = st.pick() {
                    break Some(p);
                }
                if st.stop {
                    break None;
                }
                st = dispatch.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some((job, promoted)) = picked else {
            return;
        };
        let waited_us = u64::try_from(job.enqueued.elapsed().as_micros()).unwrap_or(u64::MAX);
        lanes.on_dispatch(job.lane, waited_us, promoted);
        // A panicking handler must cost one request, not the whole pool:
        // a panic out of a scoped worker would propagate from
        // `thread::scope` and kill the server.
        let resp = match std::panic::catch_unwind(AssertUnwindSafe(|| handler(&job.req))) {
            Ok(resp) => resp,
            Err(payload) => {
                telemetry::log::debug(&format!(
                    "handler panicked on {} {}: {}",
                    job.req.method,
                    job.req.path,
                    panic_message(payload.as_ref())
                ));
                Response::text(500, "internal error: handler panicked\n")
            }
        };
        completions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((job.token, resp));
    }
}

// ---- connection state machine ----

/// Per-connection state. `Reading` accumulates bytes until a full
/// request parses out; `Handling` means a worker owns the request and
/// the reactor leaves the socket alone; `Writing` drains the encoded
/// response, then closes (`Connection: close`).
enum ConnState {
    Reading {
        buf: Vec<u8>,
        head: Option<PartialHead>,
    },
    Handling,
    Writing {
        buf: Vec<u8>,
        off: usize,
    },
}

/// A parsed head whose declared body has not fully arrived yet.
struct PartialHead {
    req: Request,
    /// Offset of the first body byte in the connection buffer.
    body_start: usize,
    /// Total request size: head + CRLFCRLF + declared body.
    total: usize,
}

struct Conn {
    stream: TcpStream,
    state: ConnState,
    /// Last byte progress on this socket — the idle deadline clock.
    last_activity: Instant,
    /// Read-poll backoff exponent (consecutive empty polls).
    backoff: u32,
    /// Ticks left before this connection is polled again.
    skip: u32,
}

/// Outcome of advancing one connection by one poll.
enum IoStep {
    /// Nothing readable/writable right now.
    Idle,
    /// Bytes moved or state changed, but the request/response is not
    /// done.
    Progress,
    /// A complete request parsed out; hand it to the dispatch queue.
    Dispatch(Request),
    /// Connection finished (response fully written, peer gone, or a
    /// transport error).
    Close,
}

/// Try to complete a request from buffered bytes: parse the head once
/// the terminator arrives, then wait for the declared body. Pure —
/// no I/O.
fn advance_parse(
    buf: &mut Vec<u8>,
    head: &mut Option<PartialHead>,
) -> Result<Option<Request>, ReadError> {
    if head.is_none() {
        let Some(end) = find_head_end(buf) else {
            if buf.len() > MAX_HEAD {
                return Err(ReadError::TooLarge("request head too large".into()));
            }
            return Ok(None);
        };
        if end > MAX_HEAD {
            return Err(ReadError::TooLarge("request head too large".into()));
        }
        let req = parse_head(&buf[..end])?;
        let len = content_length_of(&req.headers)
            .map_err(ReadError::Malformed)?
            .unwrap_or(0);
        if len > MAX_BODY {
            return Err(ReadError::TooLarge("request body too large".into()));
        }
        *head = Some(PartialHead {
            req,
            body_start: end + 4,
            total: end + 4 + len,
        });
    }
    let total = head.as_ref().map(|h| h.total).unwrap_or(0);
    if buf.len() < total {
        return Ok(None);
    }
    let ph = head.take().expect("head parsed above");
    let mut body = std::mem::take(buf);
    body.truncate(ph.total);
    let body = body.split_off(ph.body_start);
    Ok(Some(Request { body, ..ph.req }))
}

/// Drain readable bytes into the connection buffer and advance the
/// parser. Oversized/malformed requests flip the connection straight to
/// writing a 413/400.
fn step_reading(conn: &mut Conn) -> IoStep {
    let mut chunk = [0u8; 4096];
    let mut moved = false;
    loop {
        let ConnState::Reading { buf, head } = &mut conn.state else {
            return IoStep::Progress;
        };
        match conn.stream.read(&mut chunk) {
            Ok(0) => return IoStep::Close, // peer closed before a full request
            Ok(n) => {
                moved = true;
                buf.extend_from_slice(&chunk[..n]);
                match advance_parse(buf, head) {
                    Ok(Some(req)) => return IoStep::Dispatch(req),
                    Ok(None) => {}
                    Err(ReadError::TooLarge(m)) => {
                        telemetry::log::debug(&format!("oversized request: {m}"));
                        let resp = Response::text(413, format!("{m}\n"));
                        conn.state = ConnState::Writing {
                            buf: encode_response(&resp),
                            off: 0,
                        };
                        return IoStep::Progress;
                    }
                    Err(ReadError::Malformed(m)) => {
                        telemetry::log::debug(&format!("bad request: {m}"));
                        let resp = Response::text(400, format!("bad request: {m}\n"));
                        conn.state = ConnState::Writing {
                            buf: encode_response(&resp),
                            off: 0,
                        };
                        return IoStep::Progress;
                    }
                    Err(ReadError::Io(_)) => unreachable!("advance_parse does no I/O"),
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                return if moved {
                    IoStep::Progress
                } else {
                    IoStep::Idle
                };
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                telemetry::log::debug(&format!("read failed: {e}"));
                return IoStep::Close;
            }
        }
    }
}

/// Push response bytes out; on completion, close politely (shut down our
/// write side and swallow any bytes the peer still had in flight, so the
/// close is an orderly FIN rather than an RST racing the response).
fn step_writing(conn: &mut Conn) -> IoStep {
    let mut moved = false;
    loop {
        let ConnState::Writing { buf, off } = &mut conn.state else {
            return IoStep::Progress;
        };
        if *off >= buf.len() {
            let _ = conn.stream.flush();
            let _ = conn.stream.shutdown(Shutdown::Write);
            let mut sink = [0u8; 1024];
            while matches!(conn.stream.read(&mut sink), Ok(n) if n > 0) {}
            return IoStep::Close;
        }
        match conn.stream.write(&buf[*off..]) {
            Ok(0) => return IoStep::Close,
            Ok(n) => {
                *off += n;
                moved = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                return if moved {
                    IoStep::Progress
                } else {
                    IoStep::Idle
                };
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                telemetry::log::debug(&format!("write failed: {e}"));
                return IoStep::Close;
            }
        }
    }
}

/// Handle to stop a running [`Server`] from another thread (or from a
/// handler, e.g. a shutdown endpoint).
#[derive(Clone)]
pub struct StopHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl StopHandle {
    /// Request shutdown. Idempotent; pokes the reactor awake.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // The reactor notices the flag within one idle tick; the
        // throwaway connection just shortens the wait.
        let _ = TcpStream::connect_timeout(&self.addr, STOP_POKE_TIMEOUT);
    }

    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

/// A bound listener plus its stop flag and event-loop tuning.
pub struct Server {
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    io_timeout: Duration,
    workers: usize,
    priority_cells: usize,
    lanes: Arc<LaneMetrics>,
}

impl Server {
    /// Bind (use port 0 for an ephemeral port; read it back with
    /// [`local_addr`](Self::local_addr)).
    pub fn bind(addr: &str) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            stop: Arc::new(AtomicBool::new(false)),
            io_timeout: Duration::from_millis(DEFAULT_IO_TIMEOUT_MS),
            workers: DEFAULT_WORKERS,
            priority_cells: DEFAULT_PRIORITY_CELLS,
            lanes: Arc::new(LaneMetrics::default()),
        })
    }

    /// Override the per-connection idle-progress deadline
    /// (`--timeout-ms`).
    pub fn set_io_timeout(&mut self, timeout: Duration) {
        self.io_timeout = timeout;
    }

    /// Override the handler worker-pool size (`--workers`); clamped to
    /// at least one.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// Override the interactive-lane cell budget (`--priority-cells`).
    pub fn set_priority_cells(&mut self, cells: usize) {
        self.priority_cells = cells;
    }

    /// Shared per-lane dispatch telemetry, for a `/metrics` page.
    pub fn lane_metrics(&self) -> Arc<LaneMetrics> {
        self.lanes.clone()
    }

    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    pub fn stop_handle(&self) -> io::Result<StopHandle> {
        Ok(StopHandle {
            stop: self.stop.clone(),
            addr: self.local_addr()?,
        })
    }

    /// Run the event loop until the stop handle fires: a reactor thread
    /// polls every socket and a fixed pool of worker threads runs the
    /// handler (scoped, so the handler may borrow the engine). Handler
    /// panics become 500s; oversized requests get 413, malformed ones
    /// 400; connection I/O errors are logged and dropped (the peer is
    /// gone anyway). On stop, in-flight requests drain before return.
    pub fn run<H>(&self, handler: H) -> io::Result<()>
    where
        H: Fn(&Request) -> Response + Send + Sync,
    {
        self.listener.set_nonblocking(true)?;
        let dispatch = Dispatch {
            st: Mutex::new(DispatchState::default()),
            cv: Condvar::new(),
        };
        let completions: Mutex<Vec<(usize, Response)>> = Mutex::new(Vec::new());
        let handler = &handler;
        let dispatch = &dispatch;
        let completions = &completions;
        std::thread::scope(|scope| {
            for _ in 0..self.workers.max(1) {
                let lanes = &*self.lanes;
                scope.spawn(move || worker_loop(dispatch, completions, lanes, handler));
            }
            self.reactor(dispatch, completions);
            // Reactor exited ⇒ every dispatched request has completed;
            // release the (now idle) workers.
            dispatch.st.lock().unwrap_or_else(|e| e.into_inner()).stop = true;
            dispatch.cv.notify_all();
        });
        Ok(())
    }

    /// The readiness-polling loop. Owns all connection state; never
    /// blocks on any one socket.
    fn reactor(&self, dispatch: &Dispatch, completions: &Mutex<Vec<(usize, Response)>>) {
        let mut conns: Vec<Option<Conn>> = Vec::new();
        let mut free: Vec<usize> = Vec::new();
        // Connections currently owned by a worker; their tokens stay
        // reserved until the response comes back, so slot reuse can
        // never misdeliver a completion.
        let mut handling: usize = 0;
        let mut draining = false;
        let mut idle_ticks: u32 = 0;
        loop {
            let mut progress = false;

            if !draining && self.stop.load(Ordering::SeqCst) {
                draining = true;
                progress = true;
                // Connections without a complete request yet are dropped;
                // ones being handled or written drain below.
                for (i, slot) in conns.iter_mut().enumerate() {
                    let reading = slot
                        .as_ref()
                        .is_some_and(|c| matches!(c.state, ConnState::Reading { .. }));
                    if reading {
                        *slot = None;
                        free.push(i);
                    }
                }
            }

            if !draining {
                loop {
                    match self.listener.accept() {
                        Ok((stream, _)) => {
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            progress = true;
                            let conn = Conn {
                                stream,
                                state: ConnState::Reading {
                                    buf: Vec::new(),
                                    head: None,
                                },
                                last_activity: Instant::now(),
                                backoff: 0,
                                skip: 0,
                            };
                            match free.pop() {
                                Some(i) => conns[i] = Some(conn),
                                None => conns.push(Some(conn)),
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(e) => {
                            telemetry::log::debug(&format!("accept error: {e}"));
                            break;
                        }
                    }
                }
            }

            let done = {
                let mut c = completions.lock().unwrap_or_else(|e| e.into_inner());
                std::mem::take(&mut *c)
            };
            for (token, resp) in done {
                progress = true;
                handling = handling.saturating_sub(1);
                if let Some(conn) = conns.get_mut(token).and_then(Option::as_mut) {
                    conn.state = ConnState::Writing {
                        buf: encode_response(&resp),
                        off: 0,
                    };
                    conn.last_activity = Instant::now();
                    conn.backoff = 0;
                    conn.skip = 0;
                }
            }

            let now = Instant::now();
            for (i, slot) in conns.iter_mut().enumerate() {
                let Some(conn) = slot.as_mut() else {
                    continue;
                };
                let step = match &conn.state {
                    ConnState::Handling => None,
                    ConnState::Reading { .. } if conn.skip > 0 => {
                        conn.skip -= 1;
                        None
                    }
                    ConnState::Reading { .. } => Some(step_reading(conn)),
                    ConnState::Writing { .. } => Some(step_writing(conn)),
                };
                match step {
                    None => {
                        // Not polled this tick (worker-owned, or backing
                        // off); the idle deadline still applies to
                        // sockets we owe I/O on.
                        let waiting_on_io = !matches!(conn.state, ConnState::Handling);
                        if waiting_on_io && now.duration_since(conn.last_activity) > self.io_timeout
                        {
                            *slot = None;
                            free.push(i);
                            progress = true;
                        }
                    }
                    Some(IoStep::Idle) => {
                        if now.duration_since(conn.last_activity) > self.io_timeout {
                            *slot = None;
                            free.push(i);
                            progress = true;
                        } else if matches!(conn.state, ConnState::Reading { .. }) {
                            // Idle readers are polled exponentially less
                            // often (up to every 2^max ticks) so a
                            // thousand parked connections cost the
                            // reactor near-zero time per tick.
                            conn.backoff = (conn.backoff + 1).min(REACTOR_BACKOFF_MAX);
                            conn.skip = (1u32 << conn.backoff) - 1;
                        }
                    }
                    Some(IoStep::Progress) => {
                        progress = true;
                        conn.last_activity = now;
                        conn.backoff = 0;
                        conn.skip = 0;
                    }
                    Some(IoStep::Dispatch(req)) => {
                        progress = true;
                        conn.last_activity = now;
                        conn.backoff = 0;
                        conn.skip = 0;
                        conn.state = ConnState::Handling;
                        handling += 1;
                        let lane = classify_lane(&req, self.priority_cells);
                        self.lanes.on_enqueue(lane);
                        {
                            let mut st = dispatch.st.lock().unwrap_or_else(|e| e.into_inner());
                            st.push(PendingJob {
                                token: i,
                                req,
                                lane,
                                enqueued: Instant::now(),
                                round: 0,
                            });
                        }
                        dispatch.cv.notify_one();
                    }
                    Some(IoStep::Close) => {
                        progress = true;
                        *slot = None;
                        free.push(i);
                    }
                }
            }

            if draining && handling == 0 && conns.iter().all(Option::is_none) {
                return;
            }

            if progress {
                idle_ticks = 0;
            } else {
                idle_ticks = idle_ticks.saturating_add(1);
                let sleep = Duration::from_micros(50)
                    .saturating_mul(idle_ticks)
                    .min(IDLE_TICK_CAP);
                std::thread::sleep(sleep);
            }
        }
    }
}

/// One-shot HTTP client: connect, send, read the full response. Returns
/// `(status, body)`.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
    timeout: Duration,
) -> io::Result<(u16, Vec<u8>)> {
    let (status, _, body) = request_full(addr, method, path, body, timeout)?;
    Ok((status, body))
}

/// A full client-side response: status, headers (names lowercased),
/// body.
pub type FullResponse = (u16, Vec<(String, String)>, Vec<u8>);

/// [`request`], but also returning the response headers (names
/// lowercased) — the router reads `Retry-After` off backend 429s.
pub fn request_full(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
    timeout: Duration,
) -> io::Result<FullResponse> {
    request_with(addr, method, path, &[], body, timeout)
}

/// [`request_full`] with extra request headers — the router stamps
/// `X-Sim-Trace-Id` onto shard sub-requests so one trace id follows a
/// sweep across the whole fleet. Header names/values must be single-line
/// ASCII; callers own that.
pub fn request_with(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    timeout: Duration,
) -> io::Result<FullResponse> {
    request_with_chaos(addr, method, path, headers, body, timeout, None)
}

// ---- deterministic network chaos ----

/// Total milliseconds of injected socket stall *recorded* by the client
/// (never slept, like the cell retry backoff — chaos runs stay fast).
static NET_STALL_RECORDED_MS: AtomicU64 = AtomicU64::new(0);

pub fn net_stall_recorded_ms_total() -> u64 {
    NET_STALL_RECORDED_MS.load(Ordering::Relaxed)
}

/// Scope a network fault plan to one attempt of one request. Rolls are
/// keyed on the request *content* (method, path, body hash) and the
/// attempt number — never on socket addresses or timing — so the chaos a
/// sweep sees is a pure function of the sweep itself: identical at any
/// `SIM_THREADS`, across runs, and across ephemeral-port restarts.
pub fn chaos_attempt_plan(
    base: &FaultPlan,
    method: &str,
    path: &str,
    body: &[u8],
    attempt: u32,
) -> FaultPlan {
    base.derive(&format!("{method} {path}"))
        .derive_u64(fnv1a64(body))
        .derive_u64(attempt as u64 + 1)
}

/// [`request_with`], optionally under a network fault plan already scoped
/// to this attempt (see [`chaos_attempt_plan`]). Injected failures carry
/// the [`sim_faults::TAG`] marker so retry policies can skip real backoff
/// sleeps for them.
pub fn request_with_chaos(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
    timeout: Duration,
    chaos: Option<&FaultPlan>,
) -> io::Result<FullResponse> {
    let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    if let Some(plan) = chaos {
        if plan.roll(FaultSite::NetConnectRefused, 0) {
            sim_faults::note(FaultSite::NetConnectRefused);
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("{} connect to {addr} refused", sim_faults::TAG),
            ));
        }
        if plan.roll(FaultSite::NetStall, 0) {
            sim_faults::note(FaultSite::NetStall);
            let ms = plan.uniform(FaultSite::NetStall, 0, 5.0, 80.0) as u64;
            NET_STALL_RECORDED_MS.fetch_add(ms, Ordering::Relaxed);
        }
    }
    let sock_addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| bad("unresolvable address"))?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nContent-Type: application/json\r\nConnection: close\r\n",
        body.len()
    );
    for (k, v) in headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let mut corrupted = false;
    if let Some(plan) = chaos {
        if plan.roll(FaultSite::NetGarbageStatus, 0) {
            sim_faults::note(FaultSite::NetGarbageStatus);
            let n = raw.len().min(12);
            raw[..n].fill(b'#');
            corrupted = true;
        } else if plan.roll(FaultSite::NetTruncatedResponse, 0) && !raw.is_empty() {
            sim_faults::note(FaultSite::NetTruncatedResponse);
            // Cut the stream at a seeded point, always losing at least one
            // byte so the cut never goes unnoticed.
            let frac = plan.uniform(FaultSite::NetTruncatedResponse, 0, 0.0, 0.95);
            let keep = ((raw.len() as f64 * frac) as usize).min(raw.len() - 1);
            raw.truncate(keep);
            corrupted = true;
        }
    }
    match parse_response(&raw) {
        Ok(resp) => Ok(resp),
        Err(e) if corrupted => Err(io::Error::new(e.kind(), format!("{} {e}", sim_faults::TAG))),
        Err(e) => Err(e),
    }
}

/// Parse a raw HTTP/1.1 response: status line, headers (names
/// lowercased), body. The body is validated against `Content-Length` when
/// the header is present — a short read (peer died mid-stream) is an
/// error here rather than a silently partial payload downstream, and
/// conflicting duplicate declarations are rejected outright.
fn parse_response(raw: &[u8]) -> io::Result<FullResponse> {
    let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    let head_end = find_head_end(raw).ok_or_else(|| bad("truncated response head"))?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("non-UTF8 head"))?;
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (k, v) = line.split_once(':').ok_or_else(|| bad("bad header"))?;
        headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
    }
    let mut body = raw[head_end + 4..].to_vec();
    if let Some(declared) = content_length_of(&headers).map_err(|m| bad(&m))? {
        if body.len() < declared {
            return Err(bad(&format!(
                "truncated response body: got {} of {declared} bytes",
                body.len()
            )));
        }
        body.truncate(declared);
    }
    Ok((status, headers, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_round_trip() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let stop = server.stop_handle().unwrap();
        let t = std::thread::spawn(move || {
            server.run(|req| match (req.method.as_str(), req.path.as_str()) {
                ("GET", "/healthz") => Response::text(200, "ok\n"),
                ("POST", "/echo") => Response::jsonl(200, req.body.clone()),
                ("GET", "/busy") => Response::text(429, "busy\n").with_header("Retry-After", "1"),
                _ => Response::text(404, "no such route\n"),
            })
        });

        let (st, body) = request(&addr, "GET", "/healthz", b"", Duration::from_secs(5)).unwrap();
        assert_eq!((st, body.as_slice()), (200, b"ok\n".as_slice()));

        let payload = b"{\"x\":1}\n{\"y\":2}\n";
        let (st, body) = request(&addr, "POST", "/echo", payload, Duration::from_secs(5)).unwrap();
        assert_eq!(st, 200);
        assert_eq!(body, payload);

        let (st, _) = request(&addr, "GET", "/busy", b"", Duration::from_secs(5)).unwrap();
        assert_eq!(st, 429);

        let (st, _) = request(&addr, "GET", "/nope", b"", Duration::from_secs(5)).unwrap();
        assert_eq!(st, 404);

        stop.stop();
        t.join().unwrap().unwrap();
    }

    /// `request_with` delivers extra headers to the handler (the trace-id
    /// propagation path).
    #[test]
    fn request_with_sends_extra_headers() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let stop = server.stop_handle().unwrap();
        let t = std::thread::spawn(move || {
            server.run(|req| {
                let id = req.header("X-Sim-Trace-Id").unwrap_or("absent");
                Response::text(200, format!("{id}\n"))
            })
        });
        let (st, _, body) = request_with(
            &addr,
            "GET",
            "/",
            &[("X-Sim-Trace-Id", "00000000deadbeef")],
            b"",
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(st, 200);
        assert_eq!(body, b"00000000deadbeef\n");
        let (st, _, body) = request_full(&addr, "GET", "/", b"", Duration::from_secs(5)).unwrap();
        assert_eq!(st, 200);
        assert_eq!(body, b"absent\n");
        stop.stop();
        t.join().unwrap().unwrap();
    }

    /// A panicking handler answers 500 on that one connection and the
    /// server keeps serving — a worker catches the panic instead of
    /// letting it propagate out of `thread::scope` and kill the server.
    #[test]
    fn handler_panic_answers_500_and_server_survives() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let stop = server.stop_handle().unwrap();
        let t = std::thread::spawn(move || {
            server.run(|req| match req.path.as_str() {
                "/boom" => panic!("handler exploded"),
                _ => Response::text(200, "ok\n"),
            })
        });

        for _ in 0..3 {
            let (st, body) = request(&addr, "GET", "/boom", b"", Duration::from_secs(5)).unwrap();
            assert_eq!(st, 500);
            assert!(
                String::from_utf8_lossy(&body).contains("handler panicked"),
                "{body:?}"
            );
            let (st, _) = request(&addr, "GET", "/fine", b"", Duration::from_secs(5)).unwrap();
            assert_eq!(st, 200, "server must survive a handler panic");
        }

        stop.stop();
        t.join().unwrap().unwrap();
    }

    /// Oversized requests are a 413 (distinct from malformed 400): a
    /// declared body over the cap is refused from the Content-Length
    /// header alone, and a head over the cap is refused mid-read.
    #[test]
    fn oversized_requests_get_413_and_malformed_get_400() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let stop = server.stop_handle().unwrap();
        let t = std::thread::spawn(move || server.run(|_| Response::text(200, "ok\n")));

        let raw = |payload: &[u8]| -> (u16, String) {
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            s.write_all(payload).unwrap();
            let mut out = Vec::new();
            s.read_to_end(&mut out).unwrap();
            let text = String::from_utf8_lossy(&out).into_owned();
            let status = text
                .split(' ')
                .nth(1)
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            (status, text)
        };

        // Declared body over MAX_BODY: refused before any body is read.
        let huge = format!(
            "POST /v1/sweep HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let (st, text) = raw(huge.as_bytes());
        assert_eq!(st, 413, "{text}");
        assert!(text.contains("request body too large"), "{text}");

        // Head over MAX_HEAD without a terminating blank line.
        let mut long_head = b"GET / HTTP/1.1\r\n".to_vec();
        long_head.resize(long_head.len() + MAX_HEAD + 16, b'x');
        let (st, text) = raw(&long_head);
        assert_eq!(st, 413, "{text}");
        assert!(text.contains("request head too large"), "{text}");

        // Genuinely malformed requests keep their 400.
        let (st, text) = raw(b"NONSENSE\r\n\r\n");
        assert_eq!(st, 400, "{text}");
        let (st, text) = raw(b"POST / HTTP/1.1\r\nContent-Length: lots\r\n\r\n");
        assert_eq!(st, 400, "{text}");

        // And the server still answers a well-formed request afterwards.
        let a = addr.to_string();
        let (st, _) = request(&a, "GET", "/", b"", Duration::from_secs(5)).unwrap();
        assert_eq!(st, 200);

        stop.stop();
        t.join().unwrap().unwrap();
    }

    /// Duplicate `Content-Length` headers: equal repeats collapse, but
    /// conflicting values are refused with 400 instead of silently
    /// picking the first — the request-smuggling ambiguity.
    #[test]
    fn conflicting_content_length_is_rejected_server_side() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let stop = server.stop_handle().unwrap();
        let t = std::thread::spawn(move || server.run(|req| Response::text(200, req.body.clone())));

        let raw = |payload: &[u8]| -> (u16, String) {
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            s.write_all(payload).unwrap();
            let mut out = Vec::new();
            s.read_to_end(&mut out).unwrap();
            let text = String::from_utf8_lossy(&out).into_owned();
            let status = text
                .split(' ')
                .nth(1)
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            (status, text)
        };

        let (st, text) =
            raw(b"POST /echo HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\nhello!");
        assert_eq!(st, 400, "{text}");
        assert!(text.contains("conflicting content-length"), "{text}");

        let (st, text) =
            raw(b"POST /echo HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello");
        assert_eq!(st, 200, "{text}");
        assert!(text.ends_with("hello"), "{text}");

        stop.stop();
        t.join().unwrap().unwrap();
    }

    /// The same strictness applies client-side: a response declaring two
    /// different lengths is a parse error, not a guess.
    #[test]
    fn client_rejects_conflicting_content_length() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let t = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = [0u8; 4096];
            let _ = s.read(&mut buf);
            s.write_all(
                b"HTTP/1.1 200 OK\r\nContent-Length: 4\r\nContent-Length: 7\r\n\r\nbody bytes",
            )
            .unwrap();
        });
        let err = request(&addr, "GET", "/", b"", Duration::from_secs(5)).unwrap_err();
        assert!(
            err.to_string().contains("conflicting content-length"),
            "{err}"
        );
        t.join().unwrap();
    }

    #[test]
    fn request_full_exposes_response_headers() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let stop = server.stop_handle().unwrap();
        let t = std::thread::spawn(move || {
            server.run(|_| Response::text(429, "busy\n").with_header("Retry-After", "3"))
        });
        let (st, headers, _) =
            request_full(&addr, "GET", "/", b"", Duration::from_secs(5)).unwrap();
        assert_eq!(st, 429);
        let retry = headers
            .iter()
            .find(|(k, _)| k == "retry-after")
            .map(|(_, v)| v.as_str());
        assert_eq!(retry, Some("3"));
        stop.stop();
        t.join().unwrap().unwrap();
    }

    /// Content-Length is validated client-side: a body shorter than the
    /// declared length is an error, not a silently partial payload.
    #[test]
    fn client_rejects_truncated_response_body() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let t = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = [0u8; 4096];
            let _ = s.read(&mut buf);
            s.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nshort")
                .unwrap();
        });
        let err = request(&addr, "GET", "/", b"", Duration::from_secs(5)).unwrap_err();
        assert!(err.to_string().contains("truncated response body"), "{err}");
        t.join().unwrap();
    }

    fn net_plan(rates: sim_faults::FaultRates) -> FaultPlan {
        FaultPlan::new(9).with_rates(rates)
    }

    /// An injected connect refusal never touches the network and carries
    /// the injected-fault tag, so retry policies skip real sleeps for it.
    #[test]
    fn injected_connect_refusal_is_tagged() {
        let plan = net_plan(sim_faults::FaultRates {
            net_connect_refused: 1.0,
            ..sim_faults::FaultRates::zero()
        });
        let scoped = chaos_attempt_plan(&plan, "POST", "/v1/cells", b"body", 0);
        // Reserved port 1: if the roll failed to fire we would error
        // differently, without the tag.
        let err = request_with_chaos(
            "127.0.0.1:1",
            "POST",
            "/v1/cells",
            &[],
            b"body",
            Duration::from_millis(200),
            Some(&scoped),
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
        assert!(sim_faults::is_injected(&err.to_string()), "{err}");
    }

    /// Garbage status lines and truncated responses hit the wire for real
    /// and surface as tagged parse errors; a stall is recorded, not slept.
    #[test]
    fn injected_corruption_is_tagged_and_stall_is_recorded() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let stop = server.stop_handle().unwrap();
        let t = std::thread::spawn(move || server.run(|_| Response::text(200, "hello world\n")));

        let run = |rates: sim_faults::FaultRates| {
            let scoped = chaos_attempt_plan(&net_plan(rates), "GET", "/", b"", 0);
            request_with_chaos(
                &addr,
                "GET",
                "/",
                &[],
                b"",
                Duration::from_secs(5),
                Some(&scoped),
            )
        };

        let err = run(sim_faults::FaultRates {
            net_garbage_status: 1.0,
            ..sim_faults::FaultRates::zero()
        })
        .unwrap_err();
        assert!(sim_faults::is_injected(&err.to_string()), "{err}");

        let err = run(sim_faults::FaultRates {
            net_truncated_response: 1.0,
            ..sim_faults::FaultRates::zero()
        })
        .unwrap_err();
        assert!(sim_faults::is_injected(&err.to_string()), "{err}");

        let before = net_stall_recorded_ms_total();
        let started = std::time::Instant::now();
        let (st, _, body) = run(sim_faults::FaultRates {
            net_stall: 1.0,
            ..sim_faults::FaultRates::zero()
        })
        .unwrap();
        assert_eq!(st, 200);
        assert_eq!(body, b"hello world\n");
        assert!(net_stall_recorded_ms_total() >= before + 5);
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "stall must be recorded, not slept"
        );

        stop.stop();
        t.join().unwrap().unwrap();
    }

    /// Chaos decisions are keyed on request content and attempt number:
    /// the same request re-rolls per attempt, and a different body makes
    /// independent decisions.
    #[test]
    fn chaos_plans_are_content_and_attempt_scoped() {
        let base = FaultPlan::new(17);
        let a0 = chaos_attempt_plan(&base, "POST", "/v1/cells", b"k1", 0);
        let a0_again = chaos_attempt_plan(&base, "POST", "/v1/cells", b"k1", 0);
        let a1 = chaos_attempt_plan(&base, "POST", "/v1/cells", b"k1", 1);
        let other = chaos_attempt_plan(&base, "POST", "/v1/cells", b"k2", 0);
        assert_eq!(a0, a0_again);
        assert_ne!(a0, a1);
        assert_ne!(a0, other);
    }

    #[test]
    fn concurrent_connections_are_served() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let stop = server.stop_handle().unwrap();
        let t = std::thread::spawn(move || {
            server.run(|req| Response::text(200, format!("len={}\n", req.body.len())))
        });
        std::thread::scope(|s| {
            for i in 0..8usize {
                let addr = addr.clone();
                s.spawn(move || {
                    let body = vec![b'x'; i * 1000];
                    let (st, out) =
                        request(&addr, "POST", "/", &body, Duration::from_secs(5)).unwrap();
                    assert_eq!(st, 200);
                    assert_eq!(out, format!("len={}\n", i * 1000).into_bytes());
                });
            }
        });
        stop.stop();
        t.join().unwrap().unwrap();
    }

    /// A slowloris peer trickling header bytes occupies one idle state
    /// machine, not a worker thread: requests arriving behind it still
    /// complete promptly, and the slow request itself eventually gets its
    /// answer.
    #[test]
    fn slowloris_does_not_stall_other_requests() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let stop = server.stop_handle().unwrap();
        let t = std::thread::spawn(move || server.run(|_| Response::text(200, "ok\n")));

        let slow_addr = addr.clone();
        let slow = std::thread::spawn(move || {
            let mut s = TcpStream::connect(&slow_addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            for &b in b"GET /slow HTTP/1.1\r\n\r\n".iter() {
                s.write_all(&[b]).unwrap();
                std::thread::sleep(Duration::from_millis(2));
            }
            let mut out = Vec::new();
            s.read_to_end(&mut out).unwrap();
            String::from_utf8_lossy(&out).into_owned()
        });

        let started = Instant::now();
        for _ in 0..10 {
            let (st, _) = request(&addr, "GET", "/fast", b"", Duration::from_secs(5)).unwrap();
            assert_eq!(st, 200);
        }
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "fast requests stalled behind a slowloris peer: {:?}",
            started.elapsed()
        );

        let text = slow.join().unwrap();
        assert!(text.starts_with("HTTP/1.1 200"), "{text}");

        stop.stop();
        t.join().unwrap().unwrap();
    }

    /// Hundreds of idle-open connections cost state machines, not
    /// threads: service stays prompt while they sit there.
    #[test]
    fn idle_open_connections_do_not_block_service() {
        let server = Server::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let stop = server.stop_handle().unwrap();
        let t = std::thread::spawn(move || server.run(|_| Response::text(200, "ok\n")));

        let idle: Vec<TcpStream> = (0..200)
            .map(|_| TcpStream::connect(&addr).unwrap())
            .collect();
        let started = Instant::now();
        for _ in 0..5 {
            let (st, _) = request(&addr, "GET", "/", b"", Duration::from_secs(5)).unwrap();
            assert_eq!(st, 200);
        }
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "requests stalled behind idle connections: {:?}",
            started.elapsed()
        );
        drop(idle);

        stop.stop();
        t.join().unwrap().unwrap();
    }

    fn lane_req(method: &str, path: &str, body: &[u8]) -> Request {
        Request {
            method: method.into(),
            path: path.into(),
            headers: Vec::new(),
            body: body.to_vec(),
        }
    }

    #[test]
    fn lane_classification() {
        let pc = 2;
        assert_eq!(
            classify_lane(&lane_req("GET", "/v1/cell/abc", b""), pc),
            Lane::Interactive
        );
        assert_eq!(
            classify_lane(&lane_req("GET", "/metrics", b""), pc),
            Lane::Interactive
        );
        assert_eq!(
            classify_lane(&lane_req("POST", "/v1/sweep", b"{\"cells\":\"all\"}"), pc),
            Lane::Bulk
        );
        assert_eq!(
            classify_lane(
                &lane_req(
                    "POST",
                    "/v1/cells",
                    b"{\"cells\":[{\"bench\":\"a\"},{\"bench\":\"b\"}]}"
                ),
                pc
            ),
            Lane::Interactive
        );
        assert_eq!(
            classify_lane(
                &lane_req(
                    "POST",
                    "/v1/cells",
                    b"{\"cells\":[{\"bench\":\"a\"},{\"bench\":\"b\"},{\"bench\":\"c\"}]}"
                ),
                pc
            ),
            Lane::Bulk
        );
    }

    /// Dispatch-order pin: interactive jobs overtake queued bulk jobs,
    /// and a bulk job that has waited `LANE_AGING_ROUNDS` rounds is
    /// promoted even while interactive work is still queued.
    #[test]
    fn dispatch_prefers_interactive_and_ages_bulk() {
        let job = |lane: Lane, token: usize| PendingJob {
            token,
            req: lane_req("GET", "/", b""),
            lane,
            enqueued: Instant::now(),
            round: 0,
        };
        let mut st = DispatchState::default();
        st.push(job(Lane::Bulk, 100));
        let extra = LANE_AGING_ROUNDS as usize + 2;
        for i in 0..extra {
            st.push(job(Lane::Interactive, i));
        }
        let mut picks = Vec::new();
        while let Some((j, promoted)) = st.pick() {
            picks.push((j.token, promoted));
        }
        // First LANE_AGING_ROUNDS picks are interactive, in FIFO order.
        for (i, &(token, promoted)) in picks.iter().take(LANE_AGING_ROUNDS as usize).enumerate() {
            assert_eq!((token, promoted), (i, false), "pick {i}");
        }
        // Then the aged bulk job is promoted past the remaining
        // interactive work.
        assert_eq!(picks[LANE_AGING_ROUNDS as usize], (100, true));
        // And the leftover interactive jobs drain after it.
        assert_eq!(
            picks.len(),
            extra + 1,
            "every queued job must dispatch exactly once"
        );
    }

    /// End-to-end lane behaviour on one worker: with the worker held
    /// busy, an interactive request admitted *after* a queued bulk
    /// request is dispatched first, and the lane telemetry records both
    /// waits.
    #[test]
    fn interactive_requests_overtake_queued_bulk() {
        let mut server = Server::bind("127.0.0.1:0").unwrap();
        server.set_workers(1);
        server.set_priority_cells(2);
        let addr = server.local_addr().unwrap().to_string();
        let stop = server.stop_handle().unwrap();
        let lanes = server.lane_metrics();

        let order: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let gate: Arc<(Mutex<bool>, Condvar)> = Arc::new((Mutex::new(false), Condvar::new()));
        let h_order = order.clone();
        let h_gate = gate.clone();
        let t = std::thread::spawn(move || {
            server.run(move |req| {
                h_order.lock().unwrap().push(req.path.clone());
                if req.body == b"hold" {
                    let (m, cv) = &*h_gate;
                    let mut open = m.lock().unwrap();
                    while !*open {
                        open = cv.wait(open).unwrap();
                    }
                }
                Response::text(200, "ok\n")
            })
        });

        let wait_until = |what: &str, cond: &dyn Fn() -> bool| {
            let started = Instant::now();
            while !cond() {
                assert!(
                    started.elapsed() < Duration::from_secs(10),
                    "timed out waiting for {what}"
                );
                std::thread::sleep(Duration::from_millis(1));
            }
        };

        // Occupy the single worker with a holder request.
        let a_addr = addr.clone();
        let hold = std::thread::spawn(move || {
            request(
                &a_addr,
                "POST",
                "/v1/sweep",
                b"hold",
                Duration::from_secs(30),
            )
            .unwrap()
        });
        wait_until("holder to start", &|| {
            order.lock().unwrap().contains(&"/v1/sweep".to_string())
        });

        // Queue a bulk request (3 cells > priority budget of 2)...
        let b_addr = addr.clone();
        let bulk = std::thread::spawn(move || {
            let body = b"{\"cells\":[{\"bench\":\"a\"},{\"bench\":\"b\"},{\"bench\":\"c\"}]}";
            request(&b_addr, "POST", "/v1/cells", body, Duration::from_secs(30)).unwrap()
        });
        wait_until("bulk request to queue", &|| {
            lanes.snapshot().bulk_depth == 1
        });

        // ...then an interactive request behind it.
        let c_addr = addr.clone();
        let cell = std::thread::spawn(move || {
            request(&c_addr, "GET", "/v1/cell/abc", b"", Duration::from_secs(30)).unwrap()
        });
        wait_until("interactive request to queue", &|| {
            lanes.snapshot().interactive_depth == 1
        });

        // Release the worker and let the queue drain.
        {
            let (m, cv) = &*gate;
            *m.lock().unwrap() = true;
            cv.notify_all();
        }
        assert_eq!(hold.join().unwrap().0, 200);
        assert_eq!(cell.join().unwrap().0, 200);
        assert_eq!(bulk.join().unwrap().0, 200);

        // The interactive request, though admitted later, ran first.
        let got = order.lock().unwrap().clone();
        assert_eq!(got, vec!["/v1/sweep", "/v1/cell/abc", "/v1/cells"]);

        let snap = lanes.snapshot();
        assert_eq!(snap.dispatched_interactive, 2); // holder + cell
        assert_eq!(snap.dispatched_bulk, 1);
        assert_eq!(snap.promoted_bulk, 0);
        assert_eq!(snap.wait_interactive.count(), 2);
        assert_eq!(snap.wait_bulk.count(), 1);
        assert_eq!(snap.interactive_depth, 0);
        assert_eq!(snap.bulk_depth, 0);

        stop.stop();
        t.join().unwrap().unwrap();
    }
}
