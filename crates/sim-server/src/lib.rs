//! # sim-server — the dependency-free experiment service kernel
//!
//! The reproduction's sweeps are built from *cells* — fully-specified
//! experiment points (benchmark × version × precision × scale × device
//! config × fault seed × simulator version) whose results are
//! deterministic functions of the spec. That makes the cell the natural
//! unit of reuse: this crate turns the one-shot CLI simulator into
//! serving infrastructure by giving cells a stable content address and
//! building a cache, a scheduler and an HTTP surface around it.
//!
//! The crate is deliberately *domain-light*: it knows what a cell spec
//! looks like on the wire ([`key::CellSpec`]) but treats results as
//! opaque encoded payloads. The `harness` crate wires in the actual
//! simulator (its checkpoint codec encodes/decodes payloads, its runner
//! evaluates batches on `sim-pool`) and mounts the endpoints; see
//! `harness::serve` and `DESIGN.md` §12.
//!
//! Layers, bottom-up:
//!
//! * [`key`] — canonical cell specs, the stable [`key::CellKey`] hash,
//!   and the shared token codec (escaping, float bit-patterns) also used
//!   by the `simstate` checkpoint format.
//! * [`json`] — a bounded, exact-integer JSON parser for request bodies.
//! * [`http`] — minimal HTTP/1.1 server (a non-blocking reactor thread
//!   plus a fixed worker pool with priority lanes) and a one-shot
//!   client.
//! * [`cache`] — content-addressed LRU with deterministic snapshots.
//! * [`scheduler`] — a single dispatcher that coalesces duplicate
//!   in-flight cells, batches distinct ones, and bounds the queue with
//!   explicit backpressure.
//! * [`metrics`] — counters and per-stage latency histograms as a
//!   Prometheus-style text page, with exact cross-shard aggregation.
//! * [`reqtrace`] — 16-hex trace ids propagated via `X-Sim-Trace-Id`,
//!   deterministic 1-in-N sampling, per-request Perfetto traces and a
//!   structured request log.
//!
//! Everything is std-only, per the workspace's offline policy.

pub mod breaker;
pub mod cache;
pub mod http;
pub mod json;
pub mod key;
pub mod metrics;
pub mod reqtrace;
pub mod retry;
pub mod router;
pub mod scheduler;

/// Best-effort text of a caught panic payload (`String` / `&str` panics;
/// anything else gets a placeholder). Shared by the HTTP handler guard
/// and the scheduler's batch-evaluation guard.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("non-string panic payload")
}

pub use breaker::{Breaker, BreakerState, Decision};
pub use cache::{Cache, CacheStats, CachedCell};
pub use http::{classify_lane, LaneMetrics, LaneSnapshot, Request, Response, Server, StopHandle};
pub use json::Json;
pub use key::{CellKey, CellSpec, KEY_SCHEMA_VERSION};
pub use metrics::Metrics;
pub use reqtrace::{RequestRecord, TraceConfig, TraceId, Tracer, TRACE_HEADER};
pub use retry::{RetryPolicy, DEFAULT_RETRY_AFTER_SECS};
pub use router::Ring;
pub use scheduler::{
    Abandoned, AdmitError, Lane, Scheduler, SchedulerStats, Slot, SlotTiming, BULK_AGING_ROUNDS,
};
