//! Per-request tracing: trace ids, deterministic sampling, Perfetto
//! span export and a structured one-line-per-request log.
//!
//! Every request through `harness serve` / `harness route` gets a
//! 16-hex *trace id*: accepted inbound via the `X-Sim-Trace-Id` header
//! (so the router stamps one id onto every shard sub-request and a
//! client can follow one sweep across the whole fleet) or generated at
//! ingress. The id is echoed on the response — headers only, never the
//! body, so tracing cannot violate the serving layer's byte-identity
//! contract.
//!
//! Under `--trace-dir DIR --trace-sample N`, a [`Tracer`] writes one
//! Perfetto trace file per *sampled* request (deterministic 1-in-N:
//! sample iff `fnv1a64(id_hex) % N == 0`, a pure function of the trace
//! id — replaying a sweep with the same inbound ids samples exactly the
//! same requests) and appends one structured line per request to
//! `DIR/requests.log`. `--slow-ms` force-samples requests over the
//! threshold regardless of the 1-in-N draw, so tail latencies always
//! leave a trace behind.

use crate::key::fnv1a64;
use crate::router::mix64;
use std::fmt;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use telemetry::TraceBuilder;

/// A 16-hex request trace id.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl std::str::FromStr for TraceId {
    type Err = ();

    fn from_str(s: &str) -> Result<Self, ()> {
        if s.len() != 16 {
            return Err(());
        }
        u64::from_str_radix(s, 16).map(TraceId).map_err(|_| ())
    }
}

/// The propagation header, on requests (inbound id) and responses (echo).
pub const TRACE_HEADER: &str = "X-Sim-Trace-Id";

/// Process-unique id sequence, seeded once per process.
static NEXT: AtomicU64 = AtomicU64::new(0);
static SEED: std::sync::OnceLock<u64> = std::sync::OnceLock::new();

impl TraceId {
    /// Generate a fresh id: a per-process random seed (boot time ⊕ pid)
    /// mixed with a monotone counter, so concurrent servers on one host
    /// do not collide and one server never repeats itself.
    pub fn generate() -> TraceId {
        let seed = *SEED.get_or_init(|| {
            let t = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0);
            mix64(t ^ (std::process::id() as u64) << 32)
        });
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        TraceId(mix64(
            seed.wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        ))
    }

    /// The inbound id when the header carries a well-formed one, else a
    /// freshly generated id. Malformed headers are ignored, not errors:
    /// tracing must never fail a request.
    pub fn from_header(header: Option<&str>) -> TraceId {
        header
            .and_then(|h| h.trim().parse().ok())
            .unwrap_or_else(TraceId::generate)
    }

    /// Deterministic 1-in-`sample` draw keyed off the id's hex form:
    /// a pure function of the id, identical on every process that sees
    /// the same id (router and all its shards agree on what's sampled).
    pub fn sampled(&self, sample: u64) -> bool {
        sample > 0 && fnv1a64(self.to_string().as_bytes()).is_multiple_of(sample)
    }
}

/// One recorded stage of a request, offsets relative to request start.
#[derive(Clone, Debug)]
pub struct StageSpan {
    pub name: String,
    pub start_us: u64,
    pub dur_us: u64,
}

/// Everything one request contributes to the trace file and the log.
#[derive(Debug)]
pub struct RequestRecord {
    pub id: TraceId,
    /// Route, e.g. `/v1/sweep`.
    pub endpoint: String,
    pub status: u16,
    pub total_us: u64,
    pub spans: Vec<StageSpan>,
    /// Free-form `key=value` annotations for the structured log line
    /// (cache hits/misses, shard, cell counts, ...). Values must not
    /// contain spaces or newlines; callers own that.
    pub notes: Vec<(&'static str, String)>,
}

impl RequestRecord {
    pub fn new(id: TraceId, endpoint: &str) -> RequestRecord {
        RequestRecord {
            id,
            endpoint: endpoint.to_string(),
            status: 0,
            total_us: 0,
            spans: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn span(&mut self, name: impl Into<String>, start_us: u64, dur_us: u64) {
        self.spans.push(StageSpan {
            name: name.into(),
            start_us,
            dur_us,
        });
    }

    pub fn note(&mut self, key: &'static str, value: impl ToString) {
        self.notes.push((key, value.to_string()));
    }

    /// Render the spans as a Perfetto/Chrome trace: one process named
    /// after the service, the request as tid 0, stages as tid 1.
    fn to_trace_json(&self, service: &str) -> String {
        let mut t = TraceBuilder::new();
        t.process_name(1, service);
        t.thread_name(1, 0, "request");
        t.thread_name(1, 1, "stages");
        t.span(
            &format!("{} {}", self.endpoint, self.id),
            "request",
            1,
            0,
            0.0,
            self.total_us as f64 / 1e6,
        );
        for s in &self.spans {
            t.span(
                &s.name,
                "stage",
                1,
                1,
                s.start_us as f64 / 1e6,
                s.dur_us as f64 / 1e6,
            );
        }
        t.to_json()
    }

    /// The structured one-line log record.
    fn log_line(&self, sampled: bool) -> String {
        let mut line = format!(
            "trace={} endpoint={} status={} total_us={}",
            self.id, self.endpoint, self.status, self.total_us
        );
        for (k, v) in &self.notes {
            line.push_str(&format!(" {k}={v}"));
        }
        for s in &self.spans {
            line.push_str(&format!(" {}_us={}", s.name.replace('-', "_"), s.dur_us));
        }
        line.push_str(&format!(" sampled={}", if sampled { "yes" } else { "no" }));
        line
    }
}

/// Tracing configuration (CLI flags map onto this 1:1).
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Directory for per-request trace files and `requests.log`.
    pub dir: PathBuf,
    /// Sample 1 in N requests (0 disables the draw; `slow_ms` still
    /// force-samples).
    pub sample: u64,
    /// Force-sample any request slower than this, regardless of the draw.
    pub slow_ms: Option<u64>,
}

/// Sink for request records. With no config it is a no-op whose `finish`
/// costs one branch — instrumentation stays on in every build.
pub struct Tracer {
    cfg: Option<TraceConfig>,
    service: String,
    /// Serializes appends to `requests.log`.
    log: Mutex<()>,
}

impl Tracer {
    /// A tracer that drops everything (tracing disabled).
    pub fn disabled() -> Tracer {
        Tracer {
            cfg: None,
            service: String::new(),
            log: Mutex::new(()),
        }
    }

    /// A tracer writing into `cfg.dir` (created if missing). `service`
    /// names the process in trace files (e.g. `sim-server 127.0.0.1:80`).
    pub fn new(cfg: TraceConfig, service: &str) -> std::io::Result<Tracer> {
        std::fs::create_dir_all(&cfg.dir)?;
        Ok(Tracer {
            cfg: Some(cfg),
            service: service.to_string(),
            log: Mutex::new(()),
        })
    }

    pub fn enabled(&self) -> bool {
        self.cfg.is_some()
    }

    /// Whether this request will emit a trace file: the deterministic
    /// 1-in-N draw, or the slow-request override.
    pub fn will_sample(&self, id: TraceId, total_us: u64) -> bool {
        let Some(cfg) = &self.cfg else {
            return false;
        };
        if id.sampled(cfg.sample) {
            return true;
        }
        match cfg.slow_ms {
            Some(ms) => total_us > ms.saturating_mul(1000),
            None => false,
        }
    }

    /// Record one finished request: append its line to `requests.log`
    /// (every request) and write `req-<id>.json` (sampled ones). Both
    /// writes are best-effort — observability must never fail a request
    /// that the engine already answered.
    pub fn finish(&self, rec: &RequestRecord) {
        let Some(cfg) = &self.cfg else {
            return;
        };
        let sampled = self.will_sample(rec.id, rec.total_us);
        {
            let _guard = self.log.lock().unwrap_or_else(|e| e.into_inner());
            let line = rec.log_line(sampled);
            let ok = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(cfg.dir.join("requests.log"))
                .and_then(|mut f| writeln!(f, "{line}"));
            if let Err(e) = ok {
                telemetry::log::debug(&format!("request log append failed: {e}"));
            }
        }
        if sampled {
            let path = cfg.dir.join(format!("req-{}.json", rec.id));
            if let Err(e) = std::fs::write(&path, rec.to_trace_json(&self.service)) {
                telemetry::log::debug(&format!("trace write to {} failed: {e}", path.display()));
            }
        }
    }
}

/// Microseconds elapsed since `t0`, saturating into `u64`.
pub fn us_since(t0: std::time::Instant) -> u64 {
    t0.elapsed().as_micros().min(u64::MAX as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_16_hex_and_round_trip() {
        let id = TraceId(0x0123_4567_89ab_cdef);
        assert_eq!(id.to_string(), "0123456789abcdef");
        assert_eq!("0123456789abcdef".parse::<TraceId>().unwrap(), id);
        assert!("xyz".parse::<TraceId>().is_err());
        assert!("123".parse::<TraceId>().is_err());
        assert!("0123456789abcdef0".parse::<TraceId>().is_err());
    }

    #[test]
    fn header_parse_falls_back_to_generation() {
        let id = TraceId::from_header(Some("00000000000000ff"));
        assert_eq!(id, TraceId(0xff));
        // Malformed or absent headers generate instead of failing; two
        // generated ids differ.
        let a = TraceId::from_header(Some("not-hex"));
        let b = TraceId::from_header(None);
        assert_ne!(a, b);
    }

    #[test]
    fn sampling_is_deterministic_in_the_id() {
        let id = TraceId(42);
        for n in [1, 2, 3, 7, 100] {
            assert_eq!(id.sampled(n), id.sampled(n), "same draw every time");
        }
        // sample=1 always samples; sample=0 never does.
        assert!(id.sampled(1));
        assert!(!id.sampled(0));
        // Roughly 1-in-N: over 4096 sequential ids, a 1-in-8 draw stays
        // within a loose band (this is deterministic, not flaky — the ids
        // are fixed).
        let hits = (0..4096).filter(|i| TraceId(*i).sampled(8)).count();
        assert!((256..=768).contains(&hits), "1-in-8 of 4096 gave {hits}");
    }

    #[test]
    fn slow_requests_are_force_sampled() {
        let dir = std::env::temp_dir().join(format!("reqtrace-slow-{}", std::process::id()));
        let tracer = Tracer::new(
            TraceConfig {
                dir: dir.clone(),
                sample: 0,
                slow_ms: Some(10),
            },
            "test",
        )
        .unwrap();
        let id = TraceId(7);
        assert!(!tracer.will_sample(id, 9_999));
        assert!(tracer.will_sample(id, 10_001));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn finish_writes_log_and_sampled_trace() {
        let dir = std::env::temp_dir().join(format!("reqtrace-finish-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tracer = Tracer::new(
            TraceConfig {
                dir: dir.clone(),
                sample: 1,
                slow_ms: None,
            },
            "sim-server test",
        )
        .unwrap();
        let mut rec = RequestRecord::new(TraceId(0xabc), "/v1/sweep");
        rec.status = 200;
        rec.total_us = 1234;
        rec.span("parse", 0, 10);
        rec.span("queue-wait", 10, 100);
        rec.note("cells", 72u64);
        tracer.finish(&rec);

        let log = std::fs::read_to_string(dir.join("requests.log")).unwrap();
        assert_eq!(log.lines().count(), 1);
        assert!(log.contains("trace=0000000000000abc"), "{log}");
        assert!(log.contains("status=200"), "{log}");
        assert!(log.contains("cells=72"), "{log}");
        assert!(log.contains("parse_us=10"), "{log}");
        assert!(log.contains("queue_wait_us=100"), "{log}");
        assert!(log.contains("sampled=yes"), "{log}");

        let trace = std::fs::read_to_string(dir.join("req-0000000000000abc.json")).unwrap();
        assert!(trace.contains("\"traceEvents\""), "{trace}");
        assert!(trace.contains("queue-wait"), "{trace}");
        assert!(trace.contains("/v1/sweep 0000000000000abc"), "{trace}");

        // Disabled tracer: no-ops.
        let off = Tracer::disabled();
        assert!(!off.enabled());
        assert!(!off.will_sample(TraceId(1), u64::MAX));
        off.finish(&rec);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
