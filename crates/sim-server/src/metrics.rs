//! `/metrics` counters, stage histograms and their text exposition.
//!
//! Prometheus-style text: `# HELP`/`# TYPE` comments, plain `name value`
//! lines for counters and gauges (grep-compatible for the CI smoke), and
//! full `_bucket{le="..."}`/`_sum`/`_count` families for latencies via
//! [`telemetry::LatencyHistogram`]. The histogram families are the fleet's
//! unit of wall-clock truth: bucket counts are plain counters, so the
//! router merges shard pages by *summation* and the result is exactly the
//! histogram a single process would have recorded ([`aggregate_pages`]).
//! Legacy `sim_server_sweep_time_p50_us`/`_p95_us`/`_mean_us` lines are
//! kept, now derived from the histogram, and still aggregate with `max`
//! (a true worst-shard bound — summing percentiles would fabricate a
//! number no shard observed).

use crate::cache::CacheStats;
use crate::http::LaneSnapshot;
use crate::scheduler::SchedulerStats;
use std::collections::HashMap;
use telemetry::LatencyHistogram;

/// The per-request pipeline stages instrumented by the serving layer.
///
/// `Parse`, `Admit` and `Format` are recorded once per request;
/// `CacheLookup`, `QueueWait` and `EvalBatch` are recorded once per
/// *cell* (the queue/eval stages only for cache misses), so their
/// `_count` depends only on the work done, not on how the fleet is
/// sharded — a 2-shard sweep and a single process report the same
/// per-cell sample counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    Parse,
    Admit,
    CacheLookup,
    QueueWait,
    EvalBatch,
    Format,
}

impl Stage {
    pub const ALL: [Stage; 6] = [
        Stage::Parse,
        Stage::Admit,
        Stage::CacheLookup,
        Stage::QueueWait,
        Stage::EvalBatch,
        Stage::Format,
    ];

    /// The stage's short name (also its span name in request traces).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Admit => "admit",
            Stage::CacheLookup => "cache_lookup",
            Stage::QueueWait => "queue_wait",
            Stage::EvalBatch => "eval_batch",
            Stage::Format => "format",
        }
    }

    /// The `/metrics` family name. Ends in `_us` only *before* the
    /// exposition suffixes (`_bucket{...}`, `_sum`, `_count`), so the
    /// aggregation max-rule for scalar `*_us` lines never touches
    /// histogram lines.
    pub fn metric_name(self) -> String {
        format!("sim_server_stage_{}_us", self.name())
    }

    fn help(self) -> &'static str {
        match self {
            Stage::Parse => "Request body parse + validation time per request.",
            Stage::Admit => "Scheduler admission time (lock + queue reservation) per request.",
            Stage::CacheLookup => "Content-addressed cache probe time per cell.",
            Stage::QueueWait => "Admission-to-dispatch wait per simulated cell.",
            Stage::EvalBatch => "Simulator evaluation time per simulated cell.",
            Stage::Format => "Result decode + response formatting time per request.",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Parse => 0,
            Stage::Admit => 1,
            Stage::CacheLookup => 2,
            Stage::QueueWait => 3,
            Stage::EvalBatch => 4,
            Stage::Format => 5,
        }
    }
}

/// Server-level request counters + sweep/stage latency histograms.
#[derive(Default)]
pub struct Metrics {
    pub requests: u64,
    pub sweeps: u64,
    pub cells_requested: u64,
    pub rejected_requests: u64,
    pub bad_requests: u64,
    /// Handlers that gave up waiting for an evaluation (answered 503).
    pub wait_timeouts: u64,
    /// End-to-end sweep service time, one sample per `/v1/sweep` or
    /// `/v1/cells` request.
    pub sweep_time: LatencyHistogram,
    stages: [LatencyHistogram; 6],
}

impl Metrics {
    /// Record one duration into a stage histogram.
    pub fn record_stage(&mut self, stage: Stage, us: u64) {
        self.stages[stage.index()].record_us(us);
    }

    /// Read access to a stage histogram.
    pub fn stage(&self, stage: Stage) -> &LatencyHistogram {
        &self.stages[stage.index()]
    }
}

/// Render the full metrics page from the stat sources. `uptime_secs` is
/// the caller's process uptime (a gauge; the router aggregate takes the
/// max, i.e. the oldest shard).
pub fn render(
    m: &Metrics,
    cache: &CacheStats,
    cache_entries: usize,
    sched: &SchedulerStats,
    lanes: &LaneSnapshot,
    uptime_secs: u64,
) -> String {
    let mut out = String::new();
    let mut line = |name: &str, help: &str, kind: &str, v: u64| {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
        out.push_str(name);
        out.push(' ');
        out.push_str(&v.to_string());
        out.push('\n');
    };
    line(
        "sim_server_requests_total",
        "HTTP requests accepted by this process.",
        "counter",
        m.requests,
    );
    line(
        "sim_server_sweeps_total",
        "Sweep-evaluating requests served (/v1/sweep + /v1/cells).",
        "counter",
        m.sweeps,
    );
    line(
        "sim_server_cells_requested_total",
        "Cells named by incoming sweeps (before cache/coalescing).",
        "counter",
        m.cells_requested,
    );
    line(
        "sim_server_rejected_requests_total",
        "Requests rejected with 429 (queue full).",
        "counter",
        m.rejected_requests,
    );
    line(
        "sim_server_bad_requests_total",
        "Requests rejected with 4xx other than 429.",
        "counter",
        m.bad_requests,
    );
    line(
        "sim_server_wait_timeouts_total",
        "Handlers that timed out waiting for an evaluation (answered 503).",
        "counter",
        m.wait_timeouts,
    );
    line(
        "sim_server_cache_hits",
        "Cell results served from the content-addressed cache.",
        "counter",
        cache.hits,
    );
    line(
        "sim_server_cache_misses",
        "Cell lookups that missed the cache.",
        "counter",
        cache.misses,
    );
    line(
        "sim_server_cache_insertions",
        "Cell results inserted into the cache.",
        "counter",
        cache.insertions,
    );
    line(
        "sim_server_cache_evictions",
        "Cache entries evicted by the LRU policy.",
        "counter",
        cache.evictions,
    );
    line(
        "sim_server_cache_entries",
        "Cache entries currently resident.",
        "gauge",
        cache_entries as u64,
    );
    line(
        "sim_server_cells_simulated_total",
        "Cells actually evaluated by the simulator.",
        "counter",
        sched.simulated,
    );
    line(
        "sim_server_cells_coalesced_total",
        "Cell requests coalesced onto an already in-flight cell.",
        "counter",
        sched.coalesced,
    );
    line(
        "sim_server_sweeps_rejected_busy_total",
        "Admissions refused because the queue was full.",
        "counter",
        sched.rejected,
    );
    line(
        "sim_server_batches_total",
        "Dispatcher batches evaluated.",
        "counter",
        sched.batches,
    );
    line(
        "sim_server_eval_panics_total",
        "Batch evaluations that panicked (caught).",
        "counter",
        sched.eval_panics,
    );
    line(
        "sim_server_cells_abandoned_total",
        "In-flight cells abandoned by a dying dispatcher.",
        "counter",
        sched.abandoned,
    );
    line(
        "sim_server_queue_depth",
        "Cells waiting in the scheduler queue.",
        "gauge",
        sched.queue_depth as u64,
    );
    line(
        "sim_server_in_flight",
        "Cells admitted but not yet settled.",
        "gauge",
        sched.in_flight as u64,
    );
    line(
        "sim_server_queue_depth_interactive",
        "Cells waiting in the scheduler's interactive lane.",
        "gauge",
        sched.interactive_depth as u64,
    );
    line(
        "sim_server_queue_depth_bulk",
        "Cells waiting in the scheduler's bulk lane.",
        "gauge",
        sched.bulk_depth as u64,
    );
    line(
        "sim_server_bulk_promotions_total",
        "Bulk batches promoted past queued interactive work by aging.",
        "counter",
        sched.bulk_promotions,
    );
    line(
        "sim_server_uptime_seconds",
        "Seconds since this server process started.",
        "gauge",
        uptime_secs,
    );

    out.push_str(
        "# HELP sim_server_sweep_time_us End-to-end sweep service time per request, microseconds.\n\
         # TYPE sim_server_sweep_time_us histogram\n",
    );
    m.sweep_time.render("sim_server_sweep_time_us", &mut out);
    for stage in Stage::ALL {
        let name = stage.metric_name();
        out.push_str(&format!(
            "# HELP {name} {}\n# TYPE {name} histogram\n",
            stage.help()
        ));
        m.stage(stage).render(&name, &mut out);
    }

    render_lanes("sim_server", lanes, &mut out);

    // Legacy scalar latency lines, now derived from the histogram. Kept
    // for existing greps; still max-aggregated across shards.
    let mut legacy = |name: &str, v: u64| {
        out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
    };
    legacy("sim_server_sweep_time_p50_us", m.sweep_time.p50_us());
    legacy("sim_server_sweep_time_p95_us", m.sweep_time.p95_us());
    legacy("sim_server_sweep_time_mean_us", m.sweep_time.mean_us());
    out
}

/// Append the per-lane HTTP dispatch metrics (queue depth gauges,
/// dispatch/promotion counters, queue-wait histograms) under the given
/// family prefix (`sim_server` on shard pages, `sim_router` on the
/// router's own page).
pub fn render_lanes(prefix: &str, lanes: &LaneSnapshot, out: &mut String) {
    let mut line = |name: String, help: &str, kind: &str, v: u64| {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
        out.push_str(&format!("{name} {v}\n"));
    };
    line(
        format!("{prefix}_lane_depth_interactive"),
        "HTTP requests queued in the interactive dispatch lane.",
        "gauge",
        lanes.interactive_depth,
    );
    line(
        format!("{prefix}_lane_depth_bulk"),
        "HTTP requests queued in the bulk dispatch lane.",
        "gauge",
        lanes.bulk_depth,
    );
    line(
        format!("{prefix}_lane_dispatched_interactive_total"),
        "HTTP requests dispatched from the interactive lane.",
        "counter",
        lanes.dispatched_interactive,
    );
    line(
        format!("{prefix}_lane_dispatched_bulk_total"),
        "HTTP requests dispatched from the bulk lane.",
        "counter",
        lanes.dispatched_bulk,
    );
    line(
        format!("{prefix}_lane_promoted_bulk_total"),
        "Bulk requests dispatched past waiting interactive work by aging.",
        "counter",
        lanes.promoted_bulk,
    );
    for (lane, hist) in [
        ("interactive", &lanes.wait_interactive),
        ("bulk", &lanes.wait_bulk),
    ] {
        let name = format!("{prefix}_lane_wait_{lane}_us");
        out.push_str(&format!(
            "# HELP {name} Queue wait before dispatch for the {lane} lane, microseconds.\n\
             # TYPE {name} histogram\n"
        ));
        hist.render(&name, out);
    }
}

/// A metric line's value during aggregation.
enum Agg {
    U64(u64),
    F64(f64),
    /// Unparseable value: passed through verbatim (first occurrence wins).
    Raw(String),
}

/// Gauges that are *extensive* — each shard holds a disjoint share of
/// one fleet-wide quantity — so summation is the correct cross-shard
/// aggregate. Every other declared gauge takes the max (worst/oldest
/// shard): summing `sim_server_uptime_seconds`, `sim_router_replicas`
/// or `sim_router_breaker_state{shard="i"}` across pages fabricates a
/// value no process reported.
const SUMMED_GAUGES: &[&str] = &[
    "sim_server_cache_entries",
    "sim_server_queue_depth",
    "sim_server_in_flight",
    "sim_server_queue_depth_interactive",
    "sim_server_queue_depth_bulk",
    "sim_server_lane_depth_interactive",
    "sim_server_lane_depth_bulk",
    "sim_router_lane_depth_interactive",
    "sim_router_lane_depth_bulk",
];

/// True when cross-shard summation would fabricate a value and the max
/// is the honest aggregate. Classification is driven by the pages' own
/// `# TYPE` declarations: declared gauges take the max unless they are
/// on the [`SUMMED_GAUGES`] extensive allowlist; declared counters and
/// histograms always sum (summing cumulative bucket counts is an exact
/// histogram merge). Undeclared lines fall back to the name heuristic —
/// scalar `*_us` / `*_seconds` lines max, everything else sums. The
/// label block is stripped first so `sim_router_breaker_state{shard="0"}`
/// matches its family's TYPE declaration.
fn max_aggregated(name: &str, types: &HashMap<String, String>) -> bool {
    let base = name.split('{').next().unwrap_or(name);
    match types.get(base).map(String::as_str) {
        Some("gauge") => !SUMMED_GAUGES.contains(&base),
        Some(_) => false,
        None => name.ends_with("_us") || name.ends_with("_seconds"),
    }
}

/// Aggregate several exposition pages (one per shard) into one.
///
/// * `#` comment lines pass through once each, first-seen order.
/// * Numeric `name value` lines sum across shards — which is an *exact*
///   histogram merge for `_bucket`/`_sum`/`_count` lines, since sums of
///   cumulative counts are cumulative counts of the merged histogram —
///   except gauges (classified from the pages' `# TYPE` declarations,
///   see [`max_aggregated`]), which take the max unless they are
///   extensive ([`SUMMED_GAUGES`]).
/// * Lines whose value parses as neither u64 nor f64 pass through
///   verbatim, so a shard can never silently vanish from the page.
///
/// Line order follows first appearance across the pages, so lines
/// present on only some shards are kept, not dropped.
pub fn aggregate_pages(pages: &[String]) -> String {
    // Pre-pass: collect every `# TYPE name kind` declaration so that
    // classification does not depend on which page a value line appears
    // in relative to its declaration.
    let mut types: HashMap<String, String> = HashMap::new();
    for page in pages {
        for line in page.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                if let Some((name, kind)) = rest.split_once(' ') {
                    types.insert(name.to_string(), kind.to_string());
                }
            }
        }
    }
    let mut order: Vec<String> = Vec::new();
    let mut totals: HashMap<String, Agg> = HashMap::new();
    let mut comments: std::collections::HashSet<&str> = std::collections::HashSet::new();
    for page in pages {
        for line in page.lines() {
            if line.starts_with('#') {
                if comments.insert(line) {
                    order.push(line.to_string());
                }
                continue;
            }
            let Some((name, value)) = line.rsplit_once(' ') else {
                // No separator at all: pass the line through once.
                if !totals.contains_key(line) {
                    order.push(line.to_string());
                    totals.insert(line.to_string(), Agg::Raw(String::new()));
                }
                continue;
            };
            let parsed = match value.parse::<u64>() {
                Ok(v) => Agg::U64(v),
                Err(_) => match value.parse::<f64>() {
                    Ok(v) => Agg::F64(v),
                    Err(_) => Agg::Raw(value.to_string()),
                },
            };
            match totals.get_mut(name) {
                None => {
                    order.push(name.to_string());
                    totals.insert(name.to_string(), parsed);
                }
                Some(slot) => {
                    let take_max = max_aggregated(name, &types);
                    match (slot, parsed) {
                        (Agg::U64(a), Agg::U64(b)) => {
                            *a = if take_max { (*a).max(b) } else { *a + b }
                        }
                        (slot @ Agg::U64(_), Agg::F64(b)) => {
                            let a = match slot {
                                Agg::U64(a) => *a as f64,
                                _ => unreachable!(),
                            };
                            *slot = Agg::F64(if take_max { a.max(b) } else { a + b });
                        }
                        (Agg::F64(a), Agg::U64(b)) => {
                            let b = b as f64;
                            *a = if take_max { a.max(b) } else { *a + b }
                        }
                        (Agg::F64(a), Agg::F64(b)) => *a = if take_max { a.max(b) } else { *a + b },
                        // A raw value freezes the line at its first form;
                        // later numeric values cannot meaningfully combine
                        // with it.
                        (Agg::Raw(_), _) => {}
                        (slot, raw @ Agg::Raw(_)) => *slot = raw,
                    }
                }
            }
        }
    }
    let mut out = String::new();
    for name in order {
        match &totals.get(&name) {
            None => {
                // A comment line.
                out.push_str(&name);
                out.push('\n');
            }
            Some(Agg::U64(v)) => out.push_str(&format!("{name} {v}\n")),
            Some(Agg::F64(v)) => out.push_str(&format!("{name} {v}\n")),
            Some(Agg::Raw(v)) if v.is_empty() => {
                out.push_str(&name);
                out.push('\n');
            }
            Some(Agg::Raw(v)) => out.push_str(&format!("{name} {v}\n")),
        }
    }
    out
}

/// Pretty-print an exposition page for humans (`harness submit
/// --metrics`): comments dropped, `name value` lines aligned into two
/// columns, histogram families collapsed into one summary line each with
/// p50/p95/p99/mean derived from the buckets. Scalar lines keep the
/// `name<spaces>value` shape so CI greps like `^name +value$` still hold.
pub fn pretty(page: &str) -> String {
    // Histogram family names, in order of first appearance.
    let mut families: Vec<String> = Vec::new();
    for line in page.lines() {
        if let Some(idx) = line.find("_bucket{le=\"") {
            let name = &line[..idx];
            if !families.iter().any(|f| f == name) {
                families.push(name.to_string());
            }
        }
    }
    let mut rows: Vec<(String, String)> = Vec::new();
    let mut emitted: std::collections::HashSet<String> = std::collections::HashSet::new();
    for line in page.lines() {
        if line.starts_with('#') {
            continue;
        }
        if let Some(idx) = line.find("_bucket{le=\"") {
            let name = line[..idx].to_string();
            if emitted.insert(name.clone()) {
                let summary = match LatencyHistogram::parse(page, &name) {
                    Some(h) => format!(
                        "p50={}us p95={}us p99={}us mean={}us count={}",
                        h.p50_us(),
                        h.p95_us(),
                        h.p99_us(),
                        h.mean_us(),
                        h.count()
                    ),
                    None => "unparseable histogram".to_string(),
                };
                rows.push((name, summary));
            }
            continue;
        }
        // Suppress the _sum/_count companions of a collapsed family.
        if families.iter().any(|f| {
            line.strip_prefix(f.as_str())
                .is_some_and(|rest| rest.starts_with("_sum ") || rest.starts_with("_count "))
        }) {
            continue;
        }
        match line.rsplit_once(' ') {
            Some((name, value)) => rows.push((name.to_string(), value.to_string())),
            None => rows.push((line.to_string(), String::new())),
        }
    }
    let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (name, value) in rows {
        if value.is_empty() {
            out.push_str(&name);
        } else {
            out.push_str(&format!("{name:<width$}  {value}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_page() -> String {
        let mut m = Metrics {
            requests: 3,
            sweeps: 2,
            cells_requested: 144,
            ..Metrics::default()
        };
        m.sweep_time.record_us(100);
        m.sweep_time.record_us(200);
        m.record_stage(Stage::Parse, 10);
        m.record_stage(Stage::QueueWait, 1000);
        let cache = CacheStats {
            hits: 72,
            misses: 72,
            insertions: 72,
            evictions: 0,
        };
        let sched = SchedulerStats {
            queue_depth: 1,
            in_flight: 2,
            simulated: 72,
            coalesced: 3,
            rejected: 0,
            batches: 4,
            eval_panics: 5,
            abandoned: 6,
            interactive_depth: 1,
            bulk_depth: 0,
            bulk_promotions: 7,
        };
        let mut lanes = LaneSnapshot {
            interactive_depth: 2,
            bulk_depth: 1,
            dispatched_interactive: 11,
            dispatched_bulk: 3,
            promoted_bulk: 1,
            ..LaneSnapshot::default()
        };
        lanes.wait_interactive.record_us(50);
        lanes.wait_bulk.record_us(5000);
        render(&m, &cache, 72, &sched, &lanes, 9)
    }

    #[test]
    fn renders_every_counter_once() {
        let page = sample_page();
        for want in [
            "sim_server_requests_total 3",
            "sim_server_sweeps_total 2",
            "sim_server_cells_requested_total 144",
            "sim_server_cache_hits 72",
            "sim_server_cache_misses 72",
            "sim_server_cache_entries 72",
            "sim_server_cells_simulated_total 72",
            "sim_server_cells_coalesced_total 3",
            "sim_server_queue_depth 1",
            "sim_server_in_flight 2",
            "sim_server_eval_panics_total 5",
            "sim_server_cells_abandoned_total 6",
            "sim_server_wait_timeouts_total 0",
            "sim_server_queue_depth_interactive 1",
            "sim_server_queue_depth_bulk 0",
            "sim_server_bulk_promotions_total 7",
            "sim_server_lane_depth_interactive 2",
            "sim_server_lane_depth_bulk 1",
            "sim_server_lane_dispatched_interactive_total 11",
            "sim_server_lane_dispatched_bulk_total 3",
            "sim_server_lane_promoted_bulk_total 1",
            "sim_server_lane_wait_interactive_us_count 1",
            "sim_server_lane_wait_bulk_us_bucket{le=\"8192\"} 1",
            "sim_server_uptime_seconds 9",
            // Legacy percentiles are now bucket upper bounds (100 -> 128,
            // 200 -> 256).
            "sim_server_sweep_time_p50_us 128",
            "sim_server_sweep_time_p95_us 256",
            "sim_server_sweep_time_mean_us 150",
            // Histogram families: cumulative buckets + sum + count.
            "sim_server_sweep_time_us_bucket{le=\"128\"} 1",
            "sim_server_sweep_time_us_bucket{le=\"+Inf\"} 2",
            "sim_server_sweep_time_us_count 2",
            "sim_server_stage_parse_us_count 1",
            "sim_server_stage_queue_wait_us_bucket{le=\"1024\"} 1",
            "sim_server_stage_eval_batch_us_count 0",
        ] {
            assert!(
                page.lines().any(|l| l == want),
                "missing {want:?} in:\n{page}"
            );
        }
        // Every family and scalar is annotated.
        assert!(page.contains("# HELP sim_server_requests_total "), "{page}");
        assert!(
            page.contains("# TYPE sim_server_sweep_time_us histogram"),
            "{page}"
        );
        // The page round-trips through the histogram parser.
        let h = telemetry::LatencyHistogram::parse(&page, "sim_server_sweep_time_us").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum_us(), 300);
    }

    #[test]
    fn aggregation_sums_counters_and_maxes_latencies() {
        let a = "sim_server_cache_hits 10\nsim_server_sweep_time_p95_us 500\n".to_string();
        let b = "sim_server_cache_hits 32\nsim_server_sweep_time_p95_us 200\nextra_total 1\n"
            .to_string();
        let merged = aggregate_pages(&[a, b]);
        assert_eq!(
            merged,
            "sim_server_cache_hits 42\nsim_server_sweep_time_p95_us 500\nextra_total 1\n"
        );
        // Uptime takes the oldest shard, not the sum.
        let merged = aggregate_pages(&[
            "sim_server_uptime_seconds 10\n".to_string(),
            "sim_server_uptime_seconds 3\n".to_string(),
        ]);
        assert_eq!(merged, "sim_server_uptime_seconds 10\n");
    }

    /// Each previously mis-summed gauge, pinned line by line: a declared
    /// gauge must aggregate max across pages, never sum.
    #[test]
    fn declared_gauges_aggregate_max_not_sum() {
        let page = |name: &str, v: u64| format!("# TYPE {name} gauge\n{name} {v}\n");
        let merged_value = |name: &str, line_name: &str, a: u64, b: u64| {
            let pages = [
                format!("# TYPE {name} gauge\n{line_name} {a}\n"),
                format!("# TYPE {name} gauge\n{line_name} {b}\n"),
            ];
            let merged = aggregate_pages(&pages);
            merged
                .lines()
                .find_map(|l| l.strip_prefix(&format!("{line_name} ")))
                .unwrap_or_else(|| panic!("no {line_name} line in:\n{merged}"))
                .parse::<u64>()
                .unwrap()
        };

        // sim_server_uptime_seconds: oldest shard, not fleet-total age.
        let m = aggregate_pages(&[page("sim_server_uptime_seconds", 10), {
            page("sim_server_uptime_seconds", 4)
        }]);
        assert!(m.contains("sim_server_uptime_seconds 10"), "{m}");

        // sim_router_replicas: every shard reports the same fleet-wide
        // replica count; 2 + 2 = 4 would double it.
        assert_eq!(
            merged_value("sim_router_replicas", "sim_router_replicas", 2, 2),
            2
        );

        // sim_router_breaker_state{shard="0"}: a 0/1 state, not a count —
        // the label block must not hide the family's TYPE declaration.
        assert_eq!(
            merged_value(
                "sim_router_breaker_state",
                "sim_router_breaker_state{shard=\"0\"}",
                1,
                0
            ),
            1
        );

        // Declared counters still sum even without a latency suffix...
        let pages = [
            "# TYPE sim_router_retries_total counter\nsim_router_retries_total 3\n".to_string(),
            "# TYPE sim_router_retries_total counter\nsim_router_retries_total 4\n".to_string(),
        ];
        assert!(
            aggregate_pages(&pages).contains("sim_router_retries_total 7"),
            "typed counters must sum"
        );
        // ...and extensive gauges (disjoint per-shard shares of one
        // fleet-wide quantity) still sum despite the gauge TYPE.
        for name in ["sim_server_queue_depth", "sim_server_lane_depth_bulk"] {
            let pages = [page(name, 2), page(name, 3)];
            let merged = aggregate_pages(&pages);
            assert!(merged.contains(&format!("{name} 5")), "{name}:\n{merged}");
        }
    }

    #[test]
    fn aggregation_keeps_one_sided_comments_and_raw_lines() {
        let a = "# HELP x y\n# TYPE x counter\nx 1\n".to_string();
        let b = "# HELP x y\nx 2\nonly_on_b 7\nweird not-a-number\n".to_string();
        let merged = aggregate_pages(&[a, b]);
        // Comments deduped, one-sided numeric lines kept, raw values
        // passed through verbatim.
        assert_eq!(
            merged,
            "# HELP x y\n# TYPE x counter\nx 3\nonly_on_b 7\nweird not-a-number\n"
        );
        // Float values survive and sum.
        let merged = aggregate_pages(&["f 1.5\n".to_string(), "f 2.25\n".to_string()]);
        assert_eq!(merged, "f 3.75\n");
    }

    #[test]
    fn aggregation_merges_histograms_exactly() {
        let page = |samples: &[u64]| {
            let mut h = LatencyHistogram::new();
            for &s in samples {
                h.record_us(s);
            }
            h.to_exposition("m_us")
        };
        let a = page(&[1, 100, 70_000]);
        let b = page(&[2, 100, 1 << 30]);
        let merged = aggregate_pages(&[a, b]);
        let got = LatencyHistogram::parse(&merged, "m_us").unwrap();
        let mut want = LatencyHistogram::new();
        for s in [1u64, 100, 70_000, 2, 100, 1 << 30] {
            want.record_us(s);
        }
        assert_eq!(got, want, "summed pages must equal the merged histogram");
    }

    #[test]
    fn pretty_aligns_and_summarizes_histograms() {
        let page = sample_page();
        let out = pretty(&page);
        // No comments, no raw bucket lines.
        assert!(!out.contains('#'), "{out}");
        assert!(!out.contains("_bucket{"), "{out}");
        assert!(!out.contains("sim_server_sweep_time_us_sum"), "{out}");
        // Scalar lines stay grep-compatible: name, spaces, value.
        let hits = out
            .lines()
            .find(|l| l.starts_with("sim_server_cache_hits"))
            .unwrap();
        assert!(
            hits.trim_end().ends_with(" 72") && hits.contains("  "),
            "{hits:?}"
        );
        // Histogram families collapse to a one-line summary.
        let sweep = out
            .lines()
            .find(|l| l.starts_with("sim_server_sweep_time_us "))
            .unwrap();
        assert!(sweep.contains("p50=128us"), "{sweep}");
        assert!(sweep.contains("p99=256us"), "{sweep}");
        assert!(sweep.contains("count=2"), "{sweep}");
        // All value columns start at the same offset: after the name,
        // the run of padding spaces ends at one shared column.
        let offsets: std::collections::HashSet<usize> = out
            .lines()
            .map(|l| {
                let sp = l.find(' ').unwrap();
                sp + l[sp..].chars().take_while(|c| *c == ' ').count()
            })
            .collect();
        assert_eq!(offsets.len(), 1, "misaligned columns:\n{out}");
    }
}
