//! `/metrics` counters and their text exposition.
//!
//! Plain `name value` lines (Prometheus-style exposition without types or
//! labels) so a shell script — the CI smoke job included — can assert on
//! them with `grep`. Wall-clock service times go through
//! [`telemetry::DurationStats`]; everything else is a monotone counter or
//! an instantaneous gauge sampled at render time.

use crate::cache::CacheStats;
use crate::scheduler::SchedulerStats;
use telemetry::DurationStats;

/// Server-level request counters + sweep service-time reservoir.
pub struct Metrics {
    pub requests: u64,
    pub sweeps: u64,
    pub cells_requested: u64,
    pub rejected_requests: u64,
    pub bad_requests: u64,
    pub sweep_time: DurationStats,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            requests: 0,
            sweeps: 0,
            cells_requested: 0,
            rejected_requests: 0,
            bad_requests: 0,
            sweep_time: DurationStats::new(4096),
        }
    }
}

/// Render the full metrics page from the three stat sources.
pub fn render(
    m: &Metrics,
    cache: &CacheStats,
    cache_entries: usize,
    sched: &SchedulerStats,
) -> String {
    let mut out = String::new();
    let mut line = |name: &str, v: u64| {
        out.push_str(name);
        out.push(' ');
        out.push_str(&v.to_string());
        out.push('\n');
    };
    line("sim_server_requests_total", m.requests);
    line("sim_server_sweeps_total", m.sweeps);
    line("sim_server_cells_requested_total", m.cells_requested);
    line("sim_server_rejected_requests_total", m.rejected_requests);
    line("sim_server_bad_requests_total", m.bad_requests);
    line("sim_server_cache_hits", cache.hits);
    line("sim_server_cache_misses", cache.misses);
    line("sim_server_cache_insertions", cache.insertions);
    line("sim_server_cache_evictions", cache.evictions);
    line("sim_server_cache_entries", cache_entries as u64);
    line("sim_server_cells_simulated_total", sched.simulated);
    line("sim_server_cells_coalesced_total", sched.coalesced);
    line("sim_server_sweeps_rejected_busy_total", sched.rejected);
    line("sim_server_batches_total", sched.batches);
    line("sim_server_eval_panics_total", sched.eval_panics);
    line("sim_server_cells_abandoned_total", sched.abandoned);
    line("sim_server_queue_depth", sched.queue_depth as u64);
    line("sim_server_in_flight", sched.in_flight as u64);
    line("sim_server_sweep_time_p50_us", m.sweep_time.p50_us());
    line("sim_server_sweep_time_p95_us", m.sweep_time.p95_us());
    line("sim_server_sweep_time_mean_us", m.sweep_time.mean_us());
    out
}

/// Aggregate several `name value` exposition pages (one per shard) into
/// one. Counters and gauges sum; latency lines (`*_us`) take the maximum
/// across shards — summing percentiles would fabricate a number no shard
/// ever observed, while the max is a true worst-shard bound. Line order
/// follows the first page; names missing from a page contribute nothing.
pub fn aggregate_pages(pages: &[String]) -> String {
    let mut order: Vec<&str> = Vec::new();
    let mut totals: std::collections::HashMap<&str, u64> = std::collections::HashMap::new();
    for page in pages {
        for line in page.lines() {
            let Some((name, value)) = line.rsplit_once(' ') else {
                continue;
            };
            let Ok(value) = value.parse::<u64>() else {
                continue;
            };
            let slot = totals.entry(name).or_insert_with(|| {
                order.push(name);
                0
            });
            if name.ends_with("_us") {
                *slot = (*slot).max(value);
            } else {
                *slot += value;
            }
        }
    }
    let mut out = String::new();
    for name in order {
        out.push_str(name);
        out.push(' ');
        out.push_str(&totals[name].to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_every_counter_once() {
        let mut m = Metrics {
            requests: 3,
            sweeps: 2,
            cells_requested: 144,
            ..Metrics::default()
        };
        m.sweep_time.record_us(100);
        m.sweep_time.record_us(200);
        let cache = CacheStats {
            hits: 72,
            misses: 72,
            insertions: 72,
            evictions: 0,
        };
        let sched = SchedulerStats {
            queue_depth: 1,
            in_flight: 2,
            simulated: 72,
            coalesced: 3,
            rejected: 0,
            batches: 4,
            eval_panics: 5,
            abandoned: 6,
        };
        let page = render(&m, &cache, 72, &sched);
        for want in [
            "sim_server_requests_total 3",
            "sim_server_sweeps_total 2",
            "sim_server_cells_requested_total 144",
            "sim_server_cache_hits 72",
            "sim_server_cache_misses 72",
            "sim_server_cache_entries 72",
            "sim_server_cells_simulated_total 72",
            "sim_server_cells_coalesced_total 3",
            "sim_server_queue_depth 1",
            "sim_server_in_flight 2",
            "sim_server_eval_panics_total 5",
            "sim_server_cells_abandoned_total 6",
            "sim_server_sweep_time_p50_us 100",
            "sim_server_sweep_time_p95_us 200",
        ] {
            assert!(
                page.lines().any(|l| l == want),
                "missing {want:?} in:\n{page}"
            );
        }
    }

    #[test]
    fn aggregation_sums_counters_and_maxes_latencies() {
        let a = "sim_server_cache_hits 10\nsim_server_sweep_time_p95_us 500\n".to_string();
        let b = "sim_server_cache_hits 32\nsim_server_sweep_time_p95_us 200\nextra_total 1\n"
            .to_string();
        let merged = aggregate_pages(&[a, b]);
        assert_eq!(
            merged,
            "sim_server_cache_hits 42\nsim_server_sweep_time_p95_us 500\nextra_total 1\n"
        );
        // Malformed lines are skipped, not fatal.
        let merged = aggregate_pages(&["garbage\nx notanumber\nok 1\n".to_string()]);
        assert_eq!(merged, "ok 1\n");
    }
}
