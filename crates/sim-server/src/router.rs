//! Consistent hashing for sharded serving: map [`CellKey`]s onto a ring
//! of shard indices.
//!
//! The router (`harness route`) partitions the cell key space across N
//! backend `harness serve` processes. Because a `CellKey` is a pure
//! function of the cell spec, the assignment is deterministic: the same
//! cell always lands on the same shard, so each shard's result cache
//! stays hot and duplicate in-flight work still coalesces inside one
//! process.
//!
//! Each shard contributes a fixed set of virtual points derived only
//! from its *index* — point sets are independent of the shard count, so
//! growing the fleet from N to N+1 shards only moves the keys that the
//! new shard's points capture (classic consistent hashing) instead of
//! reshuffling everything. Shard identity is positional: reordering the
//! `--shards` list remaps caches (documented in DESIGN.md §13).

use crate::key::{fnv1a64, CellKey};

/// Virtual points per shard. Enough to keep the expected imbalance low
/// (a few percent at double-digit shard counts) while the ring stays a
/// small, cache-friendly sorted array.
const VNODES: usize = 64;

/// SplitMix64 finalizer: a cheap bijective mixer. FNV-1a diffuses low
/// bits weakly; mixing both the ring points and the looked-up keys makes
/// placement insensitive to that bias.
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// A consistent-hash ring over `shards` shard indices.
#[derive(Clone, Debug)]
pub struct Ring {
    /// `(point, shard_index)`, sorted by point.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl Ring {
    /// Build the ring for `shards` shards. A zero-shard ring is not a
    /// meaningful router; callers validate the shard list first.
    pub fn new(shards: usize) -> Ring {
        assert!(shards > 0, "a ring needs at least one shard");
        let mut points = Vec::with_capacity(shards * VNODES);
        for shard in 0..shards {
            for vnode in 0..VNODES {
                let point = mix64(fnv1a64(format!("shard-{shard}-vnode-{vnode}").as_bytes()));
                points.push((point, shard));
            }
        }
        points.sort_unstable();
        Ring { points, shards }
    }

    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`: the first ring point at or after the
    /// key's mixed hash, wrapping at the top of the u64 space.
    pub fn shard_of(&self, key: CellKey) -> usize {
        let h = mix64(key.0);
        let i = self.points.partition_point(|&(p, _)| p < h);
        self.points[i % self.points.len()].1
    }

    /// The first `n` *distinct* shards owning `key`, walking the ring
    /// clockwise from the key's point: `owners(k, n)[0] == shard_of(k)`
    /// (the primary), the rest are successor replicas in ring order. The
    /// router fails a key over to `owners[1]` when the primary's breaker
    /// is open. `n` is clamped to the shard count.
    pub fn owners(&self, key: CellKey, n: usize) -> Vec<usize> {
        let want = n.clamp(1, self.shards);
        let h = mix64(key.0);
        let start = self.points.partition_point(|&(p, _)| p < h);
        let mut out = Vec::with_capacity(want);
        for off in 0..self.points.len() {
            let shard = self.points[(start + off) % self.points.len()].1;
            if !out.contains(&shard) {
                out.push(shard);
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64) -> impl Iterator<Item = CellKey> {
        // Spec-shaped inputs: hash strings, as real CellKeys are hashes.
        (0..n).map(|i| CellKey(fnv1a64(format!("cell-{i}").as_bytes())))
    }

    #[test]
    fn assignment_is_deterministic() {
        let a = Ring::new(4);
        let b = Ring::new(4);
        for k in keys(256) {
            assert_eq!(a.shard_of(k), b.shard_of(k));
        }
    }

    #[test]
    fn every_shard_takes_a_fair_share() {
        let ring = Ring::new(4);
        let mut counts = [0usize; 4];
        for k in keys(4000) {
            counts[ring.shard_of(k)] += 1;
        }
        for (shard, &c) in counts.iter().enumerate() {
            // Perfect balance is 1000; vnode hashing keeps every shard
            // within a loose band rather than starving one.
            assert!(
                (500..=1500).contains(&c),
                "shard {shard} got {c} of 4000 keys: {counts:?}"
            );
        }
    }

    /// The consistency property: adding a shard only moves keys *to* the
    /// new shard — keys staying on old shards keep their assignment, so
    /// a fleet resize does not invalidate every backend cache.
    #[test]
    fn growing_the_ring_only_moves_keys_to_the_new_shard() {
        let small = Ring::new(3);
        let grown = Ring::new(4);
        let mut moved = 0usize;
        let total = 4000usize;
        for k in keys(total as u64) {
            let (before, after) = (small.shard_of(k), grown.shard_of(k));
            if after != before {
                assert_eq!(after, 3, "key may only move to the new shard");
                moved += 1;
            }
        }
        // Expected churn is ~1/4 of the keys; require it to be well under
        // a naive rehash (which would move ~3/4).
        assert!(
            moved < total / 2,
            "resize moved {moved} of {total} keys — not consistent hashing"
        );
    }

    /// Replica placement: the primary leads the owner list, followers
    /// are distinct shards, and the list is deterministic.
    #[test]
    fn owners_are_distinct_and_led_by_the_primary() {
        let ring = Ring::new(4);
        for k in keys(512) {
            let owners = ring.owners(k, 2);
            assert_eq!(owners.len(), 2);
            assert_eq!(owners[0], ring.shard_of(k), "primary leads");
            assert_ne!(owners[0], owners[1], "follower is a distinct shard");
            assert_eq!(owners, ring.owners(k, 2), "deterministic");
        }
    }

    /// Requesting more replicas than shards clamps to the shard count;
    /// requesting zero still yields the primary.
    #[test]
    fn owners_clamp_to_the_fleet_size() {
        let ring = Ring::new(3);
        for k in keys(64) {
            let all = ring.owners(k, 10);
            assert_eq!(all.len(), 3);
            let mut sorted = all.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2], "all shards appear once");
            assert_eq!(ring.owners(k, 0), vec![ring.shard_of(k)]);
        }
        let single = Ring::new(1);
        for k in keys(16) {
            assert_eq!(single.owners(k, 2), vec![0]);
        }
    }

    /// Followers spread load: with 4 shards, no single shard is the
    /// follower for everything.
    #[test]
    fn followers_are_spread_across_the_fleet() {
        let ring = Ring::new(4);
        let mut follower_counts = [0usize; 4];
        for k in keys(4000) {
            follower_counts[ring.owners(k, 2)[1]] += 1;
        }
        for (shard, &c) in follower_counts.iter().enumerate() {
            assert!(
                c > 200,
                "shard {shard} follows only {c} of 4000 keys: {follower_counts:?}"
            );
        }
    }

    #[test]
    fn mix64_is_stable() {
        // Pinned values: ring placement is part of the deployment contract
        // (a silent mixer change would remap every shard's cache).
        assert_eq!(mix64(0), 0);
        assert_eq!(mix64(1), 0x5692_161d_100b_05e5);
        assert_eq!(mix64(0xdead_beef), 0x4e06_2702_ec92_9eea);
    }
}
