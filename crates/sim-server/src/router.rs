//! Consistent hashing for sharded serving: map [`CellKey`]s onto a ring
//! of shard indices.
//!
//! The router (`harness route`) partitions the cell key space across N
//! backend `harness serve` processes. Because a `CellKey` is a pure
//! function of the cell spec, the assignment is deterministic: the same
//! cell always lands on the same shard, so each shard's result cache
//! stays hot and duplicate in-flight work still coalesces inside one
//! process.
//!
//! Each shard contributes a fixed set of virtual points derived only
//! from its *index* — point sets are independent of the shard count, so
//! growing the fleet from N to N+1 shards only moves the keys that the
//! new shard's points capture (classic consistent hashing) instead of
//! reshuffling everything. Shard identity is positional: reordering the
//! `--shards` list remaps caches (documented in DESIGN.md §13).

use crate::key::{fnv1a64, CellKey};

/// Virtual points per shard. Enough to keep the expected imbalance low
/// (a few percent at double-digit shard counts) while the ring stays a
/// small, cache-friendly sorted array.
const VNODES: usize = 64;

/// SplitMix64 finalizer: a cheap bijective mixer. FNV-1a diffuses low
/// bits weakly; mixing both the ring points and the looked-up keys makes
/// placement insensitive to that bias.
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// A consistent-hash ring over `shards` shard indices.
#[derive(Clone, Debug)]
pub struct Ring {
    /// `(point, shard_index)`, sorted by point.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl Ring {
    /// Build the ring for `shards` shards. A zero-shard ring is not a
    /// meaningful router; callers validate the shard list first.
    pub fn new(shards: usize) -> Ring {
        assert!(shards > 0, "a ring needs at least one shard");
        let mut points = Vec::with_capacity(shards * VNODES);
        for shard in 0..shards {
            for vnode in 0..VNODES {
                let point = mix64(fnv1a64(format!("shard-{shard}-vnode-{vnode}").as_bytes()));
                points.push((point, shard));
            }
        }
        points.sort_unstable();
        Ring { points, shards }
    }

    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`: the first ring point at or after the
    /// key's mixed hash, wrapping at the top of the u64 space.
    pub fn shard_of(&self, key: CellKey) -> usize {
        let h = mix64(key.0);
        let i = self.points.partition_point(|&(p, _)| p < h);
        self.points[i % self.points.len()].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64) -> impl Iterator<Item = CellKey> {
        // Spec-shaped inputs: hash strings, as real CellKeys are hashes.
        (0..n).map(|i| CellKey(fnv1a64(format!("cell-{i}").as_bytes())))
    }

    #[test]
    fn assignment_is_deterministic() {
        let a = Ring::new(4);
        let b = Ring::new(4);
        for k in keys(256) {
            assert_eq!(a.shard_of(k), b.shard_of(k));
        }
    }

    #[test]
    fn every_shard_takes_a_fair_share() {
        let ring = Ring::new(4);
        let mut counts = [0usize; 4];
        for k in keys(4000) {
            counts[ring.shard_of(k)] += 1;
        }
        for (shard, &c) in counts.iter().enumerate() {
            // Perfect balance is 1000; vnode hashing keeps every shard
            // within a loose band rather than starving one.
            assert!(
                (500..=1500).contains(&c),
                "shard {shard} got {c} of 4000 keys: {counts:?}"
            );
        }
    }

    /// The consistency property: adding a shard only moves keys *to* the
    /// new shard — keys staying on old shards keep their assignment, so
    /// a fleet resize does not invalidate every backend cache.
    #[test]
    fn growing_the_ring_only_moves_keys_to_the_new_shard() {
        let small = Ring::new(3);
        let grown = Ring::new(4);
        let mut moved = 0usize;
        let total = 4000usize;
        for k in keys(total as u64) {
            let (before, after) = (small.shard_of(k), grown.shard_of(k));
            if after != before {
                assert_eq!(after, 3, "key may only move to the new shard");
                moved += 1;
            }
        }
        // Expected churn is ~1/4 of the keys; require it to be well under
        // a naive rehash (which would move ~3/4).
        assert!(
            moved < total / 2,
            "resize moved {moved} of {total} keys — not consistent hashing"
        );
    }

    #[test]
    fn mix64_is_stable() {
        // Pinned values: ring placement is part of the deployment contract
        // (a silent mixer change would remap every shard's cache).
        assert_eq!(mix64(0), 0);
        assert_eq!(mix64(1), 0x5692_161d_100b_05e5);
        assert_eq!(mix64(0xdead_beef), 0x4e06_2702_ec92_9eea);
    }
}
