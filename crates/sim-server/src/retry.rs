//! Seeded retry policy for the serving fleet's clients.
//!
//! Transient transport failures (a shard restarting, an injected chaos
//! fault) should cost a bounded number of re-attempts with exponential
//! backoff, not fail a whole sweep. The jitter is a **pure function** of
//! `(seed, salt, attempt)` via SplitMix64 — same discipline as
//! `sim-faults` — so a chaotic run retries identically at any thread
//! count. Callers skip the *real* sleep entirely for injected faults
//! (`sim_faults::is_injected`), keeping chaos tests fast.

use sim_rng::SplitMix64;

/// Fallback `Retry-After`, in seconds, when a 429 carries a malformed or
/// missing header (documented default: 1 s).
pub const DEFAULT_RETRY_AFTER_SECS: u64 = 1;

/// Bounded, seeded exponential backoff.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per request; `1` means no retries.
    pub budget: u32,
    /// Base backoff in milliseconds; retry `k` (0-based) backs off
    /// `base_ms << k` plus jitter.
    pub base_ms: u64,
    /// Cap on any single computed backoff, in milliseconds.
    pub cap_ms: u64,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            budget: 3,
            base_ms: 50,
            cap_ms: 2_000,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry `attempt` (0-based) of the request scoped by
    /// `salt` (e.g. a hash of the request body): exponential in the
    /// attempt with seeded jitter in `[0, base_ms)`, capped at `cap_ms`.
    /// A pure function of `(seed, salt, attempt)`.
    pub fn backoff_ms(&self, salt: u64, attempt: u32) -> u64 {
        let exp = self.base_ms.saturating_mul(1u64 << attempt.min(16));
        let mut sm = SplitMix64::new(
            self.seed
                ^ salt.rotate_left(17)
                ^ (attempt as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let jitter = sm.next_u64() % self.base_ms.max(1);
        exp.saturating_add(jitter).min(self.cap_ms)
    }
}

/// Parse a `Retry-After` header (delta-seconds form). A malformed or
/// absent value falls back to [`DEFAULT_RETRY_AFTER_SECS`] instead of
/// being silently dropped.
pub fn parse_retry_after(value: Option<&str>) -> u64 {
    value
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(DEFAULT_RETRY_AFTER_SECS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_grows() {
        let p = RetryPolicy::default();
        for salt in [0u64, 7, 0xdead_beef] {
            for attempt in 0..4 {
                assert_eq!(p.backoff_ms(salt, attempt), p.backoff_ms(salt, attempt));
            }
        }
        // Exponential floor: each retry's backoff is at least the base
        // shifted, until the cap kicks in.
        let b0 = p.backoff_ms(1, 0);
        let b1 = p.backoff_ms(1, 1);
        let b2 = p.backoff_ms(1, 2);
        assert!((50..100).contains(&b0), "{b0}");
        assert!((100..200).contains(&b1), "{b1}");
        assert!((200..400).contains(&b2), "{b2}");
        assert_eq!(p.backoff_ms(1, 16), p.cap_ms, "large attempts hit the cap");
    }

    #[test]
    fn backoff_jitter_decorrelates_salts() {
        let p = RetryPolicy::default();
        let a: Vec<u64> = (0..4).map(|k| p.backoff_ms(1, k)).collect();
        let b: Vec<u64> = (0..4).map(|k| p.backoff_ms(2, k)).collect();
        assert_ne!(a, b, "different requests jitter differently");
    }

    #[test]
    fn retry_after_falls_back_to_documented_default() {
        assert_eq!(parse_retry_after(Some("3")), 3);
        assert_eq!(parse_retry_after(Some(" 12 ")), 12);
        assert_eq!(parse_retry_after(Some("soon")), DEFAULT_RETRY_AFTER_SECS);
        assert_eq!(parse_retry_after(Some("-1")), DEFAULT_RETRY_AFTER_SECS);
        assert_eq!(parse_retry_after(Some("")), DEFAULT_RETRY_AFTER_SECS);
        assert_eq!(parse_retry_after(None), DEFAULT_RETRY_AFTER_SECS);
    }
}
