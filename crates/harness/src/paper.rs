//! The paper's reported numbers (Figures 2–4 and §V text), used as the
//! reproduction targets in every printed table.
//!
//! Values the paper states numerically are exact; bar heights only readable
//! off the figures are approximate (marked in comments); `None` means the
//! paper gives no per-benchmark number (e.g. most OpenMP bars) or the bar
//! does not exist (amcd double-precision GPU versions).

use hpc_kernels::{Precision, Variant};

/// Benchmarks in figure order.
pub const BENCH_ORDER: [&str; 9] = [
    "spmv", "vecop", "hist", "3dstc", "red", "amcd", "nbody", "2dcon", "dmmm",
];

/// Paper speedup over Serial (Figure 2).
pub fn speedup(bench: &str, variant: Variant, prec: Precision) -> Option<f64> {
    use Precision::*;
    use Variant::*;
    let v = match (prec, variant, bench) {
        // ---- Figure 2(a), single precision --------------------------
        (F32, OpenCl, "spmv") => 0.8, // "performance degradation" (bar)
        (F32, OpenCl, "vecop") => 0.9, // bar
        (F32, OpenCl, "hist") => 0.85, // bar
        (F32, OpenCl, "3dstc") => 1.4, // §V-A text
        (F32, OpenCl, "red") => 2.1,  // text
        (F32, OpenCl, "amcd") => 4.1, // text
        (F32, OpenCl, "nbody") => 17.2, // text
        (F32, OpenCl, "2dcon") => 3.6, // text
        (F32, OpenCl, "dmmm") => 6.2, // text
        (F32, OpenClOpt, "spmv") => 1.25, // text
        (F32, OpenClOpt, "vecop") => 2.2, // "between 2x and 4x" (bar)
        (F32, OpenClOpt, "hist") => 2.5, // bar
        (F32, OpenClOpt, "3dstc") => 3.0, // bar
        (F32, OpenClOpt, "red") => 3.5, // bar
        (F32, OpenClOpt, "amcd") => 4.7, // text
        (F32, OpenClOpt, "nbody") => 20.0, // text
        (F32, OpenClOpt, "2dcon") => 24.0, // text
        (F32, OpenClOpt, "dmmm") => 25.5, // text
        // ---- Figure 2(b), double precision ---------------------------
        (F64, OpenCl, "spmv") => 0.8, // "lower performance than Serial"
        (F64, OpenCl, "vecop") => 1.5, // text
        (F64, OpenCl, "hist") => 0.9, // bar
        (F64, OpenCl, "3dstc") => 1.6, // text
        (F64, OpenCl, "red") => 1.7,  // text
        (F64, OpenCl, "nbody") => 9.3, // text
        (F64, OpenCl, "2dcon") => 3.5, // text
        (F64, OpenCl, "dmmm") => 8.9, // text
        (F64, OpenClOpt, "spmv") => 1.2, // "below 2x"
        (F64, OpenClOpt, "vecop") => 1.6, // "below 2x"
        (F64, OpenClOpt, "hist") => 3.0, // text
        (F64, OpenClOpt, "3dstc") => 3.4, // text
        (F64, OpenClOpt, "red") => 1.8, // "below 2x"
        (F64, OpenClOpt, "nbody") => 10.0, // text
        (F64, OpenClOpt, "2dcon") => 9.6, // text
        (F64, OpenClOpt, "dmmm") => 30.0, // text
        // amcd double GPU bars do not exist (compiler bug).
        (F64, OpenCl | OpenClOpt, "amcd") => return None,
        // OpenMP bars: only the aggregate is reported (1.2x–1.9x, avg 1.7).
        (_, OpenMp, _) => return None,
        (_, Serial, _) => 1.0,
        _ => return None,
    };
    Some(v)
}

/// Aggregate OpenMP speedup band of §V-A.
pub const OMP_SPEEDUP_BAND: (f64, f64) = (1.2, 1.9);
pub const OMP_SPEEDUP_AVG: f64 = 1.7;

/// Paper power normalized to Serial (Figure 3, single precision; double
/// "follows similar trends").
pub fn power_ratio(bench: &str, variant: Variant) -> Option<f64> {
    use Variant::*;
    let v = match (variant, bench) {
        (OpenMp, "vecop") => 1.23,  // §V-B text: +23%
        (OpenMp, "nbody") => 1.45,  // +45%
        (OpenMp, _) => return None, // avg +31% reported
        (OpenCl, "spmv") => 0.87,   // −13%
        (OpenCl, "vecop") => 0.93,  // −7%
        (OpenCl, "hist") => 0.81,   // −19%
        (OpenCl, "amcd") => 1.22,   // "up to 22%"
        (OpenCl, "dmmm") => 1.22,
        (OpenCl, _) => return None,    // avg +7%
        (OpenClOpt, _) => return None, // "very similar" to OpenCL except hist/dmmm
        (Serial, _) => 1.0,
    };
    Some(v)
}

pub const OMP_POWER_AVG: f64 = 1.31;
pub const OCL_POWER_AVG: f64 = 1.07;

/// Paper energy-to-solution normalized to Serial (Figure 4).
pub fn energy_ratio(bench: &str, variant: Variant, prec: Precision) -> Option<f64> {
    use Precision::*;
    use Variant::*;
    let v = match (prec, variant, bench) {
        (F32, OpenCl, "red") => 0.49,     // "51% reduction"
        (F32, OpenCl, "nbody") => 0.07,   // "93%"
        (F32, OpenClOpt, "spmv") => 0.66, // "34%"
        (F32, OpenClOpt, "dmmm") => 0.04, // "96%"
        (F64, OpenCl | OpenClOpt, "amcd") => return None,
        (_, Serial, _) => 1.0,
        _ => return None,
    };
    Some(v)
}

/// §V-C aggregates: mean energy vs Serial.
pub const ENERGY_AVG_F32: (f64, f64) = (0.56, 0.28); // (OpenCL, OpenCL Opt)
pub const ENERGY_AVG_F64: (f64, f64) = (0.56, 0.36);
pub const ENERGY_AVG_OMP_F32: f64 = 0.80;

/// Headline result (§V-D): average OpenCL-Opt speedup over Serial across
/// both precisions, and its energy fraction.
pub const HEADLINE_SPEEDUP: f64 = 8.7;
pub const HEADLINE_ENERGY: f64 = 0.32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_numbers_present() {
        assert_eq!(
            speedup("nbody", Variant::OpenCl, Precision::F32),
            Some(17.2)
        );
        assert_eq!(
            speedup("dmmm", Variant::OpenClOpt, Precision::F64),
            Some(30.0)
        );
        assert_eq!(speedup("amcd", Variant::OpenCl, Precision::F64), None);
        assert_eq!(power_ratio("hist", Variant::OpenCl), Some(0.81));
        assert_eq!(
            energy_ratio("dmmm", Variant::OpenClOpt, Precision::F32),
            Some(0.04)
        );
    }

    #[test]
    fn paper_average_consistency() {
        // The figure-2 targets should average to roughly the 8.7x headline.
        let mut vals = Vec::new();
        for prec in Precision::ALL {
            for b in BENCH_ORDER {
                if let Some(s) = speedup(b, Variant::OpenClOpt, prec) {
                    vals.push(s);
                }
            }
        }
        let avg = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!(
            (avg - HEADLINE_SPEEDUP).abs() < 1.0,
            "targets average {avg:.1}, headline {HEADLINE_SPEEDUP}"
        );
    }
}
