//! `harness serve` / `harness submit` — the experiment service.
//!
//! This module mounts the generic `sim-server` kernel (HTTP, cache,
//! scheduler) onto the simulator: request cells are normalized through
//! [`checkpoint::cell_spec`] into the same key space the `simstate v3`
//! checkpoint uses, results are stored as [`checkpoint::encode_entry`]
//! payloads, and sweep responses are rendered by [`export::jsonl_row`] —
//! the exact formatter behind `harness jsonl`. Those three shared code
//! paths are what make the service's contract hold: a served sweep is
//! byte-identical to the offline artifact, a warm cache is
//! indistinguishable from a cold one, and a checkpoint file warm-starts
//! the cache without translation.
//!
//! Endpoints (see DESIGN.md §12 and the README quickstart):
//!
//! * `POST /v1/sweep` — JSON batch request, JSONL response rows in
//!   request order. Ratio columns (speedup/power/energy) are computed
//!   over the *request's* result set, so a full-grid sweep reproduces
//!   `harness jsonl` exactly and a subset sweep reports `null` where the
//!   serial baseline was not requested.
//! * `GET /v1/cell/<key>` — inspect one cached cell by content address
//!   (no LRU or counter side effects).
//! * `GET /metrics` — text exposition of cache/scheduler/service
//!   counters.
//! * `GET /healthz` — liveness.
//! * `POST /v1/shutdown` — graceful stop: in-flight work drains, the
//!   cache is persisted, the acceptor exits.
//!
//! Determinism: a cell's bytes are a pure function of its spec (the
//! simulator's existing thread-count guarantee), so cache state,
//! coalescing, batching and arrival order can change only *when* a cell
//! is computed, never what the client receives.

use crate::checkpoint::{self, cell_spec, coord_spec};
use crate::export;
use crate::runner::{
    run_one, CellCoord, CellEntry, CellError, FailKind, SuiteConfig, SuiteResults,
};
use hpc_kernels::{Benchmark, Precision, Variant};
use sim_server::cache::Cache;
use sim_server::http::{self, Request, Response, Server, StopHandle};
use sim_server::json::{self, Json};
use sim_server::key::{CellKey, CellSpec};
use sim_server::metrics::{self, Metrics, Stage};
use sim_server::reqtrace::{us_since, RequestRecord, TraceConfig, TraceId, Tracer, TRACE_HEADER};
use sim_server::retry::RetryPolicy;
use sim_server::scheduler::{AdmitError, Lane, Scheduler, Slot};
use std::collections::{HashMap, HashSet};
use std::io::{self, Write};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use telemetry::log;

/// Server configuration (CLI flags map onto this 1:1).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Cell cache capacity (entries); 0 disables caching.
    pub capacity: usize,
    /// Scheduler queue bound; sweeps that would push past it get 429.
    pub queue_cap: usize,
    /// Cache persistence file (`simcache v1`, written atomically after
    /// every completed batch and on shutdown).
    pub cache_path: Option<PathBuf>,
    /// `simstate v3` checkpoint files to warm-start the cache from.
    pub warm: Vec<PathBuf>,
    /// Request-trace output directory (`--trace-dir`); `None` disables
    /// tracing. Tracing writes headers and files only — response bytes
    /// are untouched.
    pub trace_dir: Option<PathBuf>,
    /// Deterministic 1-in-N trace sampling (`--trace-sample`); 0 samples
    /// nothing (slow requests may still be force-sampled).
    pub trace_sample: u64,
    /// Force-sample requests slower than this (`--slow-ms`).
    pub slow_ms: Option<u64>,
    /// Per-connection socket I/O timeout (`--timeout-ms`); `None` uses
    /// [`http::DEFAULT_IO_TIMEOUT_MS`]. Also bounds how long a handler
    /// waits for a wedged evaluation before answering 503.
    pub timeout_ms: Option<u64>,
    /// Handler worker threads (`--workers`); requests beyond this run
    /// concurrently only at the connection level, queued in the lanes.
    pub workers: usize,
    /// Sweeps naming at most this many cells share the interactive lane
    /// with `GET /v1/cell` (`--priority-cells`); larger sweeps are bulk.
    pub priority_cells: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8080".into(),
            capacity: 1024,
            queue_cap: 256,
            cache_path: None,
            warm: Vec::new(),
            trace_dir: None,
            trace_sample: 0,
            slow_ms: None,
            timeout_ms: None,
            workers: http::DEFAULT_WORKERS,
            priority_cells: http::DEFAULT_PRIORITY_CELLS,
        }
    }
}

/// Build the [`Tracer`] for a serving process from its CLI-level knobs.
/// Shared by `harness serve` and `harness route`.
pub(crate) fn make_tracer(
    trace_dir: &Option<PathBuf>,
    trace_sample: u64,
    slow_ms: Option<u64>,
    service: &str,
) -> io::Result<Tracer> {
    match trace_dir {
        None => Ok(Tracer::disabled()),
        Some(dir) => Tracer::new(
            TraceConfig {
                dir: dir.clone(),
                sample: trace_sample,
                slow_ms,
            },
            service,
        ),
    }
}

/// Labels accepted (and emitted) on the wire, in suite order.
const VERSIONS: [Variant; 4] = Variant::ALL;
const SCALES: [&str; 2] = ["test", "paper"];

fn variant_from_wire(s: &str) -> Option<Variant> {
    VERSIONS
        .into_iter()
        .find(|v| v.label().replace(' ', "-") == s)
}

fn precision_from_wire(s: &str) -> Option<Precision> {
    match s {
        "single" => Some(Precision::F32),
        "double" => Some(Precision::F64),
        _ => None,
    }
}

pub(crate) fn spec_coord(spec: &CellSpec) -> Option<(CellCoord, Precision)> {
    let v = variant_from_wire(&spec.version)?;
    let prec = match spec.precision {
        32 => Precision::F32,
        64 => Precision::F64,
        _ => return None,
    };
    Some(((spec.bench.clone(), v, spec.precision), prec))
}

/// Precision back onto the wire ("single" / "double"); inverse of
/// [`precision_from_wire`] for valid specs.
pub(crate) fn precision_to_wire(bits: u8) -> &'static str {
    if bits == 64 {
        "double"
    } else {
        "single"
    }
}

/// Parse and validate a sweep request body into specs + coords, in
/// request order. Returns a human-readable error for a 400. Shared by
/// the single-process engine and the `harness route` front (the router
/// must resolve cell keys itself to partition the sweep by shard).
pub(crate) fn parse_sweep(
    bench_names: &[String],
    body: &[u8],
) -> Result<Vec<(CellSpec, Precision)>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = json::parse(text).map_err(|e| format!("bad JSON: {e}"))?;
    let scale = match doc.get("scale") {
        None => "test",
        Some(s) => s.as_str().ok_or("'scale' must be a string")?,
    };
    if !SCALES.contains(&scale) {
        return Err(format!("unknown scale '{scale}' (have: test, paper)"));
    }
    let fault_seed = match doc.get("fault_seed") {
        None => None,
        Some(Json::Null) => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or("'fault_seed' must be an unsigned integer")?,
        ),
    };
    let passes = match doc.get("passes") {
        None => None,
        Some(Json::Null) => None,
        Some(v) => {
            let s = v.as_str().ok_or("'passes' must be a string")?;
            // Admission-time validation: reject unknown pass names with a
            // 400 instead of failing every cell at evaluation time. The
            // canonical (normalized) form goes into the key so equivalent
            // spellings share a content address.
            let pl = kernel_ir::opt::Pipeline::parse(s).map_err(|e| format!("'passes': {e}"))?;
            Some(pl.to_string())
        }
    };
    let cells = doc.get("cells").ok_or("missing 'cells'")?;
    let mut out = Vec::new();
    if cells.as_str() == Some("all") {
        for bench in bench_names {
            for prec in Precision::ALL {
                for v in VERSIONS {
                    out.push((
                        cell_spec(scale, fault_seed, passes.as_deref(), bench, v, prec),
                        prec,
                    ));
                }
            }
        }
        return Ok(out);
    }
    let arr = cells
        .as_arr()
        .ok_or("'cells' must be \"all\" or an array")?;
    if arr.is_empty() {
        return Err("'cells' is empty".into());
    }
    for (i, c) in arr.iter().enumerate() {
        let field = |k: &str| -> Result<&str, String> {
            c.get(k)
                .and_then(Json::as_str)
                .ok_or(format!("cells[{i}]: missing string field '{k}'"))
        };
        let bench = field("bench")?;
        if !bench_names.iter().any(|b| b == bench) {
            return Err(format!(
                "cells[{i}]: unknown benchmark '{bench}' (have: {})",
                bench_names.join(", ")
            ));
        }
        let version = field("version")?;
        let v = variant_from_wire(version).ok_or(format!(
            "cells[{i}]: unknown version '{version}' (have: Serial, OpenMP, OpenCL, OpenCL-Opt)"
        ))?;
        let precision = field("precision")?;
        let prec = precision_from_wire(precision).ok_or(format!(
            "cells[{i}]: unknown precision '{precision}' (have: single, double)"
        ))?;
        out.push((
            cell_spec(scale, fault_seed, passes.as_deref(), bench, v, prec),
            prec,
        ));
    }
    Ok(out)
}

// ---- evaluation (dispatcher side) ----

/// Evaluate one batch of distinct cells on `sim-pool` and return one
/// encoded payload per spec, in order. Runs on the dispatcher thread, so
/// the pool's fork/join region is entered from exactly one place.
fn eval_batch(
    test: &[Box<dyn Benchmark>],
    paper: &[Box<dyn Benchmark>],
    batch: &[CellSpec],
) -> Vec<String> {
    let raw = sim_pool::try_parallel_map(batch.len(), |i| {
        let spec = &batch[i];
        let benches = if spec.scale == "test" { test } else { paper };
        let Some(((bench, v, _), prec)) = spec_coord(spec) else {
            // Admission validates specs; reaching this means a bug, but a
            // structured failure row beats a panic in a long-lived server.
            return CellEntry::Failed(CellError {
                kind: FailKind::Launch,
                message: format!("unresolvable cell spec: {}", spec.canonical()),
                attempts: 0,
                backoff_ms: 0,
            });
        };
        let Some(bi) = benches.iter().position(|b| b.name() == bench) else {
            return CellEntry::Failed(CellError {
                kind: FailKind::Launch,
                message: format!("unknown benchmark '{bench}'"),
                attempts: 0,
                backoff_ms: 0,
            });
        };
        // Specs are validated at admission, so a parse failure here means
        // the key was forged; fail the cell rather than silently running
        // it unoptimized under an optimized key.
        let passes = match spec.passes.as_deref().map(kernel_ir::opt::Pipeline::parse) {
            None => None,
            Some(Ok(pl)) => Some(pl),
            Some(Err(e)) => {
                return CellEntry::Failed(CellError {
                    kind: FailKind::Launch,
                    message: format!("bad pass pipeline in cell spec: {e}"),
                    attempts: 0,
                    backoff_ms: 0,
                })
            }
        };
        let cfg = SuiteConfig {
            faults: spec.fault_seed.map(sim_faults::FaultPlan::new),
            passes,
            ..SuiteConfig::default()
        };
        run_one(benches[bi].as_ref(), bi, v, prec, &cfg)
    });
    raw.into_iter()
        .map(|r| match r {
            Ok(entry) => entry,
            Err(tp) => CellEntry::Failed(CellError {
                kind: FailKind::WorkerPanic,
                message: tp.message,
                attempts: 1,
                backoff_ms: 0,
            }),
        })
        .map(|e| checkpoint::encode_entry(&e))
        .collect()
}

// ---- the engine ----

/// Where a request's resolution time went, filled by [`Engine::resolve`].
/// Per-cell vectors feed the stage histograms; the `_total` fields feed
/// the request's trace spans.
#[derive(Default)]
struct ResolveReport {
    cache_hits: u64,
    cache_misses: u64,
    /// Per distinct cell: one cache-probe duration.
    lookup_us: Vec<u64>,
    /// Per evaluated cell: admission-to-dispatch wait.
    queue_us: Vec<u64>,
    /// Per evaluated cell: its batch's evaluation time.
    eval_us: Vec<u64>,
    /// Wall-clock of the whole cache-probe loop.
    lookup_total_us: u64,
    /// Wall-clock of the scheduler admission call.
    admit_us: u64,
    /// Wall-clock spent blocked on slots.
    wait_total_us: u64,
}

struct Engine {
    cache: Arc<Mutex<Cache>>,
    scheduler: Scheduler,
    metrics: Mutex<Metrics>,
    /// Benchmark names in suite order (identical for both scales).
    bench_names: Vec<String>,
    stop: StopHandle,
    cache_path: Option<PathBuf>,
    tracer: Tracer,
    started: Instant,
    /// The HTTP server's per-lane dispatch counters, shared so the
    /// `/metrics` page can render them.
    lanes: Arc<http::LaneMetrics>,
    /// Upper bound on one slot wait before the handler answers 503.
    wait_timeout: Duration,
    /// Sweeps at most this large enter the scheduler's interactive lane.
    priority_cells: usize,
}

fn persist(cache: &Cache, path: &Option<PathBuf>) {
    if let Some(p) = path {
        if let Err(e) = crate::artifact::atomic_write(p, &cache.snapshot()) {
            log::progress(&format!(
                "warning: cache persist to {} failed: {e}",
                p.display()
            ));
        }
    }
}

impl Engine {
    fn new(
        cfg: &ServeConfig,
        stop: StopHandle,
        lanes: Arc<http::LaneMetrics>,
    ) -> io::Result<Engine> {
        let tracer = make_tracer(
            &cfg.trace_dir,
            cfg.trace_sample,
            cfg.slow_ms,
            &format!("sim-server {}", cfg.addr),
        )?;
        let bench_names: Vec<String> = hpc_kernels::test_suite()
            .iter()
            .map(|b| b.name().to_string())
            .collect();

        let mut cache = Cache::new(cfg.capacity);
        if let Some(path) = &cfg.cache_path {
            if let Ok(bytes) = std::fs::read(path) {
                let n = cache
                    .restore(&bytes, |payload| {
                        checkpoint::decode_entry(payload).is_some()
                    })
                    .unwrap_or(0);
                log::progress(&format!(
                    "cache: restored {n} cells from {}",
                    path.display()
                ));
            }
        }
        for path in &cfg.warm {
            match checkpoint::load(path) {
                Some((header, entries)) => {
                    // Sorted for a deterministic LRU stamp order.
                    let mut coords: Vec<&CellCoord> = entries.keys().collect();
                    coords.sort_by_key(|(b, v, p)| {
                        (b.clone(), Variant::ALL.iter().position(|x| x == v), *p)
                    });
                    let mut n = 0usize;
                    for coord in coords {
                        if let Some(spec) = coord_spec(
                            &header.tag,
                            header.fault_seed,
                            header.passes.as_deref(),
                            coord,
                        ) {
                            cache.insert(spec, checkpoint::encode_entry(&entries[coord]));
                            n += 1;
                        }
                    }
                    log::progress(&format!(
                        "cache: warmed {n} cells from checkpoint {}",
                        path.display()
                    ));
                }
                None => log::progress(&format!(
                    "warning: checkpoint {} unreadable; skipped",
                    path.display()
                )),
            }
        }
        let cache = Arc::new(Mutex::new(cache));

        let scheduler = {
            let cache = cache.clone();
            let cache_path = cfg.cache_path.clone();
            Scheduler::start(cfg.queue_cap, move || {
                // Built on the dispatcher thread: benchmark suites are
                // `Sync` but deliberately not `Send`.
                let test = hpc_kernels::test_suite();
                let paper = hpc_kernels::suite();
                move |batch: &[CellSpec]| {
                    let payloads = eval_batch(&test, &paper, batch);
                    let mut c = cache.lock().unwrap_or_else(|e| e.into_inner());
                    for (spec, payload) in batch.iter().zip(&payloads) {
                        c.insert(spec.clone(), payload.clone());
                    }
                    persist(&c, &cache_path);
                    payloads
                }
            })
        };

        Ok(Engine {
            cache,
            scheduler,
            metrics: Mutex::new(Metrics::default()),
            bench_names,
            stop,
            cache_path: cfg.cache_path.clone(),
            tracer,
            started: Instant::now(),
            lanes,
            wait_timeout: Duration::from_millis(cfg.timeout_ms.unwrap_or(http::DEFAULT_TIMEOUT_MS)),
            priority_cells: cfg.priority_cells,
        })
    }

    fn handle(&self, req: &Request) -> Response {
        let t0 = Instant::now();
        // One trace id per request: the inbound header's (the router
        // propagates its ingress id to every shard) or a fresh one. Ids
        // live in headers, log lines and trace files only — never in the
        // response body, so tracing cannot perturb byte-identity.
        let id = TraceId::from_header(req.header(TRACE_HEADER));
        self.metrics
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .requests += 1;
        let resp = match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => Response::text(200, "ok\n"),
            ("GET", "/metrics") => self.metrics_page(),
            ("POST", "/v1/sweep") => self.traced(req, id, t0, Self::sweep),
            ("POST", "/v1/cells") => self.traced(req, id, t0, Self::cells),
            ("POST", "/v1/shutdown") => {
                persist(
                    &self.cache.lock().unwrap_or_else(|e| e.into_inner()),
                    &self.cache_path,
                );
                self.stop.stop();
                Response::text(200, "shutting down\n")
            }
            ("GET", path) if path.starts_with("/v1/cell/") => self.cell(&path["/v1/cell/".len()..]),
            _ => Response::json(404, "{\"error\":\"no such route\"}\n"),
        };
        resp.with_header(TRACE_HEADER, &id.to_string())
    }

    /// Run a sweep-evaluating endpoint with per-request tracing: build
    /// the span record, time the whole request, and hand the finished
    /// record to the tracer (request log + sampled Perfetto file).
    fn traced(
        &self,
        req: &Request,
        id: TraceId,
        t0: Instant,
        endpoint: fn(&Self, &Request, &mut RequestRecord) -> Response,
    ) -> Response {
        let mut rec = RequestRecord::new(id, &req.path);
        let resp = endpoint(self, req, &mut rec);
        rec.status = resp.status;
        rec.total_us = us_since(t0);
        self.tracer.finish(&rec);
        resp
    }

    fn metrics_page(&self) -> Response {
        let cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        let (cache_stats, entries) = (cache.stats(), cache.len());
        drop(cache);
        let sched = self.scheduler.stats();
        let lanes = self.lanes.snapshot();
        let m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        Response::text(
            200,
            metrics::render(
                &m,
                &cache_stats,
                entries,
                &sched,
                &lanes,
                self.started.elapsed().as_secs(),
            ),
        )
    }

    fn bad(&self, msg: &str) -> Response {
        self.metrics
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .bad_requests += 1;
        Response::json(400, format!("{{\"error\":\"{}\"}}\n", json::escape(msg)))
    }

    /// `GET /v1/cell/<key>`: pure inspection — `peek`, no LRU stamp
    /// refresh, no hit/miss accounting. Ratio columns in the row are
    /// batch-relative and therefore null here (except Serial's own 1.0).
    fn cell(&self, keyhex: &str) -> Response {
        let Ok(key) = keyhex.parse::<CellKey>() else {
            return self.bad("cell key must be 16 hex digits");
        };
        let cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        let Some(cached) = cache.peek(key) else {
            return Response::json(404, "{\"error\":\"cell not in cache\"}\n");
        };
        let spec = cached.spec.clone();
        let payload = cached.payload.clone();
        drop(cache);
        let Some((coord, prec)) = spec_coord(&spec) else {
            return Response::json(500, "{\"error\":\"cached spec unresolvable\"}\n");
        };
        let Some(entry) = checkpoint::decode_entry(&payload) else {
            return Response::json(500, "{\"error\":\"cached payload corrupt\"}\n");
        };
        let (bench, v, _) = coord.clone();
        let results = SuiteResults {
            cells: HashMap::from([(coord, entry)]),
            bench_names: vec![bench.clone()],
        };
        let row = export::jsonl_row(&results, &bench, v, prec);
        Response::json(
            200,
            format!(
                "{{\"key\":\"{key}\",\"spec\":\"{}\",\"row\":{row}}}\n",
                json::escape(&spec.canonical())
            ),
        )
    }

    /// Resolve payloads for a request's *distinct* cells: cache hits
    /// immediately, misses through the scheduler. `Err` carries a
    /// ready-to-send backpressure/shutdown/failure response.
    ///
    /// One cache lookup per distinct cell; misses are admitted while the
    /// cache lock is held, so a cell cannot complete (and be evicted)
    /// between the check and the admit.
    ///
    /// Fills `rep` with per-cell timings: one `lookup_us` sample per
    /// distinct cell, one `queue_us`/`eval_us` sample per cell actually
    /// evaluated — counts that depend only on the work, not on how the
    /// fleet is sharded, so router-merged stage histograms reconcile
    /// exactly with a single-process run.
    fn resolve(
        &self,
        cells: &[(CellSpec, Precision)],
        rep: &mut ResolveReport,
    ) -> Result<HashMap<CellKey, String>, Response> {
        let mut payloads: HashMap<CellKey, String> = HashMap::new();
        let mut pending: Vec<(CellKey, Arc<Slot>)> = Vec::new();
        {
            let lookup_started = Instant::now();
            let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
            let mut need: Vec<CellSpec> = Vec::new();
            for (spec, _) in cells {
                let key = spec.key();
                if payloads.contains_key(&key) || need.iter().any(|s| s.key() == key) {
                    continue;
                }
                let probe_started = Instant::now();
                let cached = cache.get(key);
                rep.lookup_us.push(us_since(probe_started));
                match cached {
                    Some(c) => {
                        rep.cache_hits += 1;
                        payloads.insert(key, c.payload);
                    }
                    None => {
                        rep.cache_misses += 1;
                        need.push(spec.clone());
                    }
                }
            }
            rep.lookup_total_us = us_since(lookup_started);
            // Small sweeps ride the interactive lane so they are not
            // queued behind a full-grid batch; the threshold mirrors the
            // HTTP layer's request classification.
            let lane = if cells.len() <= self.priority_cells {
                Lane::Interactive
            } else {
                Lane::Bulk
            };
            let admit_started = Instant::now();
            let admitted = self.scheduler.admit(&need, lane);
            rep.admit_us = us_since(admit_started);
            match admitted {
                Ok(slots) => {
                    pending.extend(need.iter().map(|s| s.key()).zip(slots));
                }
                Err(AdmitError::Busy {
                    queue_depth,
                    queue_cap,
                }) => {
                    self.metrics
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .rejected_requests += 1;
                    return Err(Response::json(
                        429,
                        format!(
                            "{{\"error\":\"queue full\",\"queue_depth\":{queue_depth},\"queue_cap\":{queue_cap}}}\n"
                        ),
                    )
                    .with_header("Retry-After", "1"));
                }
                Err(AdmitError::ShuttingDown) => {
                    return Err(Response::json(503, "{\"error\":\"shutting down\"}\n"));
                }
                Err(AdmitError::Poisoned) => {
                    return Err(Response::json(
                        500,
                        "{\"error\":\"scheduler dispatcher is dead\"}\n",
                    ));
                }
            }
        }
        let wait_started = Instant::now();
        for (key, slot) in pending {
            // An abandoned slot (the batch evaluator panicked) is a 500,
            // not a hang: the scheduler settles every admitted slot. A
            // wedged evaluation that never settles is a 503 after the
            // deadline rather than a connection parked forever.
            let Some((outcome, timing)) = slot.wait_deadline(self.wait_timeout) else {
                self.metrics
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .wait_timeouts += 1;
                rep.wait_total_us = us_since(wait_started);
                return Err(Response::json(
                    503,
                    "{\"error\":\"evaluation wait timed out\"}\n",
                ));
            };
            rep.queue_us.push(timing.queue_us);
            rep.eval_us.push(timing.eval_us);
            match outcome {
                Ok(payload) => {
                    payloads.insert(key, payload);
                }
                Err(abandoned) => {
                    rep.wait_total_us = us_since(wait_started);
                    return Err(Response::json(
                        500,
                        format!(
                            "{{\"error\":\"evaluation failed: {}\"}}\n",
                            json::escape(&abandoned.message)
                        ),
                    ));
                }
            }
        }
        rep.wait_total_us = us_since(wait_started);
        Ok(payloads)
    }

    /// Record a finished (or failed) resolution into the stage
    /// histograms and the request's trace record. `format_us` is `Some`
    /// only when the request produced a response body — error paths
    /// contribute no `format` or `sweep_time` samples, matching the
    /// pre-histogram behaviour.
    fn record_stages(
        &self,
        rec: &mut RequestRecord,
        parse_us: u64,
        rep: &ResolveReport,
        format_us: Option<u64>,
        started: Instant,
    ) {
        {
            let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
            m.record_stage(Stage::Parse, parse_us);
            m.record_stage(Stage::Admit, rep.admit_us);
            for &us in &rep.lookup_us {
                m.record_stage(Stage::CacheLookup, us);
            }
            for &us in &rep.queue_us {
                m.record_stage(Stage::QueueWait, us);
            }
            for &us in &rep.eval_us {
                m.record_stage(Stage::EvalBatch, us);
            }
            if let Some(us) = format_us {
                m.record_stage(Stage::Format, us);
                m.sweep_time.record_us(us_since(started));
            }
        }
        // Trace spans: the handler's sequential phases. Queue-wait and
        // evaluation overlap across a batch's cells, so their spans show
        // the request's worst cell.
        let mut off = 0;
        rec.span("parse", off, parse_us);
        off += parse_us;
        rec.span("cache_lookup", off, rep.lookup_total_us);
        off += rep.lookup_total_us;
        rec.span("admit", off, rep.admit_us);
        off += rep.admit_us;
        if !rep.queue_us.is_empty() {
            let queue = *rep.queue_us.iter().max().unwrap();
            let eval = *rep.eval_us.iter().max().unwrap();
            rec.span("queue_wait", off, queue);
            rec.span("eval_batch", off + queue, eval);
        }
        off += rep.wait_total_us;
        if let Some(us) = format_us {
            rec.span("format", off, us);
        }
        rec.note("cache_hits", rep.cache_hits);
        rec.note("cache_misses", rep.cache_misses);
    }

    fn sweep(&self, req: &Request, rec: &mut RequestRecord) -> Response {
        let started = Instant::now();
        let parsed = parse_sweep(&self.bench_names, &req.body);
        let parse_us = us_since(started);
        let cells = match parsed {
            Ok(c) => c,
            Err(msg) => return self.bad(&msg),
        };
        rec.note("cells", cells.len());
        {
            let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
            m.sweeps += 1;
            m.cells_requested += cells.len() as u64;
        }
        let mut rep = ResolveReport::default();
        let payloads = match self.resolve(&cells, &mut rep) {
            Ok(p) => p,
            Err(resp) => {
                self.record_stages(rec, parse_us, &rep, None, started);
                return resp;
            }
        };

        // Decode into a SuiteResults over exactly the requested cells, so
        // the shared jsonl formatter computes ratios against the request's
        // own serial baselines (full grid => identical to `harness jsonl`).
        let format_started = Instant::now();
        let mut results = SuiteResults {
            cells: HashMap::new(),
            bench_names: self.bench_names.clone(),
        };
        for (spec, _) in &cells {
            let Some((coord, _)) = spec_coord(spec) else {
                continue;
            };
            if results.cells.contains_key(&coord) {
                continue;
            }
            let payload = &payloads[&spec.key()];
            let entry = checkpoint::decode_entry(payload).unwrap_or_else(|| {
                CellEntry::Failed(CellError {
                    kind: FailKind::WorkerPanic,
                    message: "cached payload corrupt".into(),
                    attempts: 0,
                    backoff_ms: 0,
                })
            });
            results.cells.insert(coord, entry);
        }
        let mut body = String::new();
        for (spec, prec) in &cells {
            let Some(((bench, v, _), _)) = spec_coord(spec) else {
                continue;
            };
            body.push_str(&export::jsonl_row(&results, &bench, v, *prec));
            body.push('\n');
        }
        self.record_stages(rec, parse_us, &rep, Some(us_since(format_started)), started);
        Response::jsonl(200, body)
    }

    /// `POST /v1/cells` — the router's internal data plane: same request
    /// body as `/v1/sweep`, but the response is one `<key> <payload>`
    /// line per *distinct* requested cell (first-occurrence order), where
    /// the payload is the `checkpoint::encode_entry` encoding. Shipping
    /// raw entries instead of formatted rows lets `harness route` compute
    /// ratio columns over the whole request rather than per-shard
    /// subsets — that is what keeps a routed sweep byte-identical to a
    /// single-process one.
    fn cells(&self, req: &Request, rec: &mut RequestRecord) -> Response {
        let started = Instant::now();
        let parsed = parse_sweep(&self.bench_names, &req.body);
        let parse_us = us_since(started);
        let cells = match parsed {
            Ok(c) => c,
            Err(msg) => return self.bad(&msg),
        };
        rec.note("cells", cells.len());
        {
            let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
            m.sweeps += 1;
            m.cells_requested += cells.len() as u64;
        }
        let mut rep = ResolveReport::default();
        let payloads = match self.resolve(&cells, &mut rep) {
            Ok(p) => p,
            Err(resp) => {
                self.record_stages(rec, parse_us, &rep, None, started);
                return resp;
            }
        };
        let format_started = Instant::now();
        let mut body = String::new();
        let mut seen: HashSet<CellKey> = HashSet::new();
        for (spec, _) in &cells {
            let key = spec.key();
            if seen.insert(key) {
                body.push_str(&format!("{key} {}\n", payloads[&key]));
            }
        }
        self.record_stages(rec, parse_us, &rep, Some(us_since(format_started)), started);
        Response::text(200, body)
    }
}

// ---- entry points ----

/// A server running on a background thread (tests, embedding).
pub struct RunningServer {
    pub addr: SocketAddr,
    stop: StopHandle,
    thread: std::thread::JoinHandle<io::Result<()>>,
}

impl RunningServer {
    /// Stop accepting, drain in-flight work, and join the server thread.
    pub fn shutdown(self) -> io::Result<()> {
        self.stop.stop();
        self.thread
            .join()
            .map_err(|_| io::Error::other("server thread panicked"))?
    }
}

fn run_on(mut server: Server, cfg: ServeConfig) -> io::Result<()> {
    if let Some(ms) = cfg.timeout_ms {
        server.set_io_timeout(Duration::from_millis(ms));
    }
    server.set_workers(cfg.workers);
    server.set_priority_cells(cfg.priority_cells);
    let stop = server.stop_handle()?;
    let engine = Engine::new(&cfg, stop, server.lane_metrics())?;
    server.run(|req| engine.handle(req))?;
    // Dropping the engine shuts the scheduler down (drains, then joins).
    persist(
        &engine.cache.lock().unwrap_or_else(|e| e.into_inner()),
        &engine.cache_path,
    );
    Ok(())
}

/// Bind and serve on a background thread; returns the resolved address.
pub fn start(cfg: ServeConfig) -> io::Result<RunningServer> {
    let server = Server::bind(&cfg.addr)?;
    let addr = server.local_addr()?;
    let stop = server.stop_handle()?;
    let thread = std::thread::Builder::new()
        .name("sim-server-acceptor".into())
        .spawn(move || run_on(server, cfg))?;
    Ok(RunningServer { addr, stop, thread })
}

/// Bind and serve on the calling thread (the `harness serve` path).
/// Prints the resolved listen address to stdout first, so scripts binding
/// port 0 can discover the port.
pub fn serve(cfg: ServeConfig) -> io::Result<()> {
    let server = Server::bind(&cfg.addr)?;
    let addr = server.local_addr()?;
    println!("listening on {addr}");
    io::stdout().flush()?;
    run_on(server, cfg)
}

// ---- the submit client ----

/// Client configuration for `harness submit`.
#[derive(Clone, Debug)]
pub struct SubmitConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Problem-size scale tag ("test" / "paper").
    pub scale: String,
    /// Fault-injection seed forwarded with the sweep.
    pub fault_seed: Option<u64>,
    /// Optimizer pass pipeline forwarded with the sweep (`--passes`,
    /// comma-separated pass names). Folded into every cell's content
    /// address by the server.
    pub passes: Option<String>,
    /// `None` sweeps the full grid; `Some` holds `bench/version/precision`
    /// triples (e.g. `spmv/OpenCL-Opt/single`).
    pub cells: Option<Vec<String>>,
    /// Fetch and print `/metrics` instead of sweeping.
    pub metrics: bool,
    /// Request a graceful server shutdown instead of sweeping.
    pub shutdown: bool,
    /// Attempts before giving up on transient connection failures
    /// (`--retry-budget`); backoff is seeded from `fault_seed`.
    pub retry_budget: u32,
    /// Request timeout (`--timeout-ms`); `None` uses
    /// [`http::DEFAULT_TIMEOUT_MS`].
    pub timeout_ms: Option<u64>,
}

/// Transport errors worth retrying from the client: the server may be
/// mid-restart (refused), mid-shutdown (reset/aborted), or briefly
/// wedged (timeout). Anything else — DNS failure, a malformed response —
/// will not heal by waiting.
fn transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
    )
}

/// Build the JSON body for a sweep request.
fn sweep_body(cfg: &SubmitConfig) -> Result<String, String> {
    let cells = match &cfg.cells {
        None => "\"all\"".to_string(),
        Some(list) => {
            let mut items = Vec::new();
            for c in list {
                let parts: Vec<&str> = c.split('/').collect();
                let [bench, version, precision] = parts[..] else {
                    return Err(format!(
                        "bad cell '{c}' (want bench/version/precision, e.g. spmv/OpenCL-Opt/single)"
                    ));
                };
                items.push(format!(
                    "{{\"bench\":\"{}\",\"version\":\"{}\",\"precision\":\"{}\"}}",
                    json::escape(bench),
                    json::escape(version),
                    json::escape(precision)
                ));
            }
            format!("[{}]", items.join(","))
        }
    };
    let seed = match cfg.fault_seed {
        Some(s) => format!(",\"fault_seed\":{s}"),
        None => String::new(),
    };
    let passes = match &cfg.passes {
        Some(p) => format!(",\"passes\":\"{}\"", json::escape(p)),
        None => String::new(),
    };
    Ok(format!(
        "{{\"scale\":\"{}\"{seed}{passes},\"cells\":{cells}}}",
        json::escape(&cfg.scale)
    ))
}

/// Run one client interaction; prints the response body to stdout.
/// Returns the process exit code (0 ok, 1 server/transport error).
/// Transient connection failures (refused, reset, timed out) are retried
/// up to the configured budget with seeded exponential backoff before
/// the client gives up — a server restarting between waves no longer
/// fails the whole script.
pub fn submit(cfg: &SubmitConfig) -> i32 {
    let (method, path, body) = if cfg.shutdown {
        ("POST", "/v1/shutdown", String::new())
    } else if cfg.metrics {
        ("GET", "/metrics", String::new())
    } else {
        match sweep_body(cfg) {
            Ok(b) => ("POST", "/v1/sweep", b),
            Err(msg) => {
                // Usage-shaped error: the caller maps it to exit 2.
                eprintln!("{msg}");
                return 2;
            }
        }
    };
    let timeout = Duration::from_millis(cfg.timeout_ms.unwrap_or(http::DEFAULT_TIMEOUT_MS));
    let policy = RetryPolicy {
        budget: cfg.retry_budget.max(1),
        seed: cfg.fault_seed.unwrap_or(0),
        ..RetryPolicy::default()
    };
    let salt = sim_server::key::fnv1a64(path.as_bytes());
    let mut attempt = 0u32;
    let result = loop {
        match http::request(&cfg.addr, method, path, body.as_bytes(), timeout) {
            Err(e) if transient(&e) && attempt + 1 < policy.budget => {
                let wait = policy.backoff_ms(salt, attempt);
                eprintln!(
                    "request to {} failed ({e}); retrying in {wait} ms (attempt {} of {})",
                    cfg.addr,
                    attempt + 2,
                    policy.budget
                );
                std::thread::sleep(Duration::from_millis(wait));
                attempt += 1;
            }
            other => break other,
        }
    };
    match result {
        Ok((200, body)) => {
            let mut out = io::stdout();
            if cfg.metrics {
                // Human-facing rendering: aligned columns, histogram
                // families summarized as derived percentiles.
                let page = String::from_utf8_lossy(&body);
                let _ = out.write_all(metrics::pretty(&page).as_bytes());
            } else {
                let _ = out.write_all(&body);
            }
            let _ = out.flush();
            0
        }
        Ok((status, body)) => {
            eprintln!(
                "server returned {status}: {}",
                String::from_utf8_lossy(&body).trim_end()
            );
            1
        }
        Err(e) => {
            eprintln!("request to {} failed: {e}", cfg.addr);
            1
        }
    }
}
