//! `harness route` — sharded multi-process serving.
//!
//! A thin HTTP front that partitions the cell key space across N backend
//! `harness serve` processes with consistent hashing
//! ([`sim_server::router::Ring`]): the [`sim_server::key::CellKey`] is a
//! pure function of the spec, so every cell deterministically lands on
//! the same shard, shard caches stay hot, and in-flight coalescing keeps
//! working inside each backend.
//!
//! The router speaks the same public surface as a single `harness serve`
//! (`/v1/sweep`, `/v1/cell/<key>`, `/metrics`, `/healthz`,
//! `/v1/shutdown`) but fans the work out over the backends' internal
//! `POST /v1/cells` data plane, which returns **raw encoded entries**
//! (`checkpoint::encode_entry`) instead of formatted rows. That is the
//! load-bearing design choice: ratio columns (speedup/power/energy) are
//! computed over the *request's* result set, so the router must collect
//! all payloads first and format once — per-shard formatting would
//! compute ratios over shard-local subsets and break the byte-identity
//! contract. With every shard healthy, a routed full-grid sweep is
//! byte-identical to single-process `harness serve` and to offline
//! `harness jsonl`.
//!
//! Failure semantics (DESIGN.md §13):
//! * a down or erroring shard degrades to structured
//!   `status=fail`/`shard-down` rows for *that shard's cells only* —
//!   the sweep still answers 200;
//! * a busy shard (429) makes the whole sweep 429, propagating the
//!   maximum `Retry-After` (already-computed cells are cached on their
//!   shards, so the retry is cheap);
//! * `/healthz` aggregates shard liveness (503 lists the casualties);
//!   `/metrics` sums shard counters (latency lines take the max) and
//!   appends `sim_router_*` lines.

use crate::checkpoint;
use crate::export;
use crate::runner::{CellEntry, CellError, FailKind, SuiteResults};
use crate::serve::{make_tracer, parse_sweep, precision_to_wire, spec_coord};
use sim_server::http::{self, Request, Response, Server, StopHandle};
use sim_server::json;
use sim_server::key::{CellKey, CellSpec};
use sim_server::metrics as server_metrics;
use sim_server::reqtrace::{us_since, RequestRecord, TraceId, Tracer, TRACE_HEADER};
use sim_server::router::Ring;
use std::collections::{HashMap, HashSet};
use std::io::{self, Write};
use std::net::SocketAddr;
use std::sync::Mutex;
use std::time::{Duration, Instant};
use telemetry::log;

/// Router configuration (CLI flags map onto this 1:1).
#[derive(Clone, Debug)]
pub struct RouteConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Backend `harness serve` addresses. Shard identity is positional:
    /// reordering the list remaps the key space (and cools every cache).
    pub shards: Vec<String>,
    /// Request-trace output directory (`--trace-dir`); `None` disables
    /// tracing. The router's ingress trace id is stamped onto every
    /// shard sub-request, so shard traces correlate by id.
    pub trace_dir: Option<std::path::PathBuf>,
    /// Deterministic 1-in-N trace sampling (`--trace-sample`).
    pub trace_sample: u64,
    /// Force-sample requests slower than this (`--slow-ms`).
    pub slow_ms: Option<u64>,
}

/// Sweeps may simulate the full paper-scale grid on a cold fleet.
const SHARD_SWEEP_TIMEOUT: Duration = Duration::from_secs(600);
/// Health probes and metric scrapes must not hang the front.
const SHARD_PROBE_TIMEOUT: Duration = Duration::from_secs(10);

#[derive(Default)]
struct RouterMetrics {
    requests: u64,
    sweeps: u64,
    cells_routed: u64,
    shard_errors: u64,
    rejected: u64,
    bad_requests: u64,
}

/// What one shard's `/v1/cells` sub-request produced.
enum ShardOutcome {
    /// Payloads by content address.
    Cells(HashMap<CellKey, String>),
    /// Backend backpressure: retry the whole sweep later.
    Busy { retry_after: u64 },
    /// Unreachable or answered with an error; its cells become
    /// `shard-down` failure rows.
    Down(String),
}

struct Router {
    shards: Vec<String>,
    ring: Ring,
    /// Benchmark names in suite order (identical for both scales).
    bench_names: Vec<String>,
    metrics: Mutex<RouterMetrics>,
    stop: StopHandle,
    tracer: Tracer,
}

/// Build the `/v1/cells` sub-request body for one shard's specs. All
/// specs of one sweep share scale and fault seed, so they are lifted
/// from the first spec.
fn cells_body(specs: &[&CellSpec]) -> String {
    let items: Vec<String> = specs
        .iter()
        .map(|s| {
            format!(
                "{{\"bench\":\"{}\",\"version\":\"{}\",\"precision\":\"{}\"}}",
                json::escape(&s.bench),
                json::escape(&s.version),
                precision_to_wire(s.precision)
            )
        })
        .collect();
    let seed = specs[0]
        .fault_seed
        .map(|s| format!(",\"fault_seed\":{s}"))
        .unwrap_or_default();
    format!(
        "{{\"scale\":\"{}\"{seed},\"cells\":[{}]}}",
        json::escape(&specs[0].scale),
        items.join(",")
    )
}

/// Parse a `/v1/cells` response body (`<key> <payload>` lines).
fn parse_cells_response(body: &[u8]) -> Option<HashMap<CellKey, String>> {
    let text = std::str::from_utf8(body).ok()?;
    let mut out = HashMap::new();
    for line in text.lines() {
        let (keyhex, payload) = line.split_once(' ')?;
        out.insert(keyhex.parse::<CellKey>().ok()?, payload.to_string());
    }
    Some(out)
}

fn shard_down_entry(message: String) -> CellEntry {
    CellEntry::Failed(CellError {
        kind: FailKind::ShardDown,
        message,
        attempts: 1,
        backoff_ms: 0,
    })
}

impl Router {
    fn new(cfg: &RouteConfig, stop: StopHandle) -> io::Result<Router> {
        let bench_names: Vec<String> = hpc_kernels::test_suite()
            .iter()
            .map(|b| b.name().to_string())
            .collect();
        let tracer = make_tracer(
            &cfg.trace_dir,
            cfg.trace_sample,
            cfg.slow_ms,
            &format!("sim-router {}", cfg.addr),
        )?;
        Ok(Router {
            ring: Ring::new(cfg.shards.len()),
            shards: cfg.shards.clone(),
            bench_names,
            metrics: Mutex::new(RouterMetrics::default()),
            stop,
            tracer,
        })
    }

    fn handle(&self, req: &Request) -> Response {
        let t0 = Instant::now();
        // One trace id per request, accepted inbound or generated here;
        // `sweep` stamps it onto every shard sub-request. Header-only:
        // response bytes never carry it.
        let id = TraceId::from_header(req.header(TRACE_HEADER));
        self.metrics
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .requests += 1;
        let resp = match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => self.healthz(),
            ("GET", "/metrics") => self.metrics_page(),
            ("POST", "/v1/sweep") => {
                let mut rec = RequestRecord::new(id, &req.path);
                let resp = self.sweep(req, &mut rec);
                rec.status = resp.status;
                rec.total_us = us_since(t0);
                self.tracer.finish(&rec);
                resp
            }
            ("POST", "/v1/shutdown") => {
                // Best-effort fan-out: the fleet is one logical service,
                // so a router shutdown drains the backends too.
                for addr in &self.shards {
                    if let Err(e) =
                        http::request(addr, "POST", "/v1/shutdown", b"", SHARD_PROBE_TIMEOUT)
                    {
                        log::progress(&format!("warning: shutdown of shard {addr} failed: {e}"));
                    }
                }
                self.stop.stop();
                Response::text(200, "shutting down\n")
            }
            ("GET", path) if path.starts_with("/v1/cell/") => {
                self.cell_proxy(path, &path["/v1/cell/".len()..])
            }
            _ => Response::json(404, "{\"error\":\"no such route\"}\n"),
        };
        resp.with_header(TRACE_HEADER, &id.to_string())
    }

    fn bad(&self, msg: &str) -> Response {
        self.metrics
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .bad_requests += 1;
        Response::json(400, format!("{{\"error\":\"{}\"}}\n", json::escape(msg)))
    }

    /// Probe every shard concurrently; healthy means HTTP 200.
    fn probe_shards(&self) -> Vec<Result<(), String>> {
        let mut states: Vec<Result<(), String>> = Vec::with_capacity(self.shards.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|addr| {
                    scope.spawn(move || {
                        match http::request(addr, "GET", "/healthz", b"", SHARD_PROBE_TIMEOUT) {
                            Ok((200, _)) => Ok(()),
                            Ok((status, _)) => Err(format!("answered {status}")),
                            Err(e) => Err(format!("unreachable: {e}")),
                        }
                    })
                })
                .collect();
            for h in handles {
                states.push(h.join().unwrap_or_else(|_| Err("probe panicked".into())));
            }
        });
        states
    }

    fn healthz(&self) -> Response {
        let states = self.probe_shards();
        if states.iter().all(Result::is_ok) {
            return Response::text(200, "ok\n");
        }
        let mut body = String::new();
        for (i, (addr, state)) in self.shards.iter().zip(&states).enumerate() {
            match state {
                Ok(()) => body.push_str(&format!("shard {i} {addr}: ok\n")),
                Err(e) => body.push_str(&format!("shard {i} {addr}: {e}\n")),
            }
        }
        Response::text(503, body)
    }

    /// Aggregate shard `/metrics` pages (sum counters, max latencies) and
    /// append the router's own counters.
    fn metrics_page(&self) -> Response {
        let mut pages: Vec<String> = Vec::new();
        let mut up = 0usize;
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|addr| {
                    scope.spawn(move || {
                        match http::request(addr, "GET", "/metrics", b"", SHARD_PROBE_TIMEOUT) {
                            Ok((200, body)) => String::from_utf8(body).ok(),
                            _ => None,
                        }
                    })
                })
                .collect();
            for h in handles {
                if let Some(page) = h.join().ok().flatten() {
                    pages.push(page);
                    up += 1;
                }
            }
        });
        let mut out = server_metrics::aggregate_pages(&pages);
        let m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        for (name, v) in [
            ("sim_router_shards", self.shards.len() as u64),
            ("sim_router_shards_up", up as u64),
            ("sim_router_requests_total", m.requests),
            ("sim_router_sweeps_total", m.sweeps),
            ("sim_router_cells_routed_total", m.cells_routed),
            ("sim_router_shard_errors_total", m.shard_errors),
            ("sim_router_rejected_total", m.rejected),
            ("sim_router_bad_requests_total", m.bad_requests),
        ] {
            out.push_str(&format!("{name} {v}\n"));
        }
        Response::text(200, out)
    }

    /// Proxy a cell inspection to the shard that owns the key.
    fn cell_proxy(&self, path: &str, keyhex: &str) -> Response {
        let Ok(key) = keyhex.parse::<CellKey>() else {
            return self.bad("cell key must be 16 hex digits");
        };
        let addr = &self.shards[self.ring.shard_of(key)];
        match http::request(addr, "GET", path, b"", SHARD_PROBE_TIMEOUT) {
            Ok((status, body)) => Response::json(status, body),
            Err(e) => Response::json(
                503,
                format!(
                    "{{\"error\":\"shard {} unreachable: {}\"}}\n",
                    json::escape(addr),
                    json::escape(&e.to_string())
                ),
            ),
        }
    }

    fn sweep(&self, req: &Request, rec: &mut RequestRecord) -> Response {
        let started = Instant::now();
        let parsed = parse_sweep(&self.bench_names, &req.body);
        let parse_us = us_since(started);
        rec.span("parse", 0, parse_us);
        let cells = match parsed {
            Ok(c) => c,
            Err(msg) => return self.bad(&msg),
        };

        // Partition the distinct cells by ring position.
        let mut seen: HashSet<CellKey> = HashSet::new();
        let mut per_shard: Vec<Vec<&CellSpec>> = vec![Vec::new(); self.shards.len()];
        for (spec, _) in &cells {
            let key = spec.key();
            if seen.insert(key) {
                per_shard[self.ring.shard_of(key)].push(spec);
            }
        }
        {
            let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
            m.sweeps += 1;
            m.cells_routed += seen.len() as u64;
        }

        // Fan the non-empty sub-sweeps out concurrently, propagating the
        // ingress trace id so every shard's spans and log lines carry it.
        let id_hex = rec.id.to_string();
        let fanout_off = us_since(started);
        let mut outcomes: Vec<Option<(ShardOutcome, u64)>> = Vec::with_capacity(self.shards.len());
        std::thread::scope(|scope| {
            let id_hex = &id_hex;
            let handles: Vec<_> = self
                .shards
                .iter()
                .zip(&per_shard)
                .map(|(addr, specs)| {
                    scope.spawn(move || {
                        if specs.is_empty() {
                            return None;
                        }
                        let body = cells_body(specs);
                        let shard_started = Instant::now();
                        let outcome = match http::request_with(
                            addr,
                            "POST",
                            "/v1/cells",
                            &[(TRACE_HEADER, id_hex.as_str())],
                            body.as_bytes(),
                            SHARD_SWEEP_TIMEOUT,
                        ) {
                            Ok((200, _, resp)) => match parse_cells_response(&resp) {
                                Some(map) => ShardOutcome::Cells(map),
                                None => ShardOutcome::Down(format!(
                                    "shard {addr} returned an unparseable cells response"
                                )),
                            },
                            Ok((429, headers, _)) => ShardOutcome::Busy {
                                retry_after: headers
                                    .iter()
                                    .find(|(k, _)| k == "retry-after")
                                    .and_then(|(_, v)| v.parse().ok())
                                    .unwrap_or(1),
                            },
                            Ok((status, _, resp)) => ShardOutcome::Down(format!(
                                "shard {addr} answered {status}: {}",
                                String::from_utf8_lossy(&resp).trim_end()
                            )),
                            Err(e) => ShardOutcome::Down(format!("shard {addr} unreachable: {e}")),
                        };
                        Some((outcome, us_since(shard_started)))
                    })
                })
                .collect();
            for h in handles {
                outcomes.push(h.join().unwrap_or_else(|_| {
                    Some((ShardOutcome::Down("sub-request thread panicked".into()), 0))
                }));
            }
        });
        // One span per contacted shard; they overlap, all starting at the
        // fan-out point.
        for (i, o) in outcomes.iter().enumerate() {
            if let Some((_, dur_us)) = o {
                rec.span(format!("shard_{i}"), fanout_off, *dur_us);
            }
        }
        let outcomes: Vec<Option<ShardOutcome>> =
            outcomes.into_iter().map(|o| o.map(|(s, _)| s)).collect();

        // Backpressure first: a busy shard makes the sweep retryable as a
        // whole (its siblings' finished cells are cached, so the retry
        // costs only the busy shard's work).
        let max_retry = outcomes
            .iter()
            .filter_map(|o| match o {
                Some(ShardOutcome::Busy { retry_after }) => Some(*retry_after),
                _ => None,
            })
            .max();
        if let Some(retry_after) = max_retry {
            self.metrics
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .rejected += 1;
            return Response::json(
                429,
                format!("{{\"error\":\"shard busy\",\"retry_after\":{retry_after}}}\n"),
            )
            .with_header("Retry-After", &retry_after.to_string());
        }

        // Collect payloads; a down shard degrades to failure entries for
        // its cells only.
        let shards_down = outcomes
            .iter()
            .flatten()
            .filter(|o| matches!(o, ShardOutcome::Down(_)))
            .count();
        let mut payloads: HashMap<CellKey, String> = HashMap::new();
        let mut down: HashMap<CellKey, String> = HashMap::new();
        for (specs, outcome) in per_shard.iter().zip(outcomes) {
            match outcome {
                None => {}
                Some(ShardOutcome::Cells(map)) => payloads.extend(map),
                Some(ShardOutcome::Busy { .. }) => unreachable!("busy handled above"),
                Some(ShardOutcome::Down(msg)) => {
                    self.metrics
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .shard_errors += 1;
                    log::progress(&format!("warning: {msg}"));
                    for spec in specs {
                        down.insert(spec.key(), msg.clone());
                    }
                }
            }
        }

        // Assemble one SuiteResults over exactly the requested cells and
        // format once — the same shared `jsonl_row` path as the backends
        // and the offline artifact, which is what keeps routed bytes
        // identical to unrouted ones.
        let format_off = us_since(started);
        let mut results = SuiteResults {
            cells: HashMap::new(),
            bench_names: self.bench_names.clone(),
        };
        for (spec, _) in &cells {
            let Some((coord, _)) = spec_coord(spec) else {
                continue;
            };
            if results.cells.contains_key(&coord) {
                continue;
            }
            let key = spec.key();
            let entry = match payloads.get(&key) {
                Some(payload) => checkpoint::decode_entry(payload)
                    .unwrap_or_else(|| shard_down_entry("shard payload corrupt".into())),
                None => shard_down_entry(
                    down.get(&key)
                        .cloned()
                        .unwrap_or_else(|| "shard returned no payload for cell".into()),
                ),
            };
            results.cells.insert(coord, entry);
        }
        let mut body = String::new();
        for (spec, prec) in &cells {
            let Some(((bench, v, _), _)) = spec_coord(spec) else {
                continue;
            };
            body.push_str(&export::jsonl_row(&results, &bench, v, *prec));
            body.push('\n');
        }
        rec.span("format", format_off, us_since(started) - format_off);
        rec.note("cells", seen.len());
        rec.note("shards", self.shards.len());
        rec.note("shards_down", shards_down);
        log::debug(&format!(
            "routed sweep: {} cells over {} shards in {} ms",
            seen.len(),
            self.shards.len(),
            started.elapsed().as_millis()
        ));
        Response::jsonl(200, body)
    }
}

// ---- entry points ----

/// A router running on a background thread (tests, embedding).
pub struct RunningRouter {
    pub addr: SocketAddr,
    stop: StopHandle,
    thread: std::thread::JoinHandle<io::Result<()>>,
}

impl RunningRouter {
    /// Stop the router's acceptor and join its thread. Backends are left
    /// running (only `POST /v1/shutdown` drains the whole fleet).
    pub fn shutdown(self) -> io::Result<()> {
        self.stop.stop();
        self.thread
            .join()
            .map_err(|_| io::Error::other("router thread panicked"))?
    }
}

fn run_on(server: Server, cfg: RouteConfig) -> io::Result<()> {
    let stop = server.stop_handle()?;
    let router = Router::new(&cfg, stop)?;
    server.run(|req| router.handle(req))
}

/// Bind and route on a background thread; returns the resolved address.
pub fn start(cfg: RouteConfig) -> io::Result<RunningRouter> {
    let server = Server::bind(&cfg.addr)?;
    let addr = server.local_addr()?;
    let stop = server.stop_handle()?;
    let thread = std::thread::Builder::new()
        .name("sim-router-acceptor".into())
        .spawn(move || run_on(server, cfg))?;
    Ok(RunningRouter { addr, stop, thread })
}

/// Bind and route on the calling thread (the `harness route` path).
/// Prints the resolved listen address to stdout first, so scripts
/// binding port 0 can discover the port.
pub fn route(cfg: RouteConfig) -> io::Result<()> {
    let server = Server::bind(&cfg.addr)?;
    let addr = server.local_addr()?;
    println!("listening on {addr}");
    io::stdout().flush()?;
    run_on(server, cfg)
}
