//! `harness route` — sharded multi-process serving.
//!
//! A thin HTTP front that partitions the cell key space across N backend
//! `harness serve` processes with consistent hashing
//! ([`sim_server::router::Ring`]): the [`sim_server::key::CellKey`] is a
//! pure function of the spec, so every cell deterministically lands on
//! the same shard, shard caches stay hot, and in-flight coalescing keeps
//! working inside each backend.
//!
//! The router speaks the same public surface as a single `harness serve`
//! (`/v1/sweep`, `/v1/cell/<key>`, `/metrics`, `/healthz`,
//! `/v1/shutdown`) but fans the work out over the backends' internal
//! `POST /v1/cells` data plane, which returns **raw encoded entries**
//! (`checkpoint::encode_entry`) instead of formatted rows. That is the
//! load-bearing design choice: ratio columns (speedup/power/energy) are
//! computed over the *request's* result set, so the router must collect
//! all payloads first and format once — per-shard formatting would
//! compute ratios over shard-local subsets and break the byte-identity
//! contract. With every shard healthy, a routed full-grid sweep is
//! byte-identical to single-process `harness serve` and to offline
//! `harness jsonl`.
//!
//! Failure semantics (DESIGN.md §13, §16):
//! * transport failures are retried with seeded exponential backoff and
//!   jitter within a per-request budget (`--retry-budget`); injected
//!   chaos faults skip the real sleep, so chaos runs stay fast;
//! * each shard has a circuit breaker (`--breaker-threshold`
//!   consecutive transport failures → open; a cooldown later, one
//!   half-open `/healthz` probe re-closes or re-opens it), so a dead
//!   shard stops eating the retry budget of every sweep;
//! * with `--replicas R`, every key's cells can fail over to the next
//!   `R-1` distinct successor shards on the ring; a down or erroring
//!   shard only degrades to structured `status=fail`/`shard-down` rows
//!   once *every* owner is down — the sweep still answers 200;
//! * a busy shard (429) is retried after its `Retry-After` (capped;
//!   malformed/missing headers fall back to a documented 1 s default),
//!   and only once the budget is spent does the whole sweep 429,
//!   propagating the maximum `Retry-After` (already-computed cells are
//!   cached on their shards, so the retry is cheap);
//! * `/healthz` aggregates shard liveness (503 lists the casualties);
//!   `/metrics` sums shard counters (latency lines take the max) and
//!   appends `sim_router_*` lines, including per-shard breaker states.

use crate::checkpoint;
use crate::export;
use crate::runner::{CellEntry, CellError, FailKind, SuiteResults};
use crate::serve::{make_tracer, parse_sweep, precision_to_wire, spec_coord};
use sim_faults::FaultPlan;
use sim_server::breaker::{Breaker, Decision};
use sim_server::http::{self, Request, Response, Server, StopHandle};
use sim_server::json;
use sim_server::key::{fnv1a64, CellKey, CellSpec};
use sim_server::metrics as server_metrics;
use sim_server::reqtrace::{us_since, RequestRecord, TraceId, Tracer, TRACE_HEADER};
use sim_server::retry::{self, RetryPolicy};
use sim_server::router::Ring;
use std::collections::{HashMap, HashSet};
use std::io::{self, Write};
use std::net::SocketAddr;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};
use telemetry::log;

/// Router configuration (CLI flags map onto this 1:1).
#[derive(Clone, Debug)]
pub struct RouteConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Backend `harness serve` addresses. Shard identity is positional:
    /// reordering the list remaps the key space (and cools every cache).
    pub shards: Vec<String>,
    /// Owners per key (`--replicas`): 1 disables failover; R gives every
    /// key a primary plus `R-1` distinct ring-successor followers.
    pub replicas: usize,
    /// Max attempts per shard sub-request (`--retry-budget`, min 1).
    pub retry_budget: u32,
    /// Consecutive transport failures that trip a shard's breaker
    /// (`--breaker-threshold`).
    pub breaker_threshold: u32,
    /// Deterministic *network* chaos seed (`--fault-seed`/`FAULT_SEED`):
    /// the router injects connect refusals, stalls, truncations and
    /// garbage status lines into its own fan-out client. Never installed
    /// ambiently — cell evaluation on the shards is untouched.
    pub fault_seed: Option<u64>,
    /// Shard sub-request timeout override in ms (`--timeout-ms`);
    /// `None` uses [`http::DEFAULT_TIMEOUT_MS`].
    pub timeout_ms: Option<u64>,
    /// Request-trace output directory (`--trace-dir`); `None` disables
    /// tracing. The router's ingress trace id is stamped onto every
    /// shard sub-request, so shard traces correlate by id.
    pub trace_dir: Option<std::path::PathBuf>,
    /// Deterministic 1-in-N trace sampling (`--trace-sample`).
    pub trace_sample: u64,
    /// Force-sample requests slower than this (`--slow-ms`).
    pub slow_ms: Option<u64>,
    /// Handler worker threads for the router front (`--workers`).
    pub workers: usize,
    /// Sweeps naming at most this many cells ride the interactive lane
    /// (`--priority-cells`); larger sweeps are bulk.
    pub priority_cells: usize,
}

/// An open breaker waits this long before granting a half-open probe.
const BREAKER_COOLDOWN: Duration = Duration::from_millis(500);
/// Cap on how long one 429 `Retry-After` is honored per retry: enough to
/// let real backpressure drain, short enough that a sweep's retry budget
/// is bounded in wall-clock time.
const RETRY_AFTER_CAP_MS: u64 = 250;

#[derive(Default)]
struct RouterMetrics {
    requests: u64,
    sweeps: u64,
    cells_routed: u64,
    shard_errors: u64,
    rejected: u64,
    bad_requests: u64,
    retries: u64,
    failovers: u64,
}

/// What one shard's `/v1/cells` sub-request produced.
enum ShardOutcome {
    /// Payloads by content address.
    Cells(HashMap<CellKey, String>),
    /// Backend backpressure: retry the whole sweep later.
    Busy { retry_after: u64 },
    /// Unreachable or answered with an error; its cells become
    /// `shard-down` failure rows.
    Down(String),
}

struct Router {
    shards: Vec<String>,
    ring: Ring,
    /// Benchmark names in suite order (identical for both scales).
    bench_names: Vec<String>,
    metrics: Mutex<RouterMetrics>,
    stop: StopHandle,
    tracer: Tracer,
    /// One circuit breaker per shard, indexed like `shards`.
    breakers: Vec<Mutex<Breaker>>,
    policy: RetryPolicy,
    /// Owners per key (≥ 1); clamped to the shard count by the ring.
    replicas: usize,
    /// Network chaos plan for the fan-out client (`--fault-seed`).
    net_plan: Option<FaultPlan>,
    /// Shard sub-request timeout (sweeps may simulate the full grid).
    sweep_timeout: Duration,
    /// Health probes and metric scrapes must not hang the front.
    probe_timeout: Duration,
    /// The HTTP front's per-lane dispatch counters, shared with the
    /// server so `/metrics` can render them as `sim_router_lane_*`.
    lanes: std::sync::Arc<http::LaneMetrics>,
}

/// Build the `/v1/cells` sub-request body for one shard's specs. All
/// specs of one sweep share scale, fault seed and pass pipeline, so they
/// are lifted from the first spec.
fn cells_body(specs: &[&CellSpec]) -> String {
    let items: Vec<String> = specs
        .iter()
        .map(|s| {
            format!(
                "{{\"bench\":\"{}\",\"version\":\"{}\",\"precision\":\"{}\"}}",
                json::escape(&s.bench),
                json::escape(&s.version),
                precision_to_wire(s.precision)
            )
        })
        .collect();
    let seed = specs[0]
        .fault_seed
        .map(|s| format!(",\"fault_seed\":{s}"))
        .unwrap_or_default();
    let passes = specs[0]
        .passes
        .as_deref()
        .map(|p| format!(",\"passes\":\"{}\"", json::escape(p)))
        .unwrap_or_default();
    format!(
        "{{\"scale\":\"{}\"{seed}{passes},\"cells\":[{}]}}",
        json::escape(&specs[0].scale),
        items.join(",")
    )
}

/// Parse a `/v1/cells` response body (`<key> <payload>` lines).
fn parse_cells_response(body: &[u8]) -> Option<HashMap<CellKey, String>> {
    let text = std::str::from_utf8(body).ok()?;
    let mut out = HashMap::new();
    for line in text.lines() {
        let (keyhex, payload) = line.split_once(' ')?;
        out.insert(keyhex.parse::<CellKey>().ok()?, payload.to_string());
    }
    Some(out)
}

fn shard_down_entry(message: String) -> CellEntry {
    CellEntry::Failed(CellError {
        kind: FailKind::ShardDown,
        message,
        attempts: 1,
        backoff_ms: 0,
    })
}

impl Router {
    fn new(
        cfg: &RouteConfig,
        stop: StopHandle,
        lanes: std::sync::Arc<http::LaneMetrics>,
    ) -> io::Result<Router> {
        let bench_names: Vec<String> = hpc_kernels::test_suite()
            .iter()
            .map(|b| b.name().to_string())
            .collect();
        let tracer = make_tracer(
            &cfg.trace_dir,
            cfg.trace_sample,
            cfg.slow_ms,
            &format!("sim-router {}", cfg.addr),
        )?;
        let sweep_timeout =
            Duration::from_millis(cfg.timeout_ms.unwrap_or(http::DEFAULT_TIMEOUT_MS));
        let probe_timeout =
            sweep_timeout.min(Duration::from_millis(http::DEFAULT_PROBE_TIMEOUT_MS));
        Ok(Router {
            ring: Ring::new(cfg.shards.len()),
            breakers: cfg
                .shards
                .iter()
                .map(|_| Mutex::new(Breaker::new(cfg.breaker_threshold, BREAKER_COOLDOWN)))
                .collect(),
            shards: cfg.shards.clone(),
            bench_names,
            metrics: Mutex::new(RouterMetrics::default()),
            stop,
            tracer,
            policy: RetryPolicy {
                budget: cfg.retry_budget.max(1),
                seed: cfg.fault_seed.unwrap_or(0),
                ..RetryPolicy::default()
            },
            replicas: cfg.replicas.max(1),
            // The chaos plan is scoped to the network ("net" fork of the
            // seed) and handed to the client per attempt — never
            // installed ambiently, so shard-side cell evaluation (which
            // reads the *ambient* plan) is untouched.
            net_plan: cfg.fault_seed.map(|s| FaultPlan::new(s).derive("net")),
            sweep_timeout,
            probe_timeout,
            lanes,
        })
    }

    fn breaker(&self, shard: usize) -> MutexGuard<'_, Breaker> {
        self.breakers[shard]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// May `shard` take traffic right now? Consults the breaker; an open
    /// breaker past its cooldown grants one half-open `/healthz` probe
    /// (control-plane: deliberately not under chaos), whose outcome
    /// closes or re-opens the breaker.
    fn shard_available(&self, shard: usize) -> bool {
        let decision = self.breaker(shard).decide();
        match decision {
            Decision::Allow => true,
            Decision::Deny => false,
            Decision::Probe => {
                let ok = matches!(
                    http::request(
                        &self.shards[shard],
                        "GET",
                        "/healthz",
                        b"",
                        self.probe_timeout
                    ),
                    Ok((200, _))
                );
                let mut b = self.breaker(shard);
                if ok {
                    b.on_success();
                } else {
                    b.on_failure();
                }
                ok
            }
        }
    }

    fn note_retry(&self) {
        self.metrics
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .retries += 1;
    }

    /// One shard sub-request with the full retry loop: transport
    /// failures back off (seeded; injected chaos skips the real sleep)
    /// and feed the shard's breaker; 429s wait out `Retry-After`
    /// (capped, defaulted when malformed) and retry. Returns only once
    /// the outcome is settled for this shard.
    fn call_shard(&self, shard: usize, specs: &[&CellSpec], id_hex: &str) -> ShardOutcome {
        let addr = &self.shards[shard];
        let body = cells_body(specs);
        let salt = fnv1a64(body.as_bytes());
        let mut attempt: u32 = 0;
        loop {
            let chaos = self.net_plan.as_ref().map(|p| {
                http::chaos_attempt_plan(p, "POST", "/v1/cells", body.as_bytes(), attempt)
            });
            let result = http::request_with_chaos(
                addr,
                "POST",
                "/v1/cells",
                &[(TRACE_HEADER, id_hex)],
                body.as_bytes(),
                self.sweep_timeout,
                chaos.as_ref(),
            );
            attempt += 1;
            match result {
                Ok((200, _, resp)) => {
                    self.breaker(shard).on_success();
                    return match parse_cells_response(&resp) {
                        Some(map) => ShardOutcome::Cells(map),
                        None => ShardOutcome::Down(format!(
                            "shard {addr} returned an unparseable cells response"
                        )),
                    };
                }
                Ok((429, headers, _)) => {
                    // The shard answered: transport is fine.
                    self.breaker(shard).on_success();
                    let retry_after = retry::parse_retry_after(
                        headers
                            .iter()
                            .find(|(k, _)| k == "retry-after")
                            .map(|(_, v)| v.as_str()),
                    );
                    if attempt >= self.policy.budget {
                        return ShardOutcome::Busy { retry_after };
                    }
                    self.note_retry();
                    std::thread::sleep(Duration::from_millis(
                        retry_after.saturating_mul(1000).min(RETRY_AFTER_CAP_MS),
                    ));
                }
                Ok((status, _, resp)) => {
                    // A non-2xx answer is the shard's deterministic
                    // verdict, not a transport flake: no retry.
                    self.breaker(shard).on_success();
                    return ShardOutcome::Down(format!(
                        "shard {addr} answered {status}: {}",
                        String::from_utf8_lossy(&resp).trim_end()
                    ));
                }
                Err(e) => {
                    self.breaker(shard).on_failure();
                    let msg = format!("shard {addr} unreachable: {e}");
                    if attempt >= self.policy.budget {
                        return ShardOutcome::Down(msg);
                    }
                    self.note_retry();
                    // Backoff is recorded into the policy's seeded
                    // schedule; injected chaos faults skip the real
                    // sleep so chaotic sweeps stay fast.
                    if !sim_faults::is_injected(&msg) {
                        std::thread::sleep(Duration::from_millis(
                            self.policy.backoff_ms(salt, attempt - 1),
                        ));
                    }
                }
            }
        }
    }

    fn handle(&self, req: &Request) -> Response {
        let t0 = Instant::now();
        // One trace id per request, accepted inbound or generated here;
        // `sweep` stamps it onto every shard sub-request. Header-only:
        // response bytes never carry it.
        let id = TraceId::from_header(req.header(TRACE_HEADER));
        self.metrics
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .requests += 1;
        let resp = match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => self.healthz(),
            ("GET", "/metrics") => self.metrics_page(),
            ("POST", "/v1/sweep") => {
                let mut rec = RequestRecord::new(id, &req.path);
                let resp = self.sweep(req, &mut rec);
                rec.status = resp.status;
                rec.total_us = us_since(t0);
                self.tracer.finish(&rec);
                resp
            }
            ("POST", "/v1/shutdown") => {
                // Best-effort fan-out: the fleet is one logical service,
                // so a router shutdown drains the backends too.
                for addr in &self.shards {
                    if let Err(e) =
                        http::request(addr, "POST", "/v1/shutdown", b"", self.probe_timeout)
                    {
                        log::progress(&format!("warning: shutdown of shard {addr} failed: {e}"));
                    }
                }
                self.stop.stop();
                Response::text(200, "shutting down\n")
            }
            ("GET", path) if path.starts_with("/v1/cell/") => {
                self.cell_proxy(path, &path["/v1/cell/".len()..])
            }
            _ => Response::json(404, "{\"error\":\"no such route\"}\n"),
        };
        resp.with_header(TRACE_HEADER, &id.to_string())
    }

    fn bad(&self, msg: &str) -> Response {
        self.metrics
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .bad_requests += 1;
        Response::json(400, format!("{{\"error\":\"{}\"}}\n", json::escape(msg)))
    }

    /// Probe every shard concurrently; healthy means HTTP 200.
    fn probe_shards(&self) -> Vec<Result<(), String>> {
        let mut states: Vec<Result<(), String>> = Vec::with_capacity(self.shards.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|addr| {
                    scope.spawn(move || {
                        match http::request(addr, "GET", "/healthz", b"", self.probe_timeout) {
                            Ok((200, _)) => Ok(()),
                            Ok((status, _)) => Err(format!("answered {status}")),
                            Err(e) => Err(format!("unreachable: {e}")),
                        }
                    })
                })
                .collect();
            for h in handles {
                states.push(h.join().unwrap_or_else(|_| Err("probe panicked".into())));
            }
        });
        states
    }

    fn healthz(&self) -> Response {
        let states = self.probe_shards();
        if states.iter().all(Result::is_ok) {
            return Response::text(200, "ok\n");
        }
        let mut body = String::new();
        for (i, (addr, state)) in self.shards.iter().zip(&states).enumerate() {
            match state {
                Ok(()) => body.push_str(&format!("shard {i} {addr}: ok\n")),
                Err(e) => body.push_str(&format!("shard {i} {addr}: {e}\n")),
            }
        }
        Response::text(503, body)
    }

    /// Aggregate shard `/metrics` pages (sum counters, max latencies) and
    /// append the router's own counters.
    fn metrics_page(&self) -> Response {
        let mut pages: Vec<String> = Vec::new();
        let mut up = 0usize;
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|addr| {
                    scope.spawn(move || {
                        match http::request(addr, "GET", "/metrics", b"", self.probe_timeout) {
                            Ok((200, body)) => String::from_utf8(body).ok(),
                            _ => None,
                        }
                    })
                })
                .collect();
            for h in handles {
                if let Some(page) = h.join().ok().flatten() {
                    pages.push(page);
                    up += 1;
                }
            }
        });
        let mut out = server_metrics::aggregate_pages(&pages);
        let m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        // Typed router lines: the `# TYPE` declarations are what tells
        // a downstream aggregation that e.g. `sim_router_replicas` is a
        // gauge (max across pages), not a counter to sum.
        for (name, help, kind, v) in [
            (
                "sim_router_shards",
                "Backend shards configured on this router.",
                "gauge",
                self.shards.len() as u64,
            ),
            (
                "sim_router_shards_up",
                "Backend shards that answered the last metrics scrape.",
                "gauge",
                up as u64,
            ),
            (
                "sim_router_replicas",
                "Owners per cell key (1 = no failover).",
                "gauge",
                self.replicas as u64,
            ),
            (
                "sim_router_requests_total",
                "HTTP requests accepted by the router front.",
                "counter",
                m.requests,
            ),
            (
                "sim_router_sweeps_total",
                "Sweep requests routed.",
                "counter",
                m.sweeps,
            ),
            (
                "sim_router_cells_routed_total",
                "Distinct cells partitioned across shards.",
                "counter",
                m.cells_routed,
            ),
            (
                "sim_router_shard_errors_total",
                "Shard sub-requests that settled as errors.",
                "counter",
                m.shard_errors,
            ),
            (
                "sim_router_rejected_total",
                "Sweeps answered 429 because a shard stayed busy.",
                "counter",
                m.rejected,
            ),
            (
                "sim_router_bad_requests_total",
                "Requests rejected with 4xx other than 429.",
                "counter",
                m.bad_requests,
            ),
            (
                "sim_router_retries_total",
                "Shard sub-request retries.",
                "counter",
                m.retries,
            ),
            (
                "sim_router_failovers_total",
                "Cells re-routed to a replica owner.",
                "counter",
                m.failovers,
            ),
            (
                "sim_router_net_stall_recorded_ms_total",
                "Injected network stall time recorded (not slept).",
                "counter",
                http::net_stall_recorded_ms_total(),
            ),
        ] {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {v}\n"
            ));
        }
        drop(m);
        out.push_str(
            "# HELP sim_router_breaker_state Per-shard circuit breaker (0 closed, 1 half-open, 2 open).\n\
             # TYPE sim_router_breaker_state gauge\n",
        );
        for (i, b) in self.breakers.iter().enumerate() {
            let state = b.lock().unwrap_or_else(|e| e.into_inner()).state();
            out.push_str(&format!(
                "sim_router_breaker_state{{shard=\"{i}\"}} {}\n",
                state.code()
            ));
        }
        server_metrics::render_lanes("sim_router", &self.lanes.snapshot(), &mut out);
        Response::text(200, out)
    }

    /// Proxy a cell inspection to the shard that owns the key.
    fn cell_proxy(&self, path: &str, keyhex: &str) -> Response {
        let Ok(key) = keyhex.parse::<CellKey>() else {
            return self.bad("cell key must be 16 hex digits");
        };
        let addr = &self.shards[self.ring.shard_of(key)];
        match http::request(addr, "GET", path, b"", self.probe_timeout) {
            Ok((status, body)) => Response::json(status, body),
            Err(e) => Response::json(
                503,
                format!(
                    "{{\"error\":\"shard {} unreachable: {}\"}}\n",
                    json::escape(addr),
                    json::escape(&e.to_string())
                ),
            ),
        }
    }

    fn sweep(&self, req: &Request, rec: &mut RequestRecord) -> Response {
        let started = Instant::now();
        let parsed = parse_sweep(&self.bench_names, &req.body);
        let parse_us = us_since(started);
        rec.span("parse", 0, parse_us);
        let cells = match parsed {
            Ok(c) => c,
            Err(msg) => return self.bad(&msg),
        };

        // Each distinct cell gets an owner list: the primary plus
        // `replicas - 1` distinct ring successors it may fail over to.
        struct PendingCell<'a> {
            spec: &'a CellSpec,
            owners: Vec<usize>,
            /// Next owner rank to try.
            rank: usize,
            last_err: Option<String>,
        }
        let mut seen: HashSet<CellKey> = HashSet::new();
        let mut pending: Vec<PendingCell<'_>> = Vec::new();
        for (spec, _) in &cells {
            let key = spec.key();
            if seen.insert(key) {
                pending.push(PendingCell {
                    spec,
                    owners: self.ring.owners(key, self.replicas),
                    rank: 0,
                    last_err: None,
                });
            }
        }
        {
            let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
            m.sweeps += 1;
            m.cells_routed += seen.len() as u64;
        }

        // Fan out in waves. Wave 0 targets every cell's first available
        // owner (the primary unless its breaker is open); a shard that
        // fails its whole retry budget sends its cells to the next wave,
        // which re-routes them to their next owner. A cell degrades to a
        // `shard-down` row only when every owner has been exhausted.
        let id_hex = rec.id.to_string();
        let mut payloads: HashMap<CellKey, String> = HashMap::new();
        let mut down: HashMap<CellKey, String> = HashMap::new();
        let mut shards_down: HashSet<usize> = HashSet::new();
        let mut wave = 0usize;
        while !pending.is_empty() {
            // Assign every pending cell to its next live owner, skipping
            // shards whose breaker denies traffic right now. Availability
            // is computed once per shard per wave.
            let mut available: HashMap<usize, bool> = HashMap::new();
            let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
            let mut exhausted: Vec<usize> = Vec::new();
            let mut failovers = 0u64;
            for (idx, cell) in pending.iter_mut().enumerate() {
                while cell.rank < cell.owners.len() {
                    let shard = cell.owners[cell.rank];
                    let ok = *available
                        .entry(shard)
                        .or_insert_with(|| self.shard_available(shard));
                    if ok {
                        break;
                    }
                    cell.last_err
                        .get_or_insert_with(|| format!("shard {shard} quarantined (breaker open)"));
                    cell.rank += 1;
                }
                if cell.rank >= cell.owners.len() {
                    exhausted.push(idx);
                } else {
                    if cell.rank > 0 {
                        failovers += 1;
                    }
                    groups[cell.owners[cell.rank]].push(idx);
                }
            }
            if failovers > 0 {
                self.metrics
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .failovers += failovers;
            }
            for idx in &exhausted {
                let cell = &pending[*idx];
                down.insert(
                    cell.spec.key(),
                    cell.last_err
                        .clone()
                        .unwrap_or_else(|| "no owner available".into()),
                );
            }
            if groups.iter().all(Vec::is_empty) {
                break;
            }

            // Contact this wave's shards concurrently, propagating the
            // ingress trace id so every shard's spans and log lines
            // carry it.
            let fanout_off = us_since(started);
            let mut outcomes: Vec<Option<(ShardOutcome, u64)>> =
                Vec::with_capacity(self.shards.len());
            std::thread::scope(|scope| {
                let id_hex = &id_hex;
                let pending = &pending;
                let handles: Vec<_> = groups
                    .iter()
                    .enumerate()
                    .map(|(shard, idxs)| {
                        scope.spawn(move || {
                            if idxs.is_empty() {
                                return None;
                            }
                            let specs: Vec<&CellSpec> =
                                idxs.iter().map(|&i| pending[i].spec).collect();
                            let shard_started = Instant::now();
                            let outcome = self.call_shard(shard, &specs, id_hex);
                            Some((outcome, us_since(shard_started)))
                        })
                    })
                    .collect();
                for h in handles {
                    outcomes.push(h.join().unwrap_or_else(|_| {
                        Some((ShardOutcome::Down("sub-request thread panicked".into()), 0))
                    }));
                }
            });
            // One span per contacted shard; they overlap, all starting
            // at the wave's fan-out point. Failover waves carry a wave
            // suffix so traces show the re-route.
            for (i, o) in outcomes.iter().enumerate() {
                if let Some((_, dur_us)) = o {
                    let name = if wave == 0 {
                        format!("shard_{i}")
                    } else {
                        format!("shard_{i}_w{wave}")
                    };
                    rec.span(name, fanout_off, *dur_us);
                }
            }

            // Backpressure first: a busy shard makes the sweep
            // retryable as a whole (its siblings' finished cells are
            // cached, so the client's retry costs only the busy shard's
            // work).
            let max_retry = outcomes
                .iter()
                .flatten()
                .filter_map(|(o, _)| match o {
                    ShardOutcome::Busy { retry_after } => Some(*retry_after),
                    _ => None,
                })
                .max();
            if let Some(retry_after) = max_retry {
                self.metrics
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .rejected += 1;
                return Response::json(
                    429,
                    format!("{{\"error\":\"shard busy\",\"retry_after\":{retry_after}}}\n"),
                )
                .with_header("Retry-After", &retry_after.to_string());
            }

            // Settle this wave: resolved cells leave `pending`, cells on
            // a down shard advance to their next owner.
            let mut next_wave: Vec<usize> = Vec::new();
            for (shard, outcome) in outcomes.into_iter().enumerate() {
                match outcome {
                    None => {}
                    Some((ShardOutcome::Cells(map), _)) => payloads.extend(map),
                    Some((ShardOutcome::Busy { .. }, _)) => unreachable!("busy handled above"),
                    Some((ShardOutcome::Down(msg), _)) => {
                        self.metrics
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .shard_errors += 1;
                        shards_down.insert(shard);
                        log::progress(&format!("warning: {msg}"));
                        for &idx in &groups[shard] {
                            next_wave.push(idx);
                        }
                        for &idx in &groups[shard] {
                            let cell = &mut pending[idx];
                            cell.rank += 1;
                            cell.last_err = Some(msg.clone());
                        }
                    }
                }
            }
            next_wave.sort_unstable();
            let keep: HashSet<usize> = next_wave.into_iter().collect();
            let mut idx = 0usize;
            pending.retain(|_| {
                let k = keep.contains(&idx);
                idx += 1;
                k
            });
            wave += 1;
        }
        let shards_down = shards_down.len();

        // Assemble one SuiteResults over exactly the requested cells and
        // format once — the same shared `jsonl_row` path as the backends
        // and the offline artifact, which is what keeps routed bytes
        // identical to unrouted ones.
        let format_off = us_since(started);
        let mut results = SuiteResults {
            cells: HashMap::new(),
            bench_names: self.bench_names.clone(),
        };
        for (spec, _) in &cells {
            let Some((coord, _)) = spec_coord(spec) else {
                continue;
            };
            if results.cells.contains_key(&coord) {
                continue;
            }
            let key = spec.key();
            let entry = match payloads.get(&key) {
                Some(payload) => checkpoint::decode_entry(payload)
                    .unwrap_or_else(|| shard_down_entry("shard payload corrupt".into())),
                None => shard_down_entry(
                    down.get(&key)
                        .cloned()
                        .unwrap_or_else(|| "shard returned no payload for cell".into()),
                ),
            };
            results.cells.insert(coord, entry);
        }
        let mut body = String::new();
        for (spec, prec) in &cells {
            let Some(((bench, v, _), _)) = spec_coord(spec) else {
                continue;
            };
            body.push_str(&export::jsonl_row(&results, &bench, v, *prec));
            body.push('\n');
        }
        rec.span("format", format_off, us_since(started) - format_off);
        rec.note("cells", seen.len());
        rec.note("shards", self.shards.len());
        rec.note("shards_down", shards_down);
        log::debug(&format!(
            "routed sweep: {} cells over {} shards in {} ms",
            seen.len(),
            self.shards.len(),
            started.elapsed().as_millis()
        ));
        Response::jsonl(200, body)
    }
}

// ---- entry points ----

/// A router running on a background thread (tests, embedding).
pub struct RunningRouter {
    pub addr: SocketAddr,
    stop: StopHandle,
    thread: std::thread::JoinHandle<io::Result<()>>,
}

impl RunningRouter {
    /// Stop the router's acceptor and join its thread. Backends are left
    /// running (only `POST /v1/shutdown` drains the whole fleet).
    pub fn shutdown(self) -> io::Result<()> {
        self.stop.stop();
        self.thread
            .join()
            .map_err(|_| io::Error::other("router thread panicked"))?
    }
}

fn run_on(mut server: Server, cfg: RouteConfig) -> io::Result<()> {
    server.set_workers(cfg.workers);
    server.set_priority_cells(cfg.priority_cells);
    let stop = server.stop_handle()?;
    let router = Router::new(&cfg, stop, server.lane_metrics())?;
    server.run(|req| router.handle(req))
}

/// Bind and route on a background thread; returns the resolved address.
pub fn start(cfg: RouteConfig) -> io::Result<RunningRouter> {
    let server = Server::bind(&cfg.addr)?;
    let addr = server.local_addr()?;
    let stop = server.stop_handle()?;
    let thread = std::thread::Builder::new()
        .name("sim-router-acceptor".into())
        .spawn(move || run_on(server, cfg))?;
    Ok(RunningRouter { addr, stop, thread })
}

/// Bind and route on the calling thread (the `harness route` path).
/// Prints the resolved listen address to stdout first, so scripts
/// binding port 0 can discover the port.
pub fn route(cfg: RouteConfig) -> io::Result<()> {
    let server = Server::bind(&cfg.addr)?;
    let addr = server.local_addr()?;
    println!("listening on {addr}");
    io::stdout().flush()?;
    run_on(server, cfg)
}
