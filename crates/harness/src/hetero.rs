//! Extension experiment: heterogeneous CPU+GPU co-execution.
//!
//! The related work the paper builds on (Maghazeh et al., SAMOS'13) asks
//! whether embedded CPU *and* GPU together beat either alone. On the
//! Exynos 5250 the devices share one DRAM channel, so the answer depends
//! on the roofline regime — and it comes out the opposite of naive
//! intuition: the compute-bound kernel gains ~nothing (the GPU is so much
//! faster that the A15s' contribution is a sliver), while the memory-bound
//! kernel gains measurably, because *neither device alone saturates the
//! channel* — until their combined demand does. This module splits a
//! benchmark's NDRange by a fraction `f` — first `f·n` items on the GPU,
//! the rest on the CPU pair — sweeps `f`, and reports the best split.
//!
//! Co-execution time model: the devices run concurrently, so
//! `time(f) = max(t_gpu(f·n), t_cpu((1−f)·n))`, with each side's DRAM
//! traffic re-priced against the *shared* channel by summing both sides'
//! bandwidth demand over the overlap window.

use hpc_kernels::common::{gpu_context, launch};
use hpc_kernels::Precision;
use kernel_ir::{ArgBinding, BufferData, MemoryPool, NDRange, Scalar};
use ocl_runtime::KernelArg;
use powersim::Activity;

/// Outcome of one split point.
#[derive(Clone, Debug)]
pub struct SplitPoint {
    /// Fraction of the work given to the GPU.
    pub gpu_fraction: f64,
    pub gpu_time_s: f64,
    pub cpu_time_s: f64,
    /// Co-execution wall time with shared-bandwidth correction.
    pub time_s: f64,
    pub activity: Activity,
}

/// Shared-DRAM correction: when both devices stream concurrently, the
/// combined demand can exceed the channel. Inflate the overlap window by
/// the over-subscription factor.
fn co_execution_time(gpu_time: f64, cpu_time: f64, gpu_act: &Activity, cpu_act: &Activity) -> f64 {
    let overlap = gpu_time.min(cpu_time);
    if overlap <= 0.0 {
        return gpu_time.max(cpu_time);
    }
    let channel_bw = 5.12e9; // sustained DDR3L-1600 x32 (see memsim::DramConfig)
    let demand = gpu_act.dram_bw() + cpu_act.dram_bw();
    let oversub = (demand / channel_bw).max(1.0);
    let serial_tail = gpu_time.max(cpu_time) - overlap;
    overlap * oversub + serial_tail
}

/// Run the nbody kernel split across both devices (compute-bound regime) or
/// the vecop kernel (memory-bound regime).
pub fn run_split(bench: &str, gpu_fraction: f64) -> SplitPoint {
    assert!((0.0..=1.0).contains(&gpu_fraction));
    match bench {
        "nbody" => split_nbody(gpu_fraction),
        "vecop" => split_vecop(gpu_fraction),
        other => panic!("hetero split supports nbody|vecop, got {other}"),
    }
}

fn round_to(x: usize, granule: usize) -> usize {
    (x / granule) * granule
}

fn split_nbody(f: f64) -> SplitPoint {
    let b = hpc_kernels::nbody::Nbody {
        n: 512,
        dt: 0.01,
        opt_unroll: 4,
    };
    let n_gpu = round_to((b.n as f64 * f) as usize, 32);
    let n_cpu = b.n - n_gpu;
    // GPU side: first n_gpu bodies' outputs.
    let (gpu_time, gpu_act) = if n_gpu > 0 {
        let (mut ctx, ids) = gpu_context(vec![
            Precision::F32.buffer(&b.bodies()),
            BufferData::zeroed(Scalar::F32, b.n * 4),
        ]);
        let k = ctx
            .build_kernel(b.kernel(Precision::F32, kernel_ir::Hints::default()))
            .expect("builds");
        let args: Vec<KernelArg> = ids.iter().map(|&x| KernelArg::Buf(x)).collect();
        launch(&mut ctx, &k, [n_gpu, 1, 1], Some([32, 1, 1]), &args).expect("launch")
    } else {
        (0.0, Activity::default())
    };
    // CPU side: remaining bodies on both cores.
    let (cpu_time, cpu_act) = if n_cpu > 0 {
        let mut pool = MemoryPool::new();
        let pb = pool.add(Precision::F32.buffer(&b.bodies()));
        let ob = pool.add(BufferData::zeroed(Scalar::F32, b.n * 4));
        let dev = hpc_kernels::common::cpu();
        let rep = dev
            .run(
                &b.kernel(Precision::F32, kernel_ir::Hints::default()),
                &[ArgBinding::Global(pb), ArgBinding::Global(ob)],
                &mut pool,
                NDRange::d1(n_cpu, 32.min(n_cpu)),
                2,
            )
            .expect("cpu runs");
        (rep.time_s, rep.activity)
    } else {
        (0.0, Activity::default())
    };
    finish_split(f, gpu_time, cpu_time, gpu_act, cpu_act)
}

fn split_vecop(f: f64) -> SplitPoint {
    let n = 1 << 18;
    let b = hpc_kernels::vecop::Vecop { n };
    let n_gpu = round_to((n as f64 * f) as usize, 1024);
    let n_cpu = n - n_gpu;
    let (gpu_time, gpu_act) = if n_gpu > 0 {
        let (mut ctx, ids) = gpu_context(vec![
            BufferData::zeroed(Scalar::F32, n),
            BufferData::zeroed(Scalar::F32, n),
            BufferData::zeroed(Scalar::F32, n),
        ]);
        let (prog, width) = b.opt_kernel(Precision::F32);
        let k = ctx.build_kernel(prog).expect("builds");
        let args: Vec<KernelArg> = ids.iter().map(|&x| KernelArg::Buf(x)).collect();
        launch(
            &mut ctx,
            &k,
            [n_gpu / width as usize, 1, 1],
            Some([128, 1, 1]),
            &args,
        )
        .expect("launch")
    } else {
        (0.0, Activity::default())
    };
    let (cpu_time, cpu_act) = if n_cpu > 0 {
        let mut pool = MemoryPool::new();
        let ids: Vec<ArgBinding> = (0..3)
            .map(|_| ArgBinding::Global(pool.add(BufferData::zeroed(Scalar::F32, n))))
            .collect();
        let dev = hpc_kernels::common::cpu();
        let rep = dev
            .run(
                &b.kernel(Precision::F32),
                &ids,
                &mut pool,
                NDRange::d1(n_cpu, 256.min(n_cpu)),
                2,
            )
            .expect("cpu runs");
        (rep.time_s, rep.activity)
    } else {
        (0.0, Activity::default())
    };
    finish_split(f, gpu_time, cpu_time, gpu_act, cpu_act)
}

fn finish_split(
    f: f64,
    gpu_time: f64,
    cpu_time: f64,
    gpu_act: Activity,
    cpu_act: Activity,
) -> SplitPoint {
    let time = co_execution_time(gpu_time, cpu_time, &gpu_act, &cpu_act);
    let mut activity = gpu_act.concat(&cpu_act);
    activity.duration_s = time;
    SplitPoint {
        gpu_fraction: f,
        gpu_time_s: gpu_time,
        cpu_time_s: cpu_time,
        time_s: time,
        activity,
    }
}

/// Sweep the split fraction; returns (points, best index).
pub fn sweep(bench: &str) -> (Vec<SplitPoint>, usize) {
    let fracs = [0.0, 0.25, 0.5, 0.625, 0.75, 0.875, 1.0];
    let points: Vec<SplitPoint> = fracs.iter().map(|&f| run_split(bench, f)).collect();
    let best = points
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.time_s.total_cmp(&b.1.time_s))
        .map(|(i, _)| i)
        .unwrap();
    (points, best)
}

/// Render the report.
pub fn report() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== extension: CPU+GPU co-execution (the Maghazeh et al. question) =="
    );
    for bench in ["nbody", "vecop"] {
        let regime = if bench == "nbody" {
            "compute-bound"
        } else {
            "memory-bound"
        };
        let _ = writeln!(out, "\n{bench} ({regime}):");
        let (points, best) = sweep(bench);
        let gpu_only = points.last().unwrap().time_s;
        for (i, p) in points.iter().enumerate() {
            let marker = if i == best { "  <-- best split" } else { "" };
            let _ = writeln!(
                out,
                "  GPU {:>5.1}%: total {:>8.3} ms (gpu {:>8.3}, cpu {:>8.3}){marker}",
                p.gpu_fraction * 100.0,
                p.time_s * 1e3,
                p.gpu_time_s * 1e3,
                p.cpu_time_s * 1e3
            );
        }
        let _ = writeln!(
            out,
            "  co-execution gain over GPU-only: {:.2}x",
            gpu_only / points[best].time_s
        );
    }
    let _ = writeln!(
        out,
        "\nInterpretation: for the compute-bound kernel the GPU is ~6x faster than\n\
         both A15s together, so the optimal schedule gives the CPU at most a\n\
         sliver and co-execution gains ~nothing over GPU-only. The memory-bound\n\
         kernel is the surprise: neither device alone saturates the DRAM channel\n\
         (each is capped by its own LS path), so a 50/50 split overlaps their\n\
         bandwidth demands for a real gain — until the shared channel clips it."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_match_single_device_runs() {
        let all_gpu = run_split("nbody", 1.0);
        assert_eq!(all_gpu.cpu_time_s, 0.0);
        assert!(all_gpu.gpu_time_s > 0.0);
        assert_eq!(all_gpu.time_s, all_gpu.gpu_time_s);
        let all_cpu = run_split("nbody", 0.0);
        assert_eq!(all_cpu.gpu_time_s, 0.0);
        assert!(
            all_cpu.time_s > all_gpu.time_s,
            "CPU-only must be slower for nbody"
        );
    }

    #[test]
    fn compute_bound_kernel_benefits_from_splitting() {
        let (points, best) = sweep("nbody");
        let gpu_only = points.last().unwrap().time_s;
        assert!(
            points[best].time_s <= gpu_only,
            "a split should never lose to GPU-only (scheduler can pick 100%)"
        );
        // nbody is ~7x faster on the GPU than on 2 CPU cores, so the
        // optimal split gives the CPU a sliver and gains a few percent.
        assert!(points[best].gpu_fraction >= 0.5);
    }

    #[test]
    fn memory_bound_kernel_gains_but_channel_caps_it() {
        let (points, best) = sweep("vecop");
        let gpu_only = points.last().unwrap().time_s;
        let gain = gpu_only / points[best].time_s;
        // Neither device saturates DRAM alone, so splitting helps — but the
        // shared channel caps the gain well below the 2x a private-memory
        // system would allow.
        assert!(
            gain > 1.05,
            "some co-execution gain expected (got {gain:.2}x)"
        );
        assert!(
            gain < 1.6,
            "shared DRAM should cap vecop's co-execution gain (got {gain:.2}x)"
        );
    }

    #[test]
    fn oversubscription_inflates_overlap() {
        let busy = Activity {
            duration_s: 1.0,
            dram_bytes: 6_000_000_000, // 6 GB/s demand each
            ..Default::default()
        };
        let t = co_execution_time(1.0, 1.0, &busy, &busy);
        assert!(
            t > 2.0,
            "12 GB/s onto a 5.12 GB/s channel must stretch time, got {t}"
        );
        let idle = Activity {
            duration_s: 1.0,
            ..Default::default()
        };
        assert_eq!(co_execution_time(2.0, 0.0, &idle, &idle), 2.0);
    }
}
