//! `--trace <dir>` — one Chrome trace-event file per measured cell.
//!
//! Each file opens directly in Perfetto (or `chrome://tracing`): the
//! device is a process, its command queue and cores are threads, queue
//! commands and per-core work-group intervals are complete spans, and the
//! simulated WT230 board power is overlaid as a counter track. Real
//! kernels finish in micro/milliseconds while the meter samples at 10 Hz,
//! so the power track oversamples the model (with the meter's rated
//! sample noise) instead of replaying genuine meter readings.

use crate::artifact::atomic_write;
use crate::export::to_jsonl;
use crate::runner::{Cell, SuiteResults};
use hpc_kernels::{Precision, Variant};
use powersim::PowerModel;
use sim_rng::Pcg32;
use std::io;
use std::path::{Path, PathBuf};
use telemetry::TraceBuilder;

/// Number of power samples overlaid on each trace.
const POWER_SAMPLES: u32 = 32;

/// Build the trace for one cell. `pid` 1 is the executing device; tid 0
/// is the command queue (CPU runs: the parallel region), tids 1… are the
/// cores.
pub fn build_trace(bench: &str, v: Variant, prec: Precision, cell: &Cell) -> TraceBuilder {
    let tel = &cell.outcome.telemetry;
    let mut tb = TraceBuilder::new();
    let (device, queue, core) = if v.on_gpu() {
        ("mali-t604", "command queue", "shader core")
    } else {
        ("cortex-a15", "parallel region", "cpu core")
    };
    tb.process_name(
        1,
        &format!("{device} — {bench} {} {}", v.label(), prec.label()),
    );
    tb.thread_name(1, 0, queue);
    let mut cores: Vec<u32> = tel.core_spans.iter().map(|s| s.core).collect();
    cores.sort_unstable();
    cores.dedup();
    for &c in &cores {
        tb.thread_name(1, c + 1, &format!("{core} {c}"));
    }
    for cmd in &tel.commands {
        tb.span(&cmd.name, cmd.cat, 1, 0, cmd.start_s, cmd.duration_s());
    }
    for s in &tel.core_spans {
        tb.span(
            &format!("wg {}", s.group),
            "workgroup",
            1,
            s.core + 1,
            s.start_s,
            s.duration_s(),
        );
    }

    // Power overlay: the model's mean board power for this activity,
    // jittered by the WT230's rated sample noise (±0.05%).
    let t_end = tel.commands.iter().map(|c| c.end_s).fold(0.0, f64::max);
    if t_end > 0.0 {
        let model = PowerModel::default();
        let watts = model.average_power(&cell.outcome.activity);
        let mut rng = Pcg32::seed_from_u64(trace_seed(bench, v, prec));
        for i in 0..=POWER_SAMPLES {
            let ts = t_end * i as f64 / POWER_SAMPLES as f64;
            let sample = watts * (1.0 + rng.gen_range_f64(-5e-4, 5e-4));
            tb.counter("WT230 power (W)", 1, ts, &[("board_w", sample)]);
        }
    }
    tb
}

fn trace_seed(bench: &str, v: Variant, prec: Precision) -> u64 {
    let mut s: u64 = match prec {
        Precision::F32 => 32,
        Precision::F64 => 64,
    };
    s = s.wrapping_mul(31).wrapping_add(v as u64);
    for b in bench.bytes() {
        s = s.wrapping_mul(31).wrapping_add(b as u64);
    }
    s
}

/// File name for one cell's trace.
pub fn trace_file_name(bench: &str, v: Variant, prec: Precision) -> String {
    format!(
        "{bench}_{}_{}.trace.json",
        v.label().replace(' ', "-"),
        prec.label()
    )
}

/// Write one trace file per measured cell into `dir` (created if absent),
/// plus the `metrics.jsonl` artifact. Returns the trace paths written.
pub fn write_traces(results: &SuiteResults, dir: &Path) -> io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    for bench in &results.bench_names {
        for prec in Precision::ALL {
            for v in Variant::ALL {
                if let Some(cell) = results.cell(bench, v, prec) {
                    let path = dir.join(trace_file_name(bench, v, prec));
                    atomic_write(
                        &path,
                        build_trace(bench, v, prec, cell).to_json().as_bytes(),
                    )?;
                    written.push(path);
                }
            }
        }
    }
    atomic_write(&dir.join("metrics.jsonl"), to_jsonl(results).as_bytes())?;
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::measure;
    use hpc_kernels::Benchmark;

    fn cell_for(b: &dyn Benchmark, v: Variant) -> Cell {
        let outcome = b.run(v, Precision::F32).unwrap();
        let output_digest = hpc_kernels::take_output_digest();
        let model = PowerModel::default();
        let (m, iters, e) = measure(&outcome, &model, 7);
        let counters = outcome.telemetry.counters.clone();
        Cell {
            outcome,
            measurement: m,
            iterations: iters,
            energy_j: e,
            counters,
            attempts: 1,
            output_digest,
        }
    }

    #[test]
    fn trace_spans_account_for_reported_time() {
        let benches = hpc_kernels::test_suite();
        for b in benches
            .iter()
            .filter(|b| ["vecop", "dmmm"].contains(&b.name()))
        {
            for v in [Variant::Serial, Variant::OpenCl, Variant::OpenClOpt] {
                let cell = cell_for(b.as_ref(), v);
                let t = cell.outcome.time_s;
                let kt = cell.outcome.telemetry.kernel_time_s();
                assert!(
                    (kt - t).abs() <= 0.01 * t,
                    "{} {}: span total {kt:.3e} vs time_s {t:.3e}",
                    b.name(),
                    v.label()
                );
                let json = build_trace(b.name(), v, Precision::F32, &cell).to_json();
                assert!(json.starts_with("{\"traceEvents\":["));
                assert!(json.contains(r#""ph":"X""#), "{}", b.name());
                assert!(json.contains(r#""ph":"M""#));
                assert!(json.contains(r#""ph":"C""#));
                assert!(json.contains("board_w"));
            }
        }
    }

    #[test]
    fn file_names_are_filesystem_safe() {
        let n = trace_file_name("dmmm", Variant::OpenClOpt, Precision::F32);
        assert_eq!(n, "dmmm_OpenCL-Opt_single.trace.json");
        assert!(!n.contains(' '));
    }
}
