//! CLI for the reproduction harness.
//!
//! ```text
//! harness all            # every figure + summary (paper-scale inputs)
//! harness fig2a|fig2b    # Figure 2 speedups
//! harness fig3a|fig3b    # Figure 3 power
//! harness fig4a|fig4b    # Figure 4 energy-to-solution
//! harness summary        # §V-D headline numbers
//! harness suite          # run the sweep, print a completion report
//! harness ablation       # §III per-technique decomposition
//! harness dvfs           # extension: GPU frequency/voltage sweep
//! harness roofline       # roofline placement of the GPU kernels
//! harness hetero         # extension: CPU+GPU co-execution splits
//! harness csv            # machine-readable results (one row per cell)
//! harness jsonl          # same cells as JSON Lines (counter fields incl.)
//! harness profile <b>    # per-variant performance-counter report
//! harness bench-self     # simulator self-benchmark -> BENCH_sim.json
//! harness autotune       # optimizer phase-ordering search -> BENCH_opt.json
//! harness serve          # HTTP experiment service (cache + batching)
//! harness route          # shard a sweep across serve backends
//! harness submit         # client for a running serve/route instance
//! ```
//!
//! Run `harness --help` for the flags (fault injection, resume,
//! fail-fast, traces, threads) and the exit-code contract.

use harness::{fig2, fig3, fig4, run_suite_with, summary, SuiteConfig};
use hpc_kernels::Precision;
use telemetry::log;

const KNOWN: [&str; 21] = [
    "all",
    "fig2a",
    "fig2b",
    "fig3a",
    "fig3b",
    "fig4a",
    "fig4b",
    "summary",
    "suite",
    "ablation",
    "dvfs",
    "roofline",
    "hetero",
    "csv",
    "jsonl",
    "profile",
    "bench-self",
    "autotune",
    "serve",
    "route",
    "submit",
];

fn usage() -> String {
    format!(
        "usage: harness [{}] [flags]

flags:
  --test-scale        small inputs (fast; CI scale)
  --trace <dir>       one Chrome trace file per cell + metrics.jsonl
  --threads <n>       simulation worker threads (or SIM_THREADS env)
  --fault-seed <n>    enable deterministic fault injection with this seed
                      (or FAULT_SEED env); same seed => byte-identical
                      artifacts at any thread count
  --state <path>      checkpoint file for suite runs (default suite.state
                      when --resume is given; otherwise no checkpointing
                      unless --state is passed)
  --resume            preload finished cells from the checkpoint instead
                      of rerunning them
  --keep-going        record cell failures and continue (default)
  --fail-fast         stop scheduling new cells after the first failure
                      (remaining cells export as status=fail/aborted;
                      which cells were reached depends on thread timing)
  --check             with bench-self: exit 2 unless every engine/thread
                      pass produced byte-identical outputs; with autotune:
                      exit 2 unless every pipeline produced byte-identical
                      kernel outputs
  --passes <list>     run kernels through this optimizer pass pipeline
                      (comma-separated, e.g. cf,cse,dce, or 'full'; same
                      names as the SIM_PASSES env var); for suite/figure
                      runs it pins the sweep's pipeline (part of the
                      checkpoint identity), for submit it is forwarded
                      with the sweep and folded into every cell key
  --quiet | --verbose log verbosity
  --help              this text

autotune flags:
  --test-scale        tune at test scale (default: paper scale)
  --smoke             smoke-sized candidate set (baseline, full, 2
                      shuffles) instead of the full search
  --addr <host:port>  evaluate candidates through a running serve/route
                      instance (default: in-process); each candidate is
                      one sweep, cells cached by their pass list
  --check             exit 2 unless outputs were identical across all
                      candidate pipelines
  --timeout-ms <n>    fleet request timeout (default 600000)

serve flags:
  --addr <host:port>  bind address (default 127.0.0.1:8080; port 0 binds
                      an ephemeral port, printed as 'listening on ...')
  --capacity <n>      result-cache capacity in cells (default 1024; 0
                      disables caching)
  --queue <n>         scheduler queue bound; overflowing sweeps get 429
                      (default 256)
  --cache <path>      persist the cache here (atomic rewrite after every
                      batch; restored on startup)
  --warm <path>       warm-start the cache from a simstate checkpoint
                      (repeatable)
  --trace-dir <dir>   per-request tracing: requests.log (one line per
                      sweep request) plus req-<traceid>.json Perfetto
                      traces for sampled requests; response bytes are
                      never affected
  --trace-sample <n>  trace 1 in n requests, keyed off the trace id hash
                      (deterministic: replaying the same ids samples the
                      same requests; default 1, 0 disables sampling)
  --slow-ms <n>       force-sample requests slower than n milliseconds
                      regardless of --trace-sample
  --timeout-ms <n>    per-connection socket timeout override (default
                      30000); also bounds how long a handler waits for a
                      wedged evaluation before answering 503
  --workers <n>       handler worker threads (default 4); connections are
                      held by a non-blocking reactor, so open sockets are
                      bounded by the fd limit, not the worker count
  --priority-cells <n> sweeps naming at most n cells share the
                      interactive dispatch lane with GET /v1/cell
                      (default 8); larger sweeps queue in the bulk lane,
                      which ages onto the fast lane so it never starves

route flags:
  --addr <host:port>  bind address (default 127.0.0.1:8080; port 0 binds
                      an ephemeral port, printed as 'listening on ...')
  --shards <list>     comma-separated serve backend addresses (required);
                      the cell key space is consistent-hashed across the
                      list, so order is part of the deployment identity
  --replicas <n>      owners per cell key (default 1): each key gets a
                      primary plus n-1 distinct ring-successor followers,
                      and cells fail over when the primary's breaker opens;
                      shard-down rows appear only when every owner is down
  --retry-budget <n>  max attempts per shard sub-request (default 3);
                      transport failures back off with seeded jitter, 429s
                      wait out Retry-After (capped; malformed headers fall
                      back to 1 s)
  --breaker-threshold <n>  consecutive transport failures that open a
                      shard's circuit breaker (default 3); open shards are
                      skipped until a half-open /healthz probe succeeds
  --fault-seed <n>    inject deterministic *network* chaos (connect
                      refusals, recorded stalls, truncated responses,
                      garbage status lines) into the router's fan-out
                      client; cell evaluation on the shards is untouched
  --timeout-ms <n>    shard sub-request timeout (default 600000)
  --workers <n>, --priority-cells <n>  as for serve, applied to the
                      router's own front (lane metrics: sim_router_lane_*)
  --trace-dir, --trace-sample, --slow-ms as for serve; the router stamps
                      its ingress trace id onto every shard sub-request
                      (X-Sim-Trace-Id), so one id follows a sweep fleet-wide

submit flags:
  --addr <host:port>  server or router to talk to (required)
  --test-scale        sweep at test scale (default: paper scale)
  --fault-seed <n>    forward a fault-injection seed with the sweep
  --cells <list>      comma-separated bench/version/precision triples
                      (e.g. spmv/OpenCL-Opt/single); default: full grid
  --metrics           print /metrics instead of sweeping
  --shutdown          ask the server to shut down gracefully
  --retry-budget <n>  attempts for transient connection failures before
                      exiting 1 (default 3, seeded backoff between tries)
  --timeout-ms <n>    request timeout (default 600000)

exit codes:
  0  every cell ran (skips from the paper's known driver bugs are fine)
  1  at least one cell failed (status=fail rows in the artifacts), or an
     artifact could not be written
  2  usage or configuration error, or a bench-self --check determinism
     violation",
        KNOWN.join("|")
    )
}

struct Opts {
    test_scale: bool,
    quiet: bool,
    verbose: bool,
    check: bool,
    smoke: bool,
    passes: Option<kernel_ir::opt::Pipeline>,
    trace_dir: Option<std::path::PathBuf>,
    fault_seed: Option<u64>,
    state: Option<std::path::PathBuf>,
    resume: bool,
    fail_fast: bool,
    addr: Option<String>,
    capacity: usize,
    queue: usize,
    cache: Option<std::path::PathBuf>,
    warm: Vec<std::path::PathBuf>,
    cells: Option<Vec<String>>,
    shards: Vec<String>,
    metrics: bool,
    shutdown: bool,
    req_trace_dir: Option<std::path::PathBuf>,
    trace_sample: u64,
    slow_ms: Option<u64>,
    replicas: usize,
    retry_budget: u32,
    breaker_threshold: u32,
    timeout_ms: Option<u64>,
    workers: usize,
    priority_cells: usize,
    cmds: Vec<String>,
}

/// Parse the command line. `Err` is a usage error (exit 2), never a panic.
fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        test_scale: false,
        quiet: false,
        verbose: false,
        check: false,
        smoke: false,
        passes: None,
        trace_dir: None,
        fault_seed: None,
        state: None,
        resume: false,
        fail_fast: false,
        addr: None,
        capacity: 1024,
        queue: 256,
        cache: None,
        warm: Vec::new(),
        cells: None,
        shards: Vec::new(),
        metrics: false,
        shutdown: false,
        req_trace_dir: None,
        trace_sample: 1,
        slow_ms: None,
        replicas: 1,
        retry_budget: 3,
        breaker_threshold: 3,
        timeout_ms: None,
        workers: sim_server::http::DEFAULT_WORKERS,
        priority_cells: sim_server::http::DEFAULT_PRIORITY_CELLS,
        cmds: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--test-scale" => o.test_scale = true,
            "--quiet" => o.quiet = true,
            "--verbose" => o.verbose = true,
            "--check" => o.check = true,
            "--smoke" => o.smoke = true,
            "--passes" => match it.next() {
                Some(p) if !p.starts_with("--") => match kernel_ir::opt::Pipeline::parse(p) {
                    Ok(pl) => o.passes = Some(pl),
                    Err(e) => return Err(format!("--passes: {e}")),
                },
                _ => return Err("--passes needs a comma-separated pass list argument".into()),
            },
            "--keep-going" => o.fail_fast = false,
            "--fail-fast" => o.fail_fast = true,
            "--resume" => o.resume = true,
            "--help" | "-h" => return Err(String::new()),
            "--trace" => match it.next() {
                Some(dir) if !dir.starts_with("--") => o.trace_dir = Some(dir.into()),
                _ => return Err("--trace needs a directory argument".into()),
            },
            "--state" => match it.next() {
                Some(p) if !p.starts_with("--") => o.state = Some(p.into()),
                _ => return Err("--state needs a file path argument".into()),
            },
            "--threads" => match it.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => sim_pool::set_threads(n),
                _ => return Err("--threads needs a positive integer argument".into()),
            },
            "--fault-seed" => match it.next().map(|n| n.parse::<u64>()) {
                Some(Ok(n)) => o.fault_seed = Some(n),
                _ => return Err("--fault-seed needs an unsigned integer argument".into()),
            },
            "--addr" => match it.next() {
                Some(a) if !a.starts_with("--") && !a.is_empty() => o.addr = Some(a.clone()),
                _ => return Err("--addr needs a host:port argument".into()),
            },
            "--capacity" => match it.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) => o.capacity = n,
                _ => return Err("--capacity needs an unsigned integer argument".into()),
            },
            "--queue" => match it.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) => o.queue = n,
                _ => return Err("--queue needs an unsigned integer argument".into()),
            },
            "--cache" => match it.next() {
                Some(p) if !p.starts_with("--") => o.cache = Some(p.into()),
                _ => return Err("--cache needs a file path argument".into()),
            },
            "--warm" => match it.next() {
                Some(p) if !p.starts_with("--") => o.warm.push(p.into()),
                _ => return Err("--warm needs a file path argument".into()),
            },
            "--cells" => match it.next() {
                Some(l) if !l.starts_with("--") && !l.is_empty() => {
                    o.cells = Some(l.split(',').map(str::to_string).collect())
                }
                _ => return Err("--cells needs a comma-separated list argument".into()),
            },
            "--shards" => match it.next() {
                Some(l) if !l.starts_with("--") && !l.is_empty() => {
                    o.shards = l
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(str::to_string)
                        .collect();
                    if o.shards.is_empty() {
                        return Err("--shards needs at least one host:port".into());
                    }
                }
                _ => return Err("--shards needs a comma-separated list argument".into()),
            },
            "--metrics" => o.metrics = true,
            "--shutdown" => o.shutdown = true,
            "--trace-dir" => match it.next() {
                Some(dir) if !dir.starts_with("--") => o.req_trace_dir = Some(dir.into()),
                _ => return Err("--trace-dir needs a directory argument".into()),
            },
            "--trace-sample" => match it.next().map(|n| n.parse::<u64>()) {
                Some(Ok(n)) => o.trace_sample = n,
                _ => return Err("--trace-sample needs an unsigned integer argument".into()),
            },
            "--slow-ms" => match it.next().map(|n| n.parse::<u64>()) {
                Some(Ok(n)) => o.slow_ms = Some(n),
                _ => return Err("--slow-ms needs an unsigned integer argument".into()),
            },
            "--replicas" => match it.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => o.replicas = n,
                _ => return Err("--replicas needs a positive integer argument".into()),
            },
            "--retry-budget" => match it.next().map(|n| n.parse::<u32>()) {
                Some(Ok(n)) if n >= 1 => o.retry_budget = n,
                _ => return Err("--retry-budget needs a positive integer argument".into()),
            },
            "--breaker-threshold" => match it.next().map(|n| n.parse::<u32>()) {
                Some(Ok(n)) if n >= 1 => o.breaker_threshold = n,
                _ => return Err("--breaker-threshold needs a positive integer argument".into()),
            },
            "--timeout-ms" => match it.next().map(|n| n.parse::<u64>()) {
                Some(Ok(n)) if n >= 1 => o.timeout_ms = Some(n),
                _ => return Err("--timeout-ms needs a positive integer argument".into()),
            },
            "--workers" => match it.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => o.workers = n,
                _ => return Err("--workers needs a positive integer argument".into()),
            },
            "--priority-cells" => match it.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) => o.priority_cells = n,
                _ => return Err("--priority-cells needs an unsigned integer argument".into()),
            },
            flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
            cmd => o.cmds.push(cmd.to_string()),
        }
    }
    if o.fault_seed.is_none() {
        if let Ok(s) = std::env::var("FAULT_SEED") {
            match s.trim().parse::<u64>() {
                Ok(n) => o.fault_seed = Some(n),
                Err(_) => return Err(format!("FAULT_SEED must be an unsigned integer, got '{s}'")),
            }
        }
    }
    Ok(o)
}

/// Print a completion report for a sweep; returns the process exit code
/// (0 clean, 1 if any cell failed).
fn report_outcome(results: &harness::SuiteResults, faulty: bool) -> i32 {
    let (ok, skipped, failed) = results.counts();
    log::progress(&format!(
        "suite complete: {ok} ok, {skipped} skipped, {failed} failed"
    ));
    if faulty {
        let stats = sim_faults::stats();
        let fired: Vec<String> = stats
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(s, n)| format!("{} x{n}", s.label()))
            .collect();
        log::progress(&format!(
            "injected faults: {}",
            if fired.is_empty() {
                "none fired".to_string()
            } else {
                fired.join(", ")
            }
        ));
    }
    if failed == 0 {
        return 0;
    }
    for ((bench, v, prec), err) in results.failed_cells() {
        eprintln!(
            "FAILED {bench} {} f{prec}: [{}] {} (attempts {}, backoff {} ms)",
            v.label(),
            err.kind.label(),
            err.message,
            err.attempts,
            err.backoff_ms
        );
    }
    1
}

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return 0;
            }
            eprintln!("{msg}");
            eprintln!("{}", usage());
            return 2;
        }
    };
    let cmd = o.cmds.first().map(String::as_str).unwrap_or("all");
    if !KNOWN.contains(&cmd) {
        eprintln!("unknown command '{cmd}'");
        eprintln!("{}", usage());
        return 2;
    }

    // Machine-readable subcommands keep stderr clean unless asked not to.
    let machine = matches!(cmd, "csv" | "jsonl" | "submit");
    log::set_level(if o.quiet {
        log::Level::Quiet
    } else if o.verbose {
        log::Level::Debug
    } else if machine {
        log::Level::Quiet
    } else {
        log::Level::Progress
    });

    // The serving layer handles fault seeds per request — no ambient plan
    // install here, so a served cell computes exactly what an offline
    // `run_suite_with` of the same configuration computes.
    if cmd == "serve" {
        let cfg = harness::ServeConfig {
            addr: o.addr.unwrap_or_else(|| "127.0.0.1:8080".into()),
            capacity: o.capacity,
            queue_cap: o.queue,
            cache_path: o.cache,
            warm: o.warm,
            trace_dir: o.req_trace_dir,
            trace_sample: o.trace_sample,
            slow_ms: o.slow_ms,
            timeout_ms: o.timeout_ms,
            workers: o.workers,
            priority_cells: o.priority_cells,
        };
        return match harness::serve::serve(cfg) {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("serve failed: {e}");
                1
            }
        };
    }
    if cmd == "route" {
        if o.shards.is_empty() {
            eprintln!("route needs --shards <host:port,host:port,...>");
            eprintln!("{}", usage());
            return 2;
        }
        let cfg = harness::RouteConfig {
            addr: o.addr.unwrap_or_else(|| "127.0.0.1:8080".into()),
            shards: o.shards,
            replicas: o.replicas,
            retry_budget: o.retry_budget,
            breaker_threshold: o.breaker_threshold,
            fault_seed: o.fault_seed,
            timeout_ms: o.timeout_ms,
            trace_dir: o.req_trace_dir,
            trace_sample: o.trace_sample,
            slow_ms: o.slow_ms,
            workers: o.workers,
            priority_cells: o.priority_cells,
        };
        return match harness::route::route(cfg) {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("route failed: {e}");
                1
            }
        };
    }
    if cmd == "submit" {
        let Some(addr) = o.addr else {
            eprintln!("submit needs --addr <host:port>");
            eprintln!("{}", usage());
            return 2;
        };
        return harness::serve::submit(&harness::SubmitConfig {
            addr,
            scale: if o.test_scale { "test" } else { "paper" }.into(),
            fault_seed: o.fault_seed,
            passes: o.passes.as_ref().map(|p| p.to_string()),
            cells: o.cells,
            metrics: o.metrics,
            shutdown: o.shutdown,
            retry_budget: o.retry_budget,
            timeout_ms: o.timeout_ms,
        });
    }
    if cmd == "autotune" {
        let cfg = harness::AutotuneConfig {
            test_scale: o.test_scale,
            smoke: o.smoke,
            addr: o.addr,
            timeout_ms: o.timeout_ms,
        };
        return match harness::autotune::run(&cfg) {
            Ok(rep) => {
                let path = std::path::Path::new("BENCH_opt.json");
                if let Err(e) = harness::atomic_write(path, rep.to_json().as_bytes()) {
                    eprintln!("failed to write {}: {e}", path.display());
                    return 1;
                }
                print!("{}", rep.summary());
                println!("wrote {}", path.display());
                if o.check && !rep.outputs_identical {
                    eprintln!("autotune --check: a pass pipeline changed kernel outputs");
                    return 2;
                }
                0
            }
            Err(e) => {
                eprintln!("autotune failed: {e}");
                1
            }
        };
    }

    // Deterministic chaos: install the plan process-wide (the worker-panic
    // site and the meters read the ambient plan) and pass it to the runner
    // for per-cell scoping. Injected panics are expected events — keep
    // their reports out of stderr, but leave genuine panics loud.
    let fault_plan = o.fault_seed.map(sim_faults::FaultPlan::new);
    sim_faults::install(fault_plan);
    if fault_plan.is_some() {
        log::progress(&format!(
            "fault injection enabled (seed {})",
            o.fault_seed.unwrap_or_default()
        ));
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| sim_faults::is_injected(s))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<&str>()
                        .map(|s| sim_faults::is_injected(s))
                })
                .unwrap_or(false);
            if !injected {
                default_hook(info);
            }
        }));
    }

    if cmd == "profile" {
        let Some(name) = o.cmds.get(1) else {
            eprintln!("usage: harness profile <bench> [--test-scale]");
            return 2;
        };
        let benches = if o.test_scale {
            hpc_kernels::test_suite()
        } else {
            hpc_kernels::suite()
        };
        let Some(b) = benches.iter().find(|b| b.name() == *name) else {
            let names: Vec<&str> = benches.iter().map(|b| b.name()).collect();
            eprintln!("unknown benchmark '{name}' (have: {})", names.join(", "));
            return 2;
        };
        print!("{}", harness::profile::report(b.as_ref()));
        return 0;
    }
    if cmd == "bench-self" {
        log::progress("self-benchmark: warm-up pass, then serial and parallel suite runs...");
        let b = harness::bench_self::run(o.test_scale);
        let path = std::path::Path::new("BENCH_sim.json");
        if let Err(e) = harness::atomic_write(path, b.to_json().as_bytes()) {
            eprintln!("failed to write {}: {e}", path.display());
            return 1;
        }
        print!("{}", b.summary());
        println!("wrote {}", path.display());
        if o.check && !b.outputs_identical {
            eprintln!("bench-self --check: engine/thread passes produced different outputs");
            return 2;
        }
        return 0;
    }
    if cmd == "ablation" {
        print!("{}", harness::ablation::report(o.test_scale));
        return 0;
    }
    if cmd == "dvfs" {
        print!("{}", harness::dvfs::report());
        return 0;
    }
    if cmd == "hetero" {
        print!("{}", harness::hetero::report());
        return 0;
    }
    if cmd == "roofline" {
        print!("{}", harness::roofline::report(Precision::F32));
        print!("\n{}", harness::roofline::report(Precision::F64));
        return 0;
    }

    let benches = if o.test_scale {
        hpc_kernels::test_suite()
    } else {
        hpc_kernels::suite()
    };
    log::progress(&format!(
        "running the {} suite ({} benchmarks x 4 versions x 2 precisions)...",
        if o.test_scale {
            "test-scale"
        } else {
            "paper-scale"
        },
        benches.len()
    ));
    // Checkpointing engages when a state path is named or a resume is
    // requested (default path: suite.state). Plain figure runs stay
    // file-free.
    let checkpoint = o
        .state
        .clone()
        .or_else(|| o.resume.then(|| std::path::PathBuf::from("suite.state")));
    let cfg = SuiteConfig {
        verbose: true,
        faults: fault_plan,
        fail_fast: o.fail_fast,
        checkpoint,
        resume: o.resume,
        state_tag: if o.test_scale { "test" } else { "paper" }.into(),
        passes: o.passes.clone(),
        ..SuiteConfig::default()
    };
    let results = run_suite_with(&benches, &cfg);

    if let Some(dir) = &o.trace_dir {
        match harness::write_traces(&results, dir) {
            Ok(paths) => log::progress(&format!(
                "wrote {} trace files + metrics.jsonl to {}",
                paths.len(),
                dir.display()
            )),
            Err(e) => {
                eprintln!("failed to write traces to {}: {e}", dir.display());
                return 1;
            }
        }
    }

    if cmd == "csv" {
        print!("{}", harness::to_csv(&results));
        return report_outcome(&results, fault_plan.is_some());
    }
    if cmd == "jsonl" {
        print!("{}", harness::to_jsonl(&results));
        return report_outcome(&results, fault_plan.is_some());
    }
    let wants = |c: &str| cmd == "all" || cmd == c;
    if wants("fig2a") {
        println!("{}", fig2(&results, Precision::F32));
    }
    if wants("fig2b") {
        println!("{}", fig2(&results, Precision::F64));
    }
    if wants("fig3a") {
        println!("{}", fig3(&results, Precision::F32));
    }
    if wants("fig3b") {
        println!("{}", fig3(&results, Precision::F64));
    }
    if wants("fig4a") {
        println!("{}", fig4(&results, Precision::F32));
    }
    if wants("fig4b") {
        println!("{}", fig4(&results, Precision::F64));
    }
    if wants("summary") {
        println!("{}", summary(&results));
    }
    report_outcome(&results, fault_plan.is_some())
}
