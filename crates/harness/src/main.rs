//! CLI for the reproduction harness.
//!
//! ```text
//! harness all            # every figure + summary (paper-scale inputs)
//! harness fig2a|fig2b    # Figure 2 speedups
//! harness fig3a|fig3b    # Figure 3 power
//! harness fig4a|fig4b    # Figure 4 energy-to-solution
//! harness summary        # §V-D headline numbers
//! harness ablation       # §III per-technique decomposition
//! harness dvfs           # extension: GPU frequency/voltage sweep
//! harness roofline       # roofline placement of the GPU kernels
//! harness hetero         # extension: CPU+GPU co-execution splits
//! harness csv            # machine-readable results (one row per cell)
//! harness jsonl          # same cells as JSON Lines (counter fields incl.)
//! harness profile <b>    # per-variant performance-counter report
//! harness bench-self     # simulator self-benchmark -> BENCH_sim.json
//!
//! Flags: --test-scale (small inputs), --trace <dir> (one Chrome trace
//! file per cell + metrics.jsonl), --threads <n> (simulation worker
//! threads; also settable via SIM_THREADS), --check (with bench-self:
//! fail unless serial/parallel outputs match byte for byte), --quiet,
//! --verbose.
//! ```

use harness::{fig2, fig3, fig4, run_suite, summary};
use hpc_kernels::Precision;
use telemetry::log;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut test_scale = false;
    let mut quiet = false;
    let mut verbose = false;
    let mut trace_dir: Option<std::path::PathBuf> = None;
    let mut check = false;
    let mut cmds: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--test-scale" => test_scale = true,
            "--quiet" => quiet = true,
            "--verbose" => verbose = true,
            "--check" => check = true,
            "--trace" => match it.next() {
                Some(dir) => trace_dir = Some(dir.into()),
                None => {
                    eprintln!("--trace needs a directory argument");
                    std::process::exit(2);
                }
            },
            "--threads" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => sim_pool::set_threads(n),
                _ => {
                    eprintln!("--threads needs a positive integer argument");
                    std::process::exit(2);
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag '{flag}'");
                std::process::exit(2);
            }
            cmd => cmds.push(cmd),
        }
    }
    let cmd = cmds.first().copied().unwrap_or("all");
    const KNOWN: [&str; 16] = [
        "all",
        "fig2a",
        "fig2b",
        "fig3a",
        "fig3b",
        "fig4a",
        "fig4b",
        "summary",
        "ablation",
        "dvfs",
        "roofline",
        "hetero",
        "csv",
        "jsonl",
        "profile",
        "bench-self",
    ];
    if !KNOWN.contains(&cmd) {
        eprintln!("unknown command '{cmd}'");
        eprintln!(
            "usage: harness [{}] [--test-scale] [--trace <dir>] [--threads <n>] \
             [--check] [--quiet|--verbose]",
            KNOWN.join("|")
        );
        std::process::exit(2);
    }

    // Machine-readable subcommands keep stderr clean unless asked not to.
    let machine = matches!(cmd, "csv" | "jsonl");
    log::set_level(if quiet {
        log::Level::Quiet
    } else if verbose {
        log::Level::Debug
    } else if machine {
        log::Level::Quiet
    } else {
        log::Level::Progress
    });

    if cmd == "profile" {
        let Some(name) = cmds.get(1) else {
            eprintln!("usage: harness profile <bench> [--test-scale]");
            std::process::exit(2);
        };
        let benches = if test_scale {
            hpc_kernels::test_suite()
        } else {
            hpc_kernels::suite()
        };
        let Some(b) = benches.iter().find(|b| b.name() == *name) else {
            let names: Vec<&str> = benches.iter().map(|b| b.name()).collect();
            eprintln!("unknown benchmark '{name}' (have: {})", names.join(", "));
            std::process::exit(2);
        };
        print!("{}", harness::profile::report(b.as_ref()));
        return;
    }
    if cmd == "bench-self" {
        log::progress("self-benchmark: warm-up pass, then serial and parallel suite runs...");
        let b = harness::bench_self::run(test_scale);
        let path = "BENCH_sim.json";
        if let Err(e) = std::fs::write(path, b.to_json()) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        print!("{}", b.summary());
        println!("wrote {path}");
        if check && !b.outputs_identical {
            eprintln!("bench-self --check: serial and parallel outputs differ");
            std::process::exit(1);
        }
        return;
    }
    if cmd == "ablation" {
        print!("{}", harness::ablation::report(test_scale));
        return;
    }
    if cmd == "dvfs" {
        print!("{}", harness::dvfs::report());
        return;
    }
    if cmd == "hetero" {
        print!("{}", harness::hetero::report());
        return;
    }
    if cmd == "roofline" {
        print!("{}", harness::roofline::report(hpc_kernels::Precision::F32));
        print!(
            "\n{}",
            harness::roofline::report(hpc_kernels::Precision::F64)
        );
        return;
    }

    let benches = if test_scale {
        hpc_kernels::test_suite()
    } else {
        hpc_kernels::suite()
    };
    log::progress(&format!(
        "running the {} suite ({} benchmarks x 4 versions x 2 precisions)...",
        if test_scale {
            "test-scale"
        } else {
            "paper-scale"
        },
        benches.len()
    ));
    let results = run_suite(&benches, true);

    if let Some(dir) = &trace_dir {
        match harness::write_traces(&results, dir) {
            Ok(paths) => log::progress(&format!(
                "wrote {} trace files + metrics.jsonl to {}",
                paths.len(),
                dir.display()
            )),
            Err(e) => {
                eprintln!("failed to write traces to {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }

    if cmd == "csv" {
        print!("{}", harness::to_csv(&results));
        return;
    }
    if cmd == "jsonl" {
        print!("{}", harness::to_jsonl(&results));
        return;
    }
    let wants = |c: &str| cmd == "all" || cmd == c;
    if wants("fig2a") {
        println!("{}", fig2(&results, Precision::F32));
    }
    if wants("fig2b") {
        println!("{}", fig2(&results, Precision::F64));
    }
    if wants("fig3a") {
        println!("{}", fig3(&results, Precision::F32));
    }
    if wants("fig3b") {
        println!("{}", fig3(&results, Precision::F64));
    }
    if wants("fig4a") {
        println!("{}", fig4(&results, Precision::F32));
    }
    if wants("fig4b") {
        println!("{}", fig4(&results, Precision::F64));
    }
    if wants("summary") {
        println!("{}", summary(&results));
    }
}
