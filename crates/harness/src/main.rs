//! CLI for the reproduction harness.
//!
//! ```text
//! harness all            # every figure + summary (paper-scale inputs)
//! harness fig2a|fig2b    # Figure 2 speedups
//! harness fig3a|fig3b    # Figure 3 power
//! harness fig4a|fig4b    # Figure 4 energy-to-solution
//! harness summary        # §V-D headline numbers
//! harness ablation       # §III per-technique decomposition
//! harness dvfs           # extension: GPU frequency/voltage sweep
//! harness roofline       # roofline placement of the GPU kernels
//! harness hetero         # extension: CPU+GPU co-execution splits
//! harness csv            # machine-readable results (one row per cell)
//! harness --test-scale … # same, on small inputs (seconds instead of minutes)
//! ```

use harness::{fig2, fig3, fig4, run_suite, summary};
use hpc_kernels::Precision;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let test_scale = args.iter().any(|a| a == "--test-scale");
    let cmds: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let cmd = cmds.first().copied().unwrap_or("all");
    const KNOWN: [&str; 13] = [
        "all", "fig2a", "fig2b", "fig3a", "fig3b", "fig4a", "fig4b", "summary",
        "ablation", "dvfs", "roofline", "hetero", "csv",
    ];
    if !KNOWN.contains(&cmd) {
        eprintln!("unknown command '{cmd}'");
        eprintln!("usage: harness [{}] [--test-scale]", KNOWN.join("|"));
        std::process::exit(2);
    }

    if cmd == "ablation" {
        print!("{}", harness::ablation::report(test_scale));
        return;
    }
    if cmd == "dvfs" {
        print!("{}", harness::dvfs::report());
        return;
    }
    if cmd == "hetero" {
        print!("{}", harness::hetero::report());
        return;
    }
    if cmd == "roofline" {
        print!("{}", harness::roofline::report(hpc_kernels::Precision::F32));
        print!("\n{}", harness::roofline::report(hpc_kernels::Precision::F64));
        return;
    }

    let benches = if test_scale {
        hpc_kernels::test_suite()
    } else {
        hpc_kernels::suite()
    };
    eprintln!(
        "running the {} suite ({} benchmarks x 4 versions x 2 precisions)...",
        if test_scale { "test-scale" } else { "paper-scale" },
        benches.len()
    );
    let results = run_suite(&benches, true);

    if cmd == "csv" {
        print!("{}", harness::to_csv(&results));
        return;
    }
    let wants = |c: &str| cmd == "all" || cmd == c;
    if wants("fig2a") {
        println!("{}", fig2(&results, Precision::F32));
    }
    if wants("fig2b") {
        println!("{}", fig2(&results, Precision::F64));
    }
    if wants("fig3a") {
        println!("{}", fig3(&results, Precision::F32));
    }
    if wants("fig3b") {
        println!("{}", fig3(&results, Precision::F64));
    }
    if wants("fig4a") {
        println!("{}", fig4(&results, Precision::F32));
    }
    if wants("fig4b") {
        println!("{}", fig4(&results, Precision::F64));
    }
    if wants("summary") {
        println!("{}", summary(&results));
    }
}
