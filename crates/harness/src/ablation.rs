//! §III ablation: isolate each optimization technique's contribution.
//!
//! The paper reports only the combined OpenCL→OpenCL-Opt jump; this module
//! decomposes it (per DESIGN.md's experiment index) so the bench suite can
//! regenerate a per-technique table: vectorization, vector-width choice,
//! loop unrolling, work-group tuning, host data path, and compiler hints.

use hpc_kernels::common::{gpu_context, launch};
use hpc_kernels::dmmm::Dmmm;
use hpc_kernels::vecop::Vecop;
use hpc_kernels::Precision;
use kernel_ir::{BufferData, Scalar};
use mali_hpc::{
    largest_dividing_pow2, local_divides_global, sweep, unroll, vectorize, TuningResult,
};
use ocl_runtime::{Context, KernelArg, MemFlags};
use std::fmt::Write as _;

/// GPU time of one vecop launch at a given vector width (1 = scalar).
pub fn vecop_time_at_width(b: &Vecop, width: u8) -> Option<f64> {
    let prog = if width == 1 {
        b.kernel(Precision::F32)
    } else {
        vectorize(&b.kernel(Precision::F32), width).ok()?.program
    };
    let (mut ctx, ids) = gpu_context(vec![
        BufferData::zeroed(Scalar::F32, b.n),
        BufferData::zeroed(Scalar::F32, b.n),
        BufferData::zeroed(Scalar::F32, b.n),
    ]);
    let k = ctx.build_kernel(prog).ok()?;
    let args: Vec<KernelArg> = ids.iter().map(|&x| KernelArg::Buf(x)).collect();
    launch(
        &mut ctx,
        &k,
        [b.n / width as usize, 1, 1],
        Some([128, 1, 1]),
        &args,
    )
    .ok()
    .map(|(t, _)| t)
}

/// Vector-width sweep (§III-B "Vector Sizes").
pub fn vector_width_sweep(n: usize) -> TuningResult<u8> {
    let b = Vecop { n };
    sweep(&[1u8, 2, 4, 8, 16], |&w| vecop_time_at_width(&b, w))
}

/// Work-group-size sweep on the naive dmmm kernel (§III-A "Load
/// distribution"): how much the local size matters, and what the driver
/// would have picked.
pub fn wg_sweep_dmmm(n: usize) -> (TuningResult<usize>, usize) {
    let b = Dmmm {
        n,
        opt_unroll: 2,
        opt_width: 4,
    };
    let prog = b.kernel(Precision::F32);
    let result = sweep(&[4usize, 8, 16, 32, 64], |&wgx| {
        let (a, bb) = b.inputs();
        let (mut ctx, ids) = gpu_context(vec![
            Precision::F32.buffer(&a),
            Precision::F32.buffer(&bb),
            BufferData::zeroed(Scalar::F32, n * n),
        ]);
        let k = ctx.build_kernel(prog.clone()).ok()?;
        let args: Vec<KernelArg> = ids.iter().map(|&x| KernelArg::Buf(x)).collect();
        if !local_divides_global(n, wgx) {
            return None;
        }
        launch(&mut ctx, &k, [n, n, 1], Some([wgx, 1, 1]), &args)
            .ok()
            .map(|(t, _)| t)
    });
    // What the driver would pick with local=NULL.
    let (a, bb) = b.inputs();
    let (ctx, _ids) = gpu_context(vec![
        Precision::F32.buffer(&a),
        Precision::F32.buffer(&bb),
        BufferData::zeroed(Scalar::F32, n * n),
    ]);
    let k = ctx.build_kernel(prog).expect("dmmm builds");
    let driver = ctx.driver_local_size(&k, [n, n, 1])[0];
    (result, driver)
}

/// dmmm technique stack: naive → +vectorize → +unroll (all at the tuned
/// work-group size). Returns (label, seconds) rows.
pub fn dmmm_stack(n: usize) -> Vec<(String, f64)> {
    let b = Dmmm {
        n,
        opt_unroll: 2,
        opt_width: 4,
    };
    let run = |prog: kernel_ir::Program, gx: usize| -> f64 {
        let (a, bb) = b.inputs();
        let (mut ctx, ids) = gpu_context(vec![
            Precision::F32.buffer(&a),
            Precision::F32.buffer(&bb),
            BufferData::zeroed(Scalar::F32, n * n),
        ]);
        let k = ctx.build_kernel(prog).expect("builds");
        let args: Vec<KernelArg> = ids.iter().map(|&x| KernelArg::Buf(x)).collect();
        // Largest power-of-two x-extent (≤16) that divides the global size,
        // so the vectorized pass (gx = n/4) stays launchable.
        let lx = largest_dividing_pow2(gx, 16);
        launch(&mut ctx, &k, [gx, n, 1], Some([lx, 8, 1]), &args)
            .expect("launch")
            .0
    };
    let naive = b.kernel(Precision::F32);
    let vec4 = b.opt_kernel_base(Precision::F32, 4);
    let vec4_unrolled = unroll(&vec4, 2).expect("unrolls");
    vec![
        ("naive (scalar, tuned wg)".into(), run(naive, n)),
        ("+ vectorize (vload4 B-row)".into(), run(vec4, n / 4)),
        ("+ unroll x2".into(), run(vec4_unrolled, n / 4)),
    ]
}

/// Host data-path comparison (§III-A): moving `n` floats in and out via
/// copies vs map/unmap. Returns (copy_s, map_s).
pub fn datapath_compare(n: usize) -> (f64, f64) {
    // Copy path.
    let mut ctx1 = Context::new(mali_gpu::MaliT604::default());
    let b1 = ctx1.create_buffer(Scalar::F32, n, MemFlags::UseHostPtr);
    ctx1.enqueue_write_buffer(b1, BufferData::F32(vec![1.0; n]))
        .expect("write");
    let _ = ctx1.enqueue_read_buffer(b1).expect("read");
    let (t_copy, _) = ctx1.timeline(false);
    // Map path.
    let mut ctx2 = Context::new(mali_gpu::MaliT604::default());
    let b2 = ctx2.create_buffer(Scalar::F32, n, MemFlags::AllocHostPtr);
    {
        let data = ctx2.enqueue_map_buffer(b2).expect("map");
        if let BufferData::F32(v) = data {
            v.fill(1.0);
        }
    }
    ctx2.enqueue_unmap(b2).expect("unmap");
    let _ = ctx2.enqueue_map_buffer(b2).expect("map back");
    ctx2.enqueue_unmap(b2).expect("unmap");
    let (t_map, _) = ctx2.timeline(false);
    (t_copy, t_map)
}

/// Hints (inline/const) effect on a compute-bound kernel.
pub fn hints_effect(n: usize) -> (f64, f64) {
    use hpc_kernels::amcd::Amcd;
    use hpc_kernels::{Benchmark as _, Variant};
    let b = Amcd {
        walkers: n,
        steps: 64,
    };
    let no = b.run(Variant::OpenCl, Precision::F32).expect("runs").time_s;
    let yes = b
        .run(Variant::OpenClOpt, Precision::F32)
        .expect("runs")
        .time_s;
    (no, yes)
}

/// Render the full ablation report.
pub fn report(small: bool) -> String {
    let (nvec, ndm, nio, namcd) = if small {
        (1 << 14, 64, 1 << 16, 512)
    } else {
        (1 << 20, 192, 1 << 22, 8192)
    };
    let mut out = String::new();
    let _ = writeln!(out, "== §III ablation ==\n");

    let vw = vector_width_sweep(nvec);
    let _ = writeln!(out, "vector width (vecop, {nvec} elems, wg 128):");
    for e in &vw.entries {
        match e.cost {
            Some(c) => {
                let _ = writeln!(out, "  width {:>2}: {:.3e} s", e.param, c);
            }
            None => {
                let _ = writeln!(out, "  width {:>2}: failed", e.param);
            }
        }
    }
    let _ = writeln!(
        out,
        "  best: {:?}, spread {:.2}x\n",
        vw.best(),
        vw.spread().unwrap_or(1.0)
    );

    let (wg, driver) = wg_sweep_dmmm(ndm);
    let _ = writeln!(out, "work-group size (naive dmmm {ndm}x{ndm}):");
    for e in &wg.entries {
        if let Some(c) = e.cost {
            let _ = writeln!(out, "  wg {:>3}x1: {:.3e} s", e.param, c);
        }
    }
    let _ = writeln!(
        out,
        "  best: {:?}, spread {:.2}x, driver would pick {driver}\n",
        wg.best(),
        wg.spread().unwrap_or(1.0)
    );

    let _ = writeln!(out, "dmmm technique stack ({ndm}x{ndm}):");
    let stack = dmmm_stack(ndm);
    let base = stack[0].1;
    for (label, t) in &stack {
        let _ = writeln!(out, "  {label:<28} {t:.3e} s  ({:.2}x)", base / t);
    }
    let _ = writeln!(out);

    let (t_copy, t_map) = datapath_compare(nio);
    let _ = writeln!(
        out,
        "host data path ({nio} floats round-trip): copies {:.3e} s vs map/unmap {:.3e} s ({:.1}x)\n",
        t_copy,
        t_map,
        t_copy / t_map
    );

    let (no_hints, with_hints) = hints_effect(namcd);
    let _ = writeln!(
        out,
        "directives/type qualifiers (amcd {namcd} walkers): {:.3e} s -> {:.3e} s ({:.2}x)",
        no_hints,
        with_hints,
        no_hints / with_hints
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_widths_all_run() {
        let r = vector_width_sweep(1 << 12);
        assert_eq!(r.failures(), 0);
        // Scalar must not be the best width on this architecture.
        assert_ne!(r.best(), Some(&1));
    }

    #[test]
    fn datapath_copy_slower() {
        let (c, m) = datapath_compare(1 << 16);
        assert!(c > m);
    }

    #[test]
    fn dmmm_stack_improves_monotonically() {
        let s = dmmm_stack(32);
        assert!(s[1].1 < s[0].1, "vectorization should help");
        assert!(s[2].1 <= s[1].1 * 1.1, "unrolling should not badly hurt");
    }

    #[test]
    fn report_renders() {
        let r = report(true);
        assert!(r.contains("vector width"));
        assert!(r.contains("host data path"));
    }
}
