//! `suite.state` — the crash-safe sweep checkpoint.
//!
//! A dependency-free, line-oriented text format: one `meta` header line
//! identifying the suite (state tag, fault seed, benchmark list) and one
//! `cell` line per completed cell, fully serializing the [`CellEntry`] —
//! floats as IEEE-754 bit patterns in hex so the round trip is exact and a
//! resumed run's artifacts are byte-identical to an uninterrupted one.
//!
//! The file is rewritten atomically (temp + rename) after every completed
//! cell and the lines are kept sorted, so the on-disk bytes are a pure
//! function of the *set* of finished cells, independent of completion
//! order and thread count. Corrupt or unknown lines are skipped on load:
//! a damaged checkpoint costs rework, never a crash.

use crate::artifact::atomic_write;
use crate::runner::{Cell, CellEntry, CellError, CellKey, FailKind};
use hpc_kernels::{RunOutcome, RunSkip, Variant};
use powersim::{Activity, Measurement};
use std::collections::HashMap;
use std::io;
use std::path::Path;
use telemetry::{CommandSpan, Counters, RunTelemetry, WorkSpan};

const MAGIC: &str = "simstate v1";

/// Identity of the sweep a checkpoint belongs to. Loaded state is only
/// reused when the whole header matches the resuming run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StateHeader {
    /// Suite scale tag ("paper" / "test").
    pub tag: String,
    /// Fault-plan seed of the run, if chaos was enabled.
    pub fault_seed: Option<u64>,
    /// Benchmark names, in suite order.
    pub benches: Vec<String>,
}

// ---- token-level encoding ----

/// Percent-encode the bytes that would break the line/field structure.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'%' | b'|' | b',' | b'\n' | b'\r' => out.push_str(&format!("%{b:02x}")),
            _ => out.push(b as char),
        }
    }
    out
}

fn unesc(s: &str) -> Option<String> {
    let mut out = Vec::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

fn fbits(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// Sequential token reader over one '|'-separated line.
struct Tokens<'a> {
    it: std::str::Split<'a, char>,
}

impl<'a> Tokens<'a> {
    fn new(line: &'a str) -> Self {
        Tokens {
            it: line.split('|'),
        }
    }

    fn str(&mut self) -> Option<&'a str> {
        self.it.next()
    }

    fn string(&mut self) -> Option<String> {
        unesc(self.it.next()?)
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(
            u64::from_str_radix(self.it.next()?, 16).ok()?,
        ))
    }

    fn u64(&mut self) -> Option<u64> {
        self.it.next()?.parse().ok()
    }

    fn u32(&mut self) -> Option<u32> {
        self.it.next()?.parse().ok()
    }

    fn usize(&mut self) -> Option<usize> {
        self.it.next()?.parse().ok()
    }
}

/// `CommandSpan::cat` is a `&'static str`; map the stored string back to
/// the known statics (unknown categories make the line corrupt).
fn static_cat(s: &str) -> Option<&'static str> {
    Some(match s {
        "kernel" => "kernel",
        "write" => "write",
        "read" => "read",
        "map" => "map",
        "unmap" => "unmap",
        "cpu" => "cpu",
        _ => return None,
    })
}

fn push_counters(t: &mut Vec<String>, c: &Counters) {
    for v in c.ops_by_class {
        t.push(v.to_string());
    }
    for v in c.width_hist {
        t.push(v.to_string());
    }
    for v in [c.flops, c.int_ops, c.special_ops] {
        t.push(fbits(v));
    }
    for v in [
        c.loads,
        c.stores,
        c.atomics,
        c.bytes_read,
        c.bytes_written,
        c.local_accesses,
        c.gather_accesses,
        c.contiguous_accesses,
        c.barriers,
        c.loop_iters,
        c.threads,
        c.groups,
        c.hier_accesses,
        c.l1_hits,
        c.l2_hits,
        c.dram_lines,
        c.dram_stream_lines,
        c.dram_scatter_lines,
        c.dram_writeback_lines,
    ] {
        t.push(v.to_string());
    }
    for v in [
        c.resident_threads,
        c.max_resident_threads,
        c.registers_per_thread,
    ] {
        t.push(v.to_string());
    }
}

fn read_counters(t: &mut Tokens) -> Option<Counters> {
    let mut ops_by_class = [0u64; 9];
    for v in &mut ops_by_class {
        *v = t.u64()?;
    }
    let mut width_hist = [0u64; 5];
    for v in &mut width_hist {
        *v = t.u64()?;
    }
    // Exhaustive literal: adding a Counters field breaks this build until
    // the checkpoint codec learns about it.
    Some(Counters {
        ops_by_class,
        width_hist,
        flops: t.f64()?,
        int_ops: t.f64()?,
        special_ops: t.f64()?,
        loads: t.u64()?,
        stores: t.u64()?,
        atomics: t.u64()?,
        bytes_read: t.u64()?,
        bytes_written: t.u64()?,
        local_accesses: t.u64()?,
        gather_accesses: t.u64()?,
        contiguous_accesses: t.u64()?,
        barriers: t.u64()?,
        loop_iters: t.u64()?,
        threads: t.u64()?,
        groups: t.u64()?,
        hier_accesses: t.u64()?,
        l1_hits: t.u64()?,
        l2_hits: t.u64()?,
        dram_lines: t.u64()?,
        dram_stream_lines: t.u64()?,
        dram_scatter_lines: t.u64()?,
        dram_writeback_lines: t.u64()?,
        resident_threads: t.u32()?,
        max_resident_threads: t.u32()?,
        registers_per_thread: t.u32()?,
    })
}

fn push_cell(t: &mut Vec<String>, cell: &Cell) {
    t.push(cell.attempts.to_string());
    let o = &cell.outcome;
    t.push(fbits(o.time_s));
    let a = &o.activity;
    for v in [
        a.duration_s,
        a.cpu_busy_s[0],
        a.cpu_busy_s[1],
        a.gpu_active_s,
        a.gpu_arith_util_s,
        a.gpu_ls_util_s,
    ] {
        t.push(fbits(v));
    }
    t.push(a.dram_bytes.to_string());
    t.push(if o.validated { "1" } else { "0" }.into());
    t.push(fbits(o.max_rel_err));
    t.push(match &o.note {
        Some(n) => format!("+{}", esc(n)),
        None => "-".into(),
    });
    push_counters(t, &o.telemetry.counters);
    t.push(o.telemetry.commands.len().to_string());
    for c in &o.telemetry.commands {
        t.push(esc(&c.name));
        t.push(esc(c.cat));
        t.push(fbits(c.start_s));
        t.push(fbits(c.end_s));
    }
    t.push(o.telemetry.core_spans.len().to_string());
    for s in &o.telemetry.core_spans {
        t.push(s.core.to_string());
        t.push(s.group.to_string());
        t.push(fbits(s.start_s));
        t.push(fbits(s.end_s));
    }
    let m = &cell.measurement;
    for v in [
        m.duration_s,
        m.mean_power_w,
        m.std_power_w,
        m.mean_energy_j,
        m.std_energy_j,
    ] {
        t.push(fbits(v));
    }
    t.push(m.repetitions.to_string());
    t.push(cell.iterations.to_string());
    t.push(fbits(cell.energy_j));
}

fn read_cell(t: &mut Tokens) -> Option<Cell> {
    let attempts = t.u32()?;
    let time_s = t.f64()?;
    let activity = Activity {
        duration_s: t.f64()?,
        cpu_busy_s: [t.f64()?, t.f64()?],
        gpu_active_s: t.f64()?,
        gpu_arith_util_s: t.f64()?,
        gpu_ls_util_s: t.f64()?,
        dram_bytes: t.u64()?,
    };
    let validated = match t.str()? {
        "1" => true,
        "0" => false,
        _ => return None,
    };
    let max_rel_err = t.f64()?;
    let note = match t.str()? {
        "-" => None,
        s => Some(unesc(s.strip_prefix('+')?)?),
    };
    let counters = read_counters(t)?;
    let n_cmds = t.usize()?;
    // Cap counts to the remaining token estimate to avoid absurd
    // allocations from a corrupt line.
    if n_cmds > 1_000_000 {
        return None;
    }
    let mut commands = Vec::with_capacity(n_cmds);
    for _ in 0..n_cmds {
        commands.push(CommandSpan {
            name: t.string()?,
            cat: static_cat(&t.string()?)?,
            start_s: t.f64()?,
            end_s: t.f64()?,
        });
    }
    let n_spans = t.usize()?;
    if n_spans > 10_000_000 {
        return None;
    }
    let mut core_spans = Vec::with_capacity(n_spans);
    for _ in 0..n_spans {
        core_spans.push(WorkSpan {
            core: t.u32()?,
            group: t.u32()?,
            start_s: t.f64()?,
            end_s: t.f64()?,
        });
    }
    let measurement = Measurement {
        duration_s: t.f64()?,
        mean_power_w: t.f64()?,
        std_power_w: t.f64()?,
        mean_energy_j: t.f64()?,
        std_energy_j: t.f64()?,
        repetitions: t.u32()?,
    };
    let iterations = t.u32()?;
    let energy_j = t.f64()?;
    Some(Cell {
        outcome: RunOutcome {
            time_s,
            activity,
            validated,
            max_rel_err,
            note,
            telemetry: RunTelemetry {
                counters: counters.clone(),
                commands,
                core_spans,
            },
        },
        measurement,
        iterations,
        energy_j,
        counters,
        attempts,
    })
}

fn variant_index(v: Variant) -> usize {
    Variant::ALL.iter().position(|x| *x == v).unwrap()
}

fn entry_line(key: &CellKey, entry: &CellEntry) -> String {
    let (bench, v, prec) = key;
    let mut t = vec![
        "cell".to_string(),
        esc(bench),
        variant_index(*v).to_string(),
        prec.to_string(),
    ];
    match entry {
        CellEntry::Ok(cell) => {
            t.push("ok".into());
            push_cell(&mut t, cell);
        }
        CellEntry::Skipped(skip) => {
            t.push("skip".into());
            let (kind, msg) = match skip {
                RunSkip::CompilerBug(m) => ("compiler-bug", m),
                RunSkip::LaunchFailure(m) => ("launch-failure", m),
            };
            t.push(kind.into());
            t.push(esc(msg));
        }
        CellEntry::Failed(err) => {
            t.push("fail".into());
            t.push(err.kind.label().into());
            t.push(esc(&err.message));
            t.push(err.attempts.to_string());
            t.push(err.backoff_ms.to_string());
        }
    }
    t.join("|")
}

fn parse_entry(line: &str) -> Option<(CellKey, CellEntry)> {
    let mut t = Tokens::new(line);
    if t.str()? != "cell" {
        return None;
    }
    let bench = t.string()?;
    let v = *Variant::ALL.get(t.usize()?)?;
    let prec = t.str()?.parse::<u8>().ok()?;
    let entry = match t.str()? {
        "ok" => CellEntry::Ok(read_cell(&mut t)?),
        "skip" => {
            let kind = t.str()?.to_string();
            let msg = t.string()?;
            CellEntry::Skipped(match kind.as_str() {
                "compiler-bug" => RunSkip::CompilerBug(msg),
                "launch-failure" => RunSkip::LaunchFailure(msg),
                _ => return None,
            })
        }
        "fail" => CellEntry::Failed(CellError {
            kind: FailKind::from_label(t.str()?)?,
            message: t.string()?,
            attempts: t.u32()?,
            backoff_ms: t.u64()?,
        }),
        _ => return None,
    };
    Some(((bench, v, prec), entry))
}

fn meta_line(h: &StateHeader) -> String {
    format!(
        "meta|{}|{}|{}",
        esc(&h.tag),
        h.fault_seed.map(|s| s.to_string()).unwrap_or("-".into()),
        h.benches
            .iter()
            .map(|b| esc(b))
            .collect::<Vec<_>>()
            .join(",")
    )
}

fn parse_meta(line: &str) -> Option<StateHeader> {
    let mut t = Tokens::new(line);
    if t.str()? != "meta" {
        return None;
    }
    let tag = t.string()?;
    let fault_seed = match t.str()? {
        "-" => None,
        s => Some(s.parse().ok()?),
    };
    let benches = match t.str()? {
        "" => Vec::new(),
        s => s.split(',').map(unesc).collect::<Option<Vec<String>>>()?,
    };
    Some(StateHeader {
        tag,
        fault_seed,
        benches,
    })
}

/// Serialize the whole state (header + every finished cell) and write it
/// atomically. Lines are sorted so the bytes depend only on the set of
/// finished cells, not on completion order.
pub fn save(
    path: &Path,
    header: &StateHeader,
    entries: &HashMap<CellKey, CellEntry>,
) -> io::Result<()> {
    let mut lines: Vec<String> = entries.iter().map(|(k, e)| entry_line(k, e)).collect();
    lines.sort_unstable();
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push('\n');
    out.push_str(&meta_line(header));
    out.push('\n');
    for l in &lines {
        out.push_str(l);
        out.push('\n');
    }
    atomic_write(path, out.as_bytes())
}

/// Load a checkpoint. Returns `None` when the file is missing or its
/// magic/header is unreadable; individual corrupt cell lines (e.g. a
/// truncated tail) are silently dropped — they just get recomputed.
pub fn load(path: &Path) -> Option<(StateHeader, HashMap<CellKey, CellEntry>)> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut lines = text.lines();
    if lines.next()? != MAGIC {
        return None;
    }
    let header = parse_meta(lines.next()?)?;
    let mut entries = HashMap::new();
    for line in lines {
        if let Some((k, e)) = parse_entry(line) {
            entries.insert(k, e);
        }
    }
    Some((header, entries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_suite;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("harness-ckpt-{name}-{}", std::process::id()))
    }

    #[test]
    fn escaping_round_trips() {
        for s in ["plain", "a|b,c%d", "line\nbreak\r", "", "100%"] {
            assert_eq!(unesc(&esc(s)).as_deref(), Some(s));
            assert!(!esc(s).contains('|') || s.is_empty());
        }
        assert_eq!(unesc("%zz"), None);
        assert_eq!(unesc("%7"), None);
    }

    #[test]
    fn full_suite_state_round_trips_exactly() {
        let results = run_suite(&hpc_kernels::test_suite(), false);
        let header = StateHeader {
            tag: "test".into(),
            fault_seed: Some(42),
            benches: results.bench_names.clone(),
        };
        let path = tmp("roundtrip");
        save(&path, &header, &results.cells).unwrap();
        let (h2, cells2) = load(&path).unwrap();
        assert_eq!(h2, header);
        assert_eq!(cells2.len(), results.cells.len());
        // Byte-exact: serializing the loaded state reproduces the file.
        let path2 = tmp("roundtrip2");
        save(&path2, &h2, &cells2).unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            std::fs::read(&path2).unwrap()
        );
        // Spot-check bit-exact floats through the round trip.
        for (k, e) in &results.cells {
            match (e, &cells2[k]) {
                (CellEntry::Ok(a), CellEntry::Ok(b)) => {
                    assert_eq!(a.outcome.time_s.to_bits(), b.outcome.time_s.to_bits());
                    assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits());
                    assert_eq!(a.counters, b.counters);
                    assert_eq!(a.outcome.telemetry.commands, b.outcome.telemetry.commands);
                    assert_eq!(
                        a.outcome.telemetry.core_spans,
                        b.outcome.telemetry.core_spans
                    );
                    assert_eq!(a.measurement, b.measurement);
                    assert_eq!(a.attempts, b.attempts);
                }
                (CellEntry::Skipped(a), CellEntry::Skipped(b)) => assert_eq!(a, b),
                (CellEntry::Failed(a), CellEntry::Failed(b)) => assert_eq!(a, b),
                (a, b) => panic!("variant mismatch for {k:?}: {a:?} vs {b:?}"),
            }
        }
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&path2).unwrap();
    }

    #[test]
    fn corrupt_lines_are_dropped_not_fatal() {
        let path = tmp("corrupt");
        let good = run_suite(&hpc_kernels::test_suite(), false);
        let header = StateHeader {
            tag: "test".into(),
            fault_seed: None,
            benches: good.bench_names.clone(),
        };
        save(&path, &header, &good.cells).unwrap();
        // Truncate the last line mid-token, as a crash mid-append would.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.truncate(text.len() - 40);
        text.push_str("\ncell|garbage");
        std::fs::write(&path, &text).unwrap();
        let (h, cells) = load(&path).unwrap();
        assert_eq!(h, header);
        assert!(cells.len() >= good.cells.len() - 2);
        assert!(cells.len() < good.cells.len() + 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_or_foreign_files_load_as_none() {
        assert!(load(Path::new("/nonexistent/suite.state")).is_none());
        let path = tmp("foreign");
        std::fs::write(&path, "not a state file\n").unwrap();
        assert!(load(&path).is_none());
        std::fs::remove_file(&path).unwrap();
    }
}
