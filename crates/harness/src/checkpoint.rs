//! `suite.state` — the crash-safe sweep checkpoint.
//!
//! A dependency-free, line-oriented text format: one `meta` header line
//! identifying the suite (state tag, fault seed, benchmark list) and one
//! `cell` line per completed cell, fully serializing the [`CellEntry`] —
//! floats as IEEE-754 bit patterns in hex so the round trip is exact and a
//! resumed run's artifacts are byte-identical to an uninterrupted one.
//!
//! The token-level codec (percent escaping, float bit patterns, the
//! [`Tokens`] reader) lives in [`sim_server::key`] and is shared with the
//! server's cache snapshot format. Since `simstate v2` every cell line
//! also carries the cell's content address ([`CellKey`], derived from the
//! header identity via [`cell_spec`]) as an integrity column: the loader
//! recomputes it and drops lines whose stored key disagrees, and the
//! serving layer warm-starts its content-addressed cache directly from
//! checkpoint files because both speak the same key space. `simstate v3`
//! added the optimizer pipeline to the header identity (a sweep run under
//! `cf,cse,dce` is a different sweep than the unoptimized one) and the
//! per-cell output digest to the cell payload.
//!
//! The file is rewritten atomically (temp + rename) after every completed
//! cell and the lines are kept sorted, so the on-disk bytes are a pure
//! function of the *set* of finished cells, independent of completion
//! order and thread count. Corrupt or unknown lines are skipped on load:
//! a damaged checkpoint costs rework, never a crash.

use crate::artifact::atomic_write;
use crate::runner::{Cell, CellCoord, CellEntry, CellError, FailKind};
use hpc_kernels::{Precision, RunOutcome, RunSkip, Variant};
use powersim::{Activity, Measurement};
use sim_server::key::{esc, fbits, unesc, CellKey, CellSpec, Tokens};
use std::collections::HashMap;
use std::io;
use std::path::Path;
use telemetry::{CommandSpan, Counters, RunTelemetry, WorkSpan};

const MAGIC: &str = "simstate v3";

/// Device fingerprint of the simulated platform, part of every cell key.
pub const DEVICE: &str = "exynos5250";

/// Build the canonical [`CellSpec`] for one cell of a sweep identified by
/// `(tag, fault_seed)` — the same identity the checkpoint header pins.
/// This is the single place where harness domain types (variant labels
/// with spaces, [`Precision`]) are normalized into the wire/key form, so
/// the checkpoint, the server cache and the HTTP API cannot drift apart.
pub fn cell_spec(
    tag: &str,
    fault_seed: Option<u64>,
    passes: Option<&str>,
    bench: &str,
    v: Variant,
    prec: Precision,
) -> CellSpec {
    CellSpec {
        sim_version: env!("CARGO_PKG_VERSION").to_string(),
        device: DEVICE.to_string(),
        scale: tag.to_string(),
        bench: bench.to_string(),
        version: v.label().replace(' ', "-"),
        precision: crate::runner::prec_key(prec),
        fault_seed,
        passes: passes.map(str::to_string),
        params: Vec::new(),
    }
}

/// [`cell_spec`] addressed by coordinate tuple (precision already in
/// bits), as stored in [`crate::runner::SuiteResults::cells`].
pub fn coord_spec(
    tag: &str,
    fault_seed: Option<u64>,
    passes: Option<&str>,
    coord: &CellCoord,
) -> Option<CellSpec> {
    let prec = match coord.2 {
        32 => Precision::F32,
        64 => Precision::F64,
        _ => return None,
    };
    Some(cell_spec(tag, fault_seed, passes, &coord.0, coord.1, prec))
}

/// Identity of the sweep a checkpoint belongs to. Loaded state is only
/// reused when the whole header matches the resuming run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StateHeader {
    /// Suite scale tag ("paper" / "test").
    pub tag: String,
    /// Fault-plan seed of the run, if chaos was enabled.
    pub fault_seed: Option<u64>,
    /// Optimizer pipeline pinned for the sweep (comma-separated
    /// [`kernel_ir::opt::Pipeline`] form), if any. Part of the identity:
    /// cells measured under different pass pipelines are never
    /// interchangeable, even when their outputs agree bit for bit.
    pub passes: Option<String>,
    /// Benchmark names, in suite order.
    pub benches: Vec<String>,
}

/// `CommandSpan::cat` is a `&'static str`; map the stored string back to
/// the known statics (unknown categories make the line corrupt).
fn static_cat(s: &str) -> Option<&'static str> {
    Some(match s {
        "kernel" => "kernel",
        "write" => "write",
        "read" => "read",
        "map" => "map",
        "unmap" => "unmap",
        "cpu" => "cpu",
        _ => return None,
    })
}

fn push_counters(t: &mut Vec<String>, c: &Counters) {
    for v in c.ops_by_class {
        t.push(v.to_string());
    }
    for v in c.width_hist {
        t.push(v.to_string());
    }
    for v in [c.flops, c.int_ops, c.special_ops] {
        t.push(fbits(v));
    }
    for v in [
        c.loads,
        c.stores,
        c.atomics,
        c.bytes_read,
        c.bytes_written,
        c.local_accesses,
        c.gather_accesses,
        c.contiguous_accesses,
        c.barriers,
        c.loop_iters,
        c.threads,
        c.groups,
        c.hier_accesses,
        c.l1_hits,
        c.l2_hits,
        c.dram_lines,
        c.dram_stream_lines,
        c.dram_scatter_lines,
        c.dram_writeback_lines,
    ] {
        t.push(v.to_string());
    }
    for v in [
        c.resident_threads,
        c.max_resident_threads,
        c.registers_per_thread,
    ] {
        t.push(v.to_string());
    }
}

fn read_counters(t: &mut Tokens) -> Option<Counters> {
    let mut ops_by_class = [0u64; 9];
    for v in &mut ops_by_class {
        *v = t.u64()?;
    }
    let mut width_hist = [0u64; 5];
    for v in &mut width_hist {
        *v = t.u64()?;
    }
    // Exhaustive literal: adding a Counters field breaks this build until
    // the checkpoint codec learns about it.
    Some(Counters {
        ops_by_class,
        width_hist,
        flops: t.f64()?,
        int_ops: t.f64()?,
        special_ops: t.f64()?,
        loads: t.u64()?,
        stores: t.u64()?,
        atomics: t.u64()?,
        bytes_read: t.u64()?,
        bytes_written: t.u64()?,
        local_accesses: t.u64()?,
        gather_accesses: t.u64()?,
        contiguous_accesses: t.u64()?,
        barriers: t.u64()?,
        loop_iters: t.u64()?,
        threads: t.u64()?,
        groups: t.u64()?,
        hier_accesses: t.u64()?,
        l1_hits: t.u64()?,
        l2_hits: t.u64()?,
        dram_lines: t.u64()?,
        dram_stream_lines: t.u64()?,
        dram_scatter_lines: t.u64()?,
        dram_writeback_lines: t.u64()?,
        resident_threads: t.u32()?,
        max_resident_threads: t.u32()?,
        registers_per_thread: t.u32()?,
    })
}

fn push_cell(t: &mut Vec<String>, cell: &Cell) {
    t.push(cell.attempts.to_string());
    let o = &cell.outcome;
    t.push(fbits(o.time_s));
    let a = &o.activity;
    for v in [
        a.duration_s,
        a.cpu_busy_s[0],
        a.cpu_busy_s[1],
        a.gpu_active_s,
        a.gpu_arith_util_s,
        a.gpu_ls_util_s,
    ] {
        t.push(fbits(v));
    }
    t.push(a.dram_bytes.to_string());
    t.push(if o.validated { "1" } else { "0" }.into());
    t.push(fbits(o.max_rel_err));
    t.push(match &o.note {
        Some(n) => format!("+{}", esc(n)),
        None => "-".into(),
    });
    push_counters(t, &o.telemetry.counters);
    t.push(o.telemetry.commands.len().to_string());
    for c in &o.telemetry.commands {
        t.push(esc(&c.name));
        t.push(esc(c.cat));
        t.push(fbits(c.start_s));
        t.push(fbits(c.end_s));
    }
    t.push(o.telemetry.core_spans.len().to_string());
    for s in &o.telemetry.core_spans {
        t.push(s.core.to_string());
        t.push(s.group.to_string());
        t.push(fbits(s.start_s));
        t.push(fbits(s.end_s));
    }
    let m = &cell.measurement;
    for v in [
        m.duration_s,
        m.mean_power_w,
        m.std_power_w,
        m.mean_energy_j,
        m.std_energy_j,
    ] {
        t.push(fbits(v));
    }
    t.push(m.repetitions.to_string());
    t.push(cell.iterations.to_string());
    t.push(fbits(cell.energy_j));
    t.push(format!("{:016x}", cell.output_digest));
}

fn read_cell(t: &mut Tokens) -> Option<Cell> {
    let attempts = t.u32()?;
    let time_s = t.f64()?;
    let activity = Activity {
        duration_s: t.f64()?,
        cpu_busy_s: [t.f64()?, t.f64()?],
        gpu_active_s: t.f64()?,
        gpu_arith_util_s: t.f64()?,
        gpu_ls_util_s: t.f64()?,
        dram_bytes: t.u64()?,
    };
    let validated = match t.str()? {
        "1" => true,
        "0" => false,
        _ => return None,
    };
    let max_rel_err = t.f64()?;
    let note = match t.str()? {
        "-" => None,
        s => Some(unesc(s.strip_prefix('+')?)?),
    };
    let counters = read_counters(t)?;
    let n_cmds = t.usize()?;
    // Cap counts to the remaining token estimate to avoid absurd
    // allocations from a corrupt line.
    if n_cmds > 1_000_000 {
        return None;
    }
    let mut commands = Vec::with_capacity(n_cmds);
    for _ in 0..n_cmds {
        commands.push(CommandSpan {
            name: t.string()?,
            cat: static_cat(&t.string()?)?,
            start_s: t.f64()?,
            end_s: t.f64()?,
        });
    }
    let n_spans = t.usize()?;
    if n_spans > 10_000_000 {
        return None;
    }
    let mut core_spans = Vec::with_capacity(n_spans);
    for _ in 0..n_spans {
        core_spans.push(WorkSpan {
            core: t.u32()?,
            group: t.u32()?,
            start_s: t.f64()?,
            end_s: t.f64()?,
        });
    }
    let measurement = Measurement {
        duration_s: t.f64()?,
        mean_power_w: t.f64()?,
        std_power_w: t.f64()?,
        mean_energy_j: t.f64()?,
        std_energy_j: t.f64()?,
        repetitions: t.u32()?,
    };
    let iterations = t.u32()?;
    let energy_j = t.f64()?;
    let output_digest = u64::from_str_radix(t.str()?, 16).ok()?;
    Some(Cell {
        outcome: RunOutcome {
            time_s,
            activity,
            validated,
            max_rel_err,
            note,
            telemetry: RunTelemetry {
                counters: counters.clone(),
                commands,
                core_spans,
            },
        },
        measurement,
        iterations,
        energy_j,
        counters,
        attempts,
        output_digest,
    })
}

fn variant_index(v: Variant) -> usize {
    Variant::ALL.iter().position(|x| *x == v).unwrap()
}

fn push_entry(t: &mut Vec<String>, entry: &CellEntry) {
    match entry {
        CellEntry::Ok(cell) => {
            t.push("ok".into());
            push_cell(t, cell);
        }
        CellEntry::Skipped(skip) => {
            t.push("skip".into());
            let (kind, msg) = match skip {
                RunSkip::CompilerBug(m) => ("compiler-bug", m),
                RunSkip::LaunchFailure(m) => ("launch-failure", m),
            };
            t.push(kind.into());
            t.push(esc(msg));
        }
        CellEntry::Failed(err) => {
            t.push("fail".into());
            t.push(err.kind.label().into());
            t.push(esc(&err.message));
            t.push(err.attempts.to_string());
            t.push(err.backoff_ms.to_string());
        }
    }
}

fn read_entry(t: &mut Tokens) -> Option<CellEntry> {
    Some(match t.str()? {
        "ok" => CellEntry::Ok(read_cell(t)?),
        "skip" => {
            let kind = t.str()?.to_string();
            let msg = t.string()?;
            CellEntry::Skipped(match kind.as_str() {
                "compiler-bug" => RunSkip::CompilerBug(msg),
                "launch-failure" => RunSkip::LaunchFailure(msg),
                _ => return None,
            })
        }
        "fail" => CellEntry::Failed(CellError {
            kind: FailKind::from_label(t.str()?)?,
            message: t.string()?,
            attempts: t.u32()?,
            backoff_ms: t.u64()?,
        }),
        _ => return None,
    })
}

/// Serialize one [`CellEntry`] as a standalone '|'-joined token string —
/// the payload format of the checkpoint's cell lines *and* of the
/// server's content-addressed cache, so a cached cell and a checkpointed
/// cell are byte-identical.
pub fn encode_entry(entry: &CellEntry) -> String {
    let mut t = Vec::new();
    push_entry(&mut t, entry);
    t.join("|")
}

/// Inverse of [`encode_entry`]. `None` on any corruption.
pub fn decode_entry(s: &str) -> Option<CellEntry> {
    read_entry(&mut Tokens::new(s))
}

fn entry_line(header: &StateHeader, coord: &CellCoord, entry: &CellEntry) -> String {
    let keyhex = coord_spec(
        &header.tag,
        header.fault_seed,
        header.passes.as_deref(),
        coord,
    )
    .map(|s| s.key().to_string())
    .unwrap_or_else(|| "-".into());
    let (bench, v, prec) = coord;
    let mut t = vec![
        "cell".to_string(),
        keyhex,
        esc(bench),
        variant_index(*v).to_string(),
        prec.to_string(),
    ];
    push_entry(&mut t, entry);
    t.join("|")
}

fn parse_entry(header: &StateHeader, line: &str) -> Option<(CellCoord, CellEntry)> {
    let mut t = Tokens::new(line);
    if t.str()? != "cell" {
        return None;
    }
    let stored: CellKey = t.str()?.parse().ok()?;
    let bench = t.string()?;
    let v = *Variant::ALL.get(t.usize()?)?;
    let prec = t.str()?.parse::<u8>().ok()?;
    let coord = (bench, v, prec);
    // Integrity column: the stored content address must match the one this
    // header derives for the coordinates. A mismatch means the line was
    // edited, spliced in from another sweep, or produced by a different
    // simulator version — recompute rather than trust it.
    if coord_spec(
        &header.tag,
        header.fault_seed,
        header.passes.as_deref(),
        &coord,
    )?
    .key()
        != stored
    {
        return None;
    }
    let entry = read_entry(&mut t)?;
    Some((coord, entry))
}

fn meta_line(h: &StateHeader) -> String {
    format!(
        "meta|{}|{}|{}|{}",
        esc(&h.tag),
        h.fault_seed.map(|s| s.to_string()).unwrap_or("-".into()),
        h.passes.as_deref().map(esc).unwrap_or_else(|| "-".into()),
        h.benches
            .iter()
            .map(|b| esc(b))
            .collect::<Vec<_>>()
            .join(",")
    )
}

fn parse_meta(line: &str) -> Option<StateHeader> {
    let mut t = Tokens::new(line);
    if t.str()? != "meta" {
        return None;
    }
    let tag = t.string()?;
    let fault_seed = match t.str()? {
        "-" => None,
        s => Some(s.parse().ok()?),
    };
    let passes = match t.str()? {
        "-" => None,
        s => Some(unesc(s)?),
    };
    let benches = match t.str()? {
        "" => Vec::new(),
        s => s.split(',').map(unesc).collect::<Option<Vec<String>>>()?,
    };
    Some(StateHeader {
        tag,
        fault_seed,
        passes,
        benches,
    })
}

/// Serialize the whole state (header + every finished cell) and write it
/// atomically. Lines are sorted so the bytes depend only on the set of
/// finished cells, not on completion order.
pub fn save(
    path: &Path,
    header: &StateHeader,
    entries: &HashMap<CellCoord, CellEntry>,
) -> io::Result<()> {
    let mut lines: Vec<String> = entries
        .iter()
        .map(|(k, e)| entry_line(header, k, e))
        .collect();
    lines.sort_unstable();
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push('\n');
    out.push_str(&meta_line(header));
    out.push('\n');
    for l in &lines {
        out.push_str(l);
        out.push('\n');
    }
    atomic_write(path, out.as_bytes())
}

/// Load a checkpoint. Returns `None` when the file is missing or its
/// magic/header is unreadable; individual corrupt cell lines (e.g. a
/// truncated tail) are silently dropped — they just get recomputed.
pub fn load(path: &Path) -> Option<(StateHeader, HashMap<CellCoord, CellEntry>)> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut lines = text.lines();
    if lines.next()? != MAGIC {
        return None;
    }
    let header = parse_meta(lines.next()?)?;
    let mut entries = HashMap::new();
    for line in lines {
        if let Some((k, e)) = parse_entry(&header, line) {
            entries.insert(k, e);
        }
    }
    Some((header, entries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_suite;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("harness-ckpt-{name}-{}", std::process::id()))
    }

    #[test]
    fn escaping_round_trips() {
        for s in ["plain", "a|b,c%d", "line\nbreak\r", "", "100%"] {
            assert_eq!(unesc(&esc(s)).as_deref(), Some(s));
            assert!(!esc(s).contains('|') || s.is_empty());
        }
        assert_eq!(unesc("%zz"), None);
        assert_eq!(unesc("%7"), None);
    }

    #[test]
    fn full_suite_state_round_trips_exactly() {
        let results = run_suite(&hpc_kernels::test_suite(), false);
        let header = StateHeader {
            tag: "test".into(),
            fault_seed: Some(42),
            passes: Some("cf,cse,dce".into()),
            benches: results.bench_names.clone(),
        };
        let path = tmp("roundtrip");
        save(&path, &header, &results.cells).unwrap();
        let (h2, cells2) = load(&path).unwrap();
        assert_eq!(h2, header);
        assert_eq!(cells2.len(), results.cells.len());
        // Byte-exact: serializing the loaded state reproduces the file.
        let path2 = tmp("roundtrip2");
        save(&path2, &h2, &cells2).unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            std::fs::read(&path2).unwrap()
        );
        // Spot-check bit-exact floats through the round trip.
        for (k, e) in &results.cells {
            match (e, &cells2[k]) {
                (CellEntry::Ok(a), CellEntry::Ok(b)) => {
                    assert_eq!(a.outcome.time_s.to_bits(), b.outcome.time_s.to_bits());
                    assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits());
                    assert_eq!(a.counters, b.counters);
                    assert_eq!(a.outcome.telemetry.commands, b.outcome.telemetry.commands);
                    assert_eq!(
                        a.outcome.telemetry.core_spans,
                        b.outcome.telemetry.core_spans
                    );
                    assert_eq!(a.measurement, b.measurement);
                    assert_eq!(a.attempts, b.attempts);
                }
                (CellEntry::Skipped(a), CellEntry::Skipped(b)) => assert_eq!(a, b),
                (CellEntry::Failed(a), CellEntry::Failed(b)) => assert_eq!(a, b),
                (a, b) => panic!("variant mismatch for {k:?}: {a:?} vs {b:?}"),
            }
        }
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&path2).unwrap();
    }

    #[test]
    fn corrupt_lines_are_dropped_not_fatal() {
        let path = tmp("corrupt");
        let good = run_suite(&hpc_kernels::test_suite(), false);
        let header = StateHeader {
            tag: "test".into(),
            fault_seed: None,
            passes: None,
            benches: good.bench_names.clone(),
        };
        save(&path, &header, &good.cells).unwrap();
        // Truncate the last line mid-token, as a crash mid-append would.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.truncate(text.len() - 40);
        text.push_str("\ncell|garbage");
        std::fs::write(&path, &text).unwrap();
        let (h, cells) = load(&path).unwrap();
        assert_eq!(h, header);
        assert!(cells.len() >= good.cells.len() - 2);
        assert!(cells.len() < good.cells.len() + 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn cell_lines_carry_a_verified_content_address() {
        let results = run_suite(&hpc_kernels::test_suite(), false);
        let header = StateHeader {
            tag: "test".into(),
            fault_seed: None,
            passes: None,
            benches: results.bench_names.clone(),
        };
        let path = tmp("keyed");
        save(&path, &header, &results.cells).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        // Every cell line's second column is the 16-hex-digit CellKey the
        // header identity derives for those coordinates.
        let mut checked = 0;
        for line in text.lines().filter(|l| l.starts_with("cell|")) {
            let key = line.split('|').nth(1).unwrap();
            assert_eq!(key.len(), 16, "{line}");
            assert!(key.parse::<CellKey>().is_ok(), "{line}");
            checked += 1;
        }
        assert_eq!(checked, results.cells.len());
        // Tampering with one key drops exactly that line on load.
        let victim = text.lines().find(|l| l.starts_with("cell|")).unwrap();
        let mut cols: Vec<&str> = victim.splitn(3, '|').collect();
        cols[1] = "0000000000000000";
        let bad_line = cols.join("|");
        std::fs::write(&path, text.replace(victim, &bad_line)).unwrap();
        let (_, cells) = load(&path).unwrap();
        assert_eq!(cells.len(), results.cells.len() - 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn entry_payloads_round_trip_standalone() {
        let results = run_suite(&hpc_kernels::test_suite(), false);
        for entry in results.cells.values() {
            let enc = encode_entry(entry);
            assert_eq!(enc.lines().count(), 1);
            let back = decode_entry(&enc).expect("payload decodes");
            // Re-encoding the decoded entry is byte-identical.
            assert_eq!(encode_entry(&back), enc);
        }
        assert!(decode_entry("ok|truncated").is_none());
        assert!(decode_entry("nonsense").is_none());
    }

    #[test]
    fn missing_or_foreign_files_load_as_none() {
        assert!(load(Path::new("/nonexistent/suite.state")).is_none());
        let path = tmp("foreign");
        std::fs::write(&path, "not a state file\n").unwrap();
        assert!(load(&path).is_none());
        std::fs::remove_file(&path).unwrap();
    }
}
