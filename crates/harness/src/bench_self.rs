//! `bench-self` — the simulator benchmarking itself.
//!
//! Runs the warm suite once per (engine, worker-thread) combination —
//! scalar and columnar interpreters at 1 and 8 workers — and reports the
//! wall-clock of each pass. Because both engines are bit-deterministic
//! *and* bit-identical to each other, all four passes must produce
//! byte-identical CSV/JSONL exports — `--check` turns that invariant into
//! a hard failure (exit 2), which is what CI runs.
//!
//! Results are written as `BENCH_sim.json` (at the current directory, i.e.
//! the repo root when invoked from there) so speedups can be tracked
//! across commits: `columnar_speedup` is the single-thread interpreter
//! gain from the SoA rewrite, `parallel_speedup` the threading gain on
//! top of it, and `per_bench` breaks the single-thread comparison down by
//! family (interpreter-bound families vs device-model-bound ones).

use crate::{run_suite, run_suite_with, to_csv, to_jsonl, SuiteConfig};
use hpc_kernels::Benchmark;
use kernel_ir::opt::Pipeline;
use kernel_ir::Engine;
use std::time::Instant;

/// Worker counts every pass is measured at, mirroring the CI matrix.
pub const THREAD_POINTS: [usize; 2] = [1, 8];

/// One timed suite pass: engine × worker threads → wall-clock.
pub struct BenchRow {
    /// `"scalar"` or `"columnar"`.
    pub engine: &'static str,
    /// Worker threads the pass used.
    pub sim_threads: usize,
    /// Optimizer pipeline the pass pinned (`"-"` = unoptimized).
    pub passes: &'static str,
    /// Wall-clock of the warm suite, seconds.
    pub wall_s: f64,
}

/// Single-thread scalar-vs-columnar wall-clock for one benchmark family.
/// The suite aggregate mixes interpreter-bound families (where the SoA
/// engine shines) with gather-replay-bound ones (spmv, red — dominated by
/// the device models' per-lane cache walks, identical on both engines);
/// the per-family rows keep the interpreter gain visible.
pub struct BenchCompare {
    pub bench: &'static str,
    pub scalar_1_s: f64,
    pub columnar_1_s: f64,
    /// scalar@1 / columnar@1 for this family.
    pub speedup: f64,
}

/// Outcome of one self-benchmark.
pub struct SelfBench {
    /// Host hardware parallelism.
    pub host_threads: usize,
    /// `"test"` or `"paper"` input scale.
    pub scale: &'static str,
    /// One row per engine per thread count, in measurement order.
    pub rows: Vec<BenchRow>,
    /// Per-benchmark-family single-thread engine comparison.
    pub per_bench: Vec<BenchCompare>,
    /// Single-thread gain of the columnar engine: scalar@1 / columnar@1.
    pub columnar_speedup: f64,
    /// Threading gain of the columnar engine: columnar@1 / columnar@8.
    pub parallel_speedup: f64,
    /// Interpreter gain of the canonical full optimizer pipeline on the
    /// columnar engine: columnar@1 unoptimized / columnar@1 optimized.
    /// Fewer executed instructions -> less interpreter work per launch.
    pub opt_speedup: f64,
    /// Whether every pass produced byte-identical CSV and JSONL exports
    /// (the engines' shared determinism contract). Optimized passes are
    /// compared against each other (their simulated times legitimately
    /// differ from the unoptimized runs), unoptimized passes against the
    /// first unoptimized pass.
    pub outputs_identical: bool,
}

impl SelfBench {
    /// Machine-readable form, written to `BENCH_sim.json`.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "    {{ \"engine\": \"{}\", \"sim_threads\": {}, \"passes\": \"{}\", \
                     \"wall_s\": {:.6} }}",
                    r.engine, r.sim_threads, r.passes, r.wall_s
                )
            })
            .collect();
        let per_bench: Vec<String> = self
            .per_bench
            .iter()
            .map(|b| {
                format!(
                    "    {{ \"bench\": \"{}\", \"scalar_1_s\": {:.6}, \"columnar_1_s\": {:.6}, \
                     \"speedup\": {:.3} }}",
                    b.bench, b.scalar_1_s, b.columnar_1_s, b.speedup
                )
            })
            .collect();
        format!(
            "{{\n  \"host_threads\": {},\n  \"scale\": \"{}\",\n  \"rows\": [\n{}\n  ],\n  \
             \"per_bench\": [\n{}\n  ],\n  \
             \"columnar_speedup\": {:.3},\n  \"parallel_speedup\": {:.3},\n  \
             \"opt_speedup\": {:.3},\n  \
             \"outputs_identical\": {}\n}}\n",
            self.host_threads,
            self.scale,
            rows.join(",\n"),
            per_bench.join(",\n"),
            self.columnar_speedup,
            self.parallel_speedup,
            self.opt_speedup,
            self.outputs_identical
        )
    }

    /// Human-readable one-screen summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "self-benchmark ({} scale, host has {} hardware threads)\n",
            self.scale, self.host_threads
        );
        for r in &self.rows {
            s.push_str(&format!(
                "  {:<8} engine, {} worker{}{}: {:.3} s\n",
                r.engine,
                r.sim_threads,
                if r.sim_threads == 1 { " " } else { "s" },
                if r.passes == "-" {
                    String::new()
                } else {
                    format!(", passes={}", r.passes)
                },
                r.wall_s
            ));
        }
        if !self.per_bench.is_empty() {
            s.push_str("  per-family (1 worker, scalar -> columnar):\n");
            for b in &self.per_bench {
                s.push_str(&format!(
                    "    {:<10} {:>8.3} s -> {:>8.3} s  ({:.2}x)\n",
                    b.bench, b.scalar_1_s, b.columnar_1_s, b.speedup
                ));
            }
        }
        s.push_str(&format!(
            "  columnar speedup (1 worker) : {:.2}x\n\
             \x20 parallel speedup (columnar): {:.2}x\n\
             \x20 optimizer speedup (full)   : {:.2}x\n\
             \x20 outputs identical          : {}\n",
            self.columnar_speedup, self.parallel_speedup, self.opt_speedup, self.outputs_identical
        ));
        s
    }
}

/// One timed suite pass at a fixed engine, worker count and optimizer
/// pipeline; returns wall-clock plus the byte-comparable exports. The
/// pipeline rides in `SuiteConfig::passes` (installed per cell on the
/// executing worker) rather than a `with_passes` wrap around the suite
/// call — a thread-local override on this thread would be invisible to
/// the pool workers the suite fans cells out to. An empty pipeline is
/// pinned for unoptimized passes so an ambient `SIM_PASSES` cannot skew
/// the baseline rows.
fn timed_pass(
    benches: &[Box<dyn Benchmark>],
    engine: Engine,
    threads: usize,
    passes: Option<&Pipeline>,
) -> (f64, String, String) {
    kernel_ir::set_engine(engine);
    sim_pool::set_threads(threads);
    let cfg = SuiteConfig {
        passes: Some(passes.cloned().unwrap_or_default()),
        ..SuiteConfig::default()
    };
    let t0 = Instant::now();
    let results = run_suite_with(benches, &cfg);
    let dt = t0.elapsed().as_secs_f64();
    (dt, to_csv(&results), to_jsonl(&results))
}

/// Run the self-benchmark. Restores the configured engine and thread count
/// afterwards.
pub fn run(test_scale: bool) -> SelfBench {
    let benches = if test_scale {
        hpc_kernels::test_suite()
    } else {
        hpc_kernels::suite()
    };
    let configured_engine = kernel_ir::engine();
    let configured_threads = sim_pool::threads().max(1);
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Warm-up pass: first-touch page faults, lazy allocator growth and
    // icache warming would otherwise all land on the first measurement.
    sim_pool::set_threads(1);
    let _ = run_suite(&benches, false);

    let mut rows = Vec::new();
    let mut exports: Vec<(String, String)> = Vec::new();
    let full = Pipeline::full();
    let mut wall = |eng: Engine, threads: usize, passes: Option<&Pipeline>| -> f64 {
        let (dt, csv, jsonl) = timed_pass(&benches, eng, threads, passes);
        rows.push(BenchRow {
            engine: eng.name(),
            sim_threads: threads,
            passes: if passes.is_some() { "full" } else { "-" },
            wall_s: dt,
        });
        exports.push((csv, jsonl));
        dt
    };
    let scalar_1 = wall(Engine::Scalar, THREAD_POINTS[0], None);
    let _scalar_n = wall(Engine::Scalar, THREAD_POINTS[1], None);
    let col_1 = wall(Engine::Columnar, THREAD_POINTS[0], None);
    let col_n = wall(Engine::Columnar, THREAD_POINTS[1], None);
    // Optimized passes: the canonical full pipeline on the columnar
    // engine, at both worker counts (their exports must agree with each
    // other — not with the unoptimized runs, whose simulated times
    // legitimately differ).
    let opt_1 = wall(Engine::Columnar, THREAD_POINTS[0], Some(&full));
    let _opt_n = wall(Engine::Columnar, THREAD_POINTS[1], Some(&full));

    // Per-family single-thread comparison (timing only — the byte-equality
    // check above uses the full-suite passes, whose per-cell seeds depend
    // on position in the full bench list).
    let mut per_bench = Vec::new();
    for i in 0..benches.len() {
        let fam = &benches[i..i + 1];
        let (s1, _, _) = timed_pass(fam, Engine::Scalar, 1, None);
        let (c1, _, _) = timed_pass(fam, Engine::Columnar, 1, None);
        per_bench.push(BenchCompare {
            bench: benches[i].name(),
            scalar_1_s: s1,
            columnar_1_s: c1,
            speedup: s1 / c1.max(1e-9),
        });
    }

    kernel_ir::set_engine(configured_engine);
    sim_pool::set_threads(configured_threads);

    let (base_csv, base_jsonl) = &exports[0];
    let unopt_identical = exports[1..4]
        .iter()
        .all(|(c, j)| c == base_csv && j == base_jsonl);
    let opt_identical = exports[4] == exports[5];
    let outputs_identical = unopt_identical && opt_identical;

    SelfBench {
        host_threads,
        scale: if test_scale { "test" } else { "paper" },
        rows,
        per_bench,
        columnar_speedup: scalar_1 / col_1.max(1e-9),
        parallel_speedup: col_1 / col_n.max(1e-9),
        opt_speedup: col_1 / opt_1.max(1e-9),
        outputs_identical,
    }
}
