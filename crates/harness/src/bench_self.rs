//! `bench-self` — the simulator benchmarking itself.
//!
//! Runs the warm suite twice, once with one worker thread and once with the
//! configured thread count, and reports the wall-clock ratio. Because the
//! parallel engine is bit-deterministic, the two passes must also produce
//! byte-identical CSV/JSONL exports — `--check` turns that invariant into a
//! hard failure, which is what CI runs.
//!
//! Results are written as `BENCH_sim.json` (at the current directory, i.e.
//! the repo root when invoked from there) so speedups can be tracked across
//! commits.

use crate::{run_suite, to_csv, to_jsonl};
use hpc_kernels::Benchmark;
use std::time::Instant;

/// Outcome of one self-benchmark.
pub struct SelfBench {
    /// Host hardware parallelism.
    pub host_threads: usize,
    /// Worker threads the parallel pass used (`--threads` / `SIM_THREADS` /
    /// host parallelism).
    pub sim_threads: usize,
    /// `"test"` or `"paper"` input scale.
    pub scale: &'static str,
    /// Wall-clock of the warm suite with 1 worker, seconds.
    pub serial_s: f64,
    /// Wall-clock of the warm suite with `sim_threads` workers, seconds.
    pub parallel_s: f64,
    /// `serial_s / parallel_s`.
    pub speedup: f64,
    /// Whether the serial and parallel passes produced byte-identical
    /// CSV and JSONL exports (the engine's determinism contract).
    pub outputs_identical: bool,
}

impl SelfBench {
    /// Machine-readable form, written to `BENCH_sim.json`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"host_threads\": {},\n  \"sim_threads\": {},\n  \"scale\": \"{}\",\n  \
             \"serial_s\": {:.6},\n  \"parallel_s\": {:.6},\n  \"speedup\": {:.3},\n  \
             \"outputs_identical\": {}\n}}\n",
            self.host_threads,
            self.sim_threads,
            self.scale,
            self.serial_s,
            self.parallel_s,
            self.speedup,
            self.outputs_identical
        )
    }

    /// Human-readable one-screen summary.
    pub fn summary(&self) -> String {
        format!(
            "self-benchmark ({} scale, host has {} hardware threads)\n\
               serial   (1 worker)   : {:.3} s\n\
               parallel ({} workers) : {:.3} s\n\
               speedup              : {:.2}x\n\
               outputs identical    : {}\n",
            self.scale,
            self.host_threads,
            self.serial_s,
            self.sim_threads,
            self.parallel_s,
            self.speedup,
            self.outputs_identical
        )
    }
}

/// One timed suite pass at a fixed worker count; returns wall-clock plus
/// the byte-comparable exports.
fn timed_pass(benches: &[Box<dyn Benchmark>], threads: usize) -> (f64, String, String) {
    sim_pool::set_threads(threads);
    let t0 = Instant::now();
    let results = run_suite(benches, false);
    let dt = t0.elapsed().as_secs_f64();
    (dt, to_csv(&results), to_jsonl(&results))
}

/// Run the self-benchmark. Restores the configured thread count afterwards.
pub fn run(test_scale: bool) -> SelfBench {
    let benches = if test_scale {
        hpc_kernels::test_suite()
    } else {
        hpc_kernels::suite()
    };
    let configured = sim_pool::threads().max(1);
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Warm-up pass: first-touch page faults, lazy allocator growth and
    // icache warming would otherwise all land on the serial measurement.
    sim_pool::set_threads(1);
    let _ = run_suite(&benches, false);

    let (serial_s, csv_1, jsonl_1) = timed_pass(&benches, 1);
    let (parallel_s, csv_n, jsonl_n) = timed_pass(&benches, configured);
    sim_pool::set_threads(configured);

    SelfBench {
        host_threads,
        sim_threads: configured,
        scale: if test_scale { "test" } else { "paper" },
        serial_s,
        parallel_s,
        speedup: serial_s / parallel_s.max(1e-9),
        outputs_identical: csv_1 == csv_n && jsonl_1 == jsonl_n,
    }
}
