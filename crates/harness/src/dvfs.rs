//! Extension experiment: GPU frequency/voltage scaling.
//!
//! The paper measures one operating point (533 MHz). A natural question it
//! raises — and later Mont-Blanc work pursued — is where the
//! energy-optimal GPU frequency sits: lower clocks cut power superlinearly
//! (P ∝ f·V² with V roughly linear in f on the Exynos 5250's DVFS ladder)
//! but stretch runtime, keeping the board's idle power integrated for
//! longer ("race-to-idle"). This module sweeps the T604's documented DVFS
//! steps and reports time/power/energy per step for a representative
//! kernel from each roofline regime.

use hpc_kernels::common::{gpu_context, launch};
use hpc_kernels::Precision;
use kernel_ir::{BufferData, Scalar};
use mali_gpu::{MaliConfig, MaliT604};
use ocl_runtime::{Context, KernelArg, MemFlags};
use powersim::{Activity, PowerModel};
use std::fmt::Write as _;

/// The Exynos 5250 Mali DVFS ladder (Hz) with its approximate rail
/// voltages (V). 533 MHz / 1.05 V is the paper's operating point.
pub const DVFS_STEPS: [(f64, f64); 4] =
    [(266e6, 0.86), (350e6, 0.92), (450e6, 0.98), (533e6, 1.05)];

/// Result of one step of the sweep.
#[derive(Clone, Debug)]
pub struct DvfsPoint {
    pub freq_hz: f64,
    pub volt: f64,
    pub time_s: f64,
    pub power_w: f64,
    pub energy_j: f64,
}

/// Power model with the GPU dynamic-power coefficients rescaled for an
/// operating point: `P_dyn ∝ (f/f0) · (V/V0)²`.
pub fn model_at(freq_hz: f64, volt: f64) -> PowerModel {
    let base = PowerModel::default();
    let (f0, v0) = (533e6, 1.05);
    let k = (freq_hz / f0) * (volt / v0) * (volt / v0);
    PowerModel {
        gpu_base_w: base.gpu_base_w * k,
        gpu_arith_full_w: base.gpu_arith_full_w * k,
        gpu_ls_full_w: base.gpu_ls_full_w * k,
        ..base
    }
}

/// Run one benchmark's OpenCL-Opt version across the ladder. The
/// benchmark is identified by name from the mid-scale suite.
pub fn sweep_benchmark(name: &str) -> Vec<DvfsPoint> {
    let mut out = Vec::new();
    for (f, v) in DVFS_STEPS {
        let cfg = MaliConfig {
            freq_hz: f,
            ..Default::default()
        };
        // Run via a scaled device: reuse the benchmark's kernels through
        // the suite is not possible (they build their own contexts), so we
        // reproduce the launch here for the supported kernels.
        let (time_s, activity) = run_opt_at(name, cfg);
        let model = model_at(f, v);
        let power = model.average_power(&activity);
        out.push(DvfsPoint {
            freq_hz: f,
            volt: v,
            time_s,
            power_w: power,
            energy_j: power * time_s,
        });
    }
    out
}

/// Launch the named benchmark's optimized kernel on a device with config
/// `cfg`. Covers one kernel per roofline regime.
fn run_opt_at(name: &str, cfg: MaliConfig) -> (f64, Activity) {
    match name {
        "vecop" => {
            // Memory-bound regime.
            let b = hpc_kernels::vecop::Vecop { n: 1 << 18 };
            let (prog, width) = b.opt_kernel(Precision::F32);
            let mut ctx = Context::new(MaliT604::new(cfg));
            let ids: Vec<_> = (0..3)
                .map(|_| {
                    ctx.create_buffer_init(
                        BufferData::zeroed(Scalar::F32, b.n),
                        MemFlags::AllocHostPtr,
                    )
                })
                .collect();
            let k = ctx.build_kernel(prog).expect("builds");
            let args: Vec<KernelArg> = ids.iter().map(|&x| KernelArg::Buf(x)).collect();
            launch(
                &mut ctx,
                &k,
                [b.n / width as usize, 1, 1],
                Some([128, 1, 1]),
                &args,
            )
            .expect("launch")
        }
        "nbody" => {
            // Compute-bound regime.
            let b = hpc_kernels::nbody::Nbody {
                n: 512,
                dt: 0.01,
                opt_unroll: 4,
            };
            let prog = b.opt_kernel(Precision::F32);
            let (mut ctx, ids) = gpu_context(vec![
                Precision::F32.buffer(&b.bodies()),
                BufferData::zeroed(Scalar::F32, b.n * 4),
            ]);
            ctx.device = MaliT604::new(cfg);
            let k = ctx.build_kernel(prog).expect("builds");
            let args: Vec<KernelArg> = ids.iter().map(|&x| KernelArg::Buf(x)).collect();
            launch(&mut ctx, &k, [b.n, 1, 1], Some([128, 1, 1]), &args).expect("launch")
        }
        other => panic!("dvfs sweep supports vecop|nbody, got {other}"),
    }
}

/// Render the sweep report for both regimes.
pub fn report() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== extension: GPU DVFS sweep (not in the paper; §V-D motivates it) =="
    );
    for name in ["vecop", "nbody"] {
        let regime = if name == "vecop" {
            "memory-bound"
        } else {
            "compute-bound"
        };
        let _ = writeln!(out, "\n{name} ({regime}), OpenCL-Opt kernel:");
        let _ = writeln!(
            out,
            "  {:>7} {:>6} {:>10} {:>8} {:>10}",
            "MHz", "V", "time", "power", "energy"
        );
        let points = sweep_benchmark(name);
        let best = points
            .iter()
            .map(|p| p.energy_j)
            .fold(f64::INFINITY, f64::min);
        for p in &points {
            let marker = if (p.energy_j - best).abs() < 1e-12 {
                "  <-- min energy"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  {:>7.0} {:>6.2} {:>8.2}ms {:>7.2}W {:>9.4}J{marker}",
                p.freq_hz / 1e6,
                p.volt,
                p.time_s * 1e3,
                p.power_w,
                p.energy_j
            );
        }
    }
    let _ = writeln!(
        out,
        "\nInterpretation: compute-bound kernels stretch 1/f with falling clocks, so\n\
         the board's static power dominates and racing to idle at 533 MHz wins or\n\
         ties; memory-bound kernels barely slow down (DRAM-bound), so mid-ladder\n\
         points can cut GPU dynamic power nearly for free."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_monotone_in_time_for_compute_bound() {
        let pts = sweep_benchmark("nbody");
        assert_eq!(pts.len(), 4);
        for w in pts.windows(2) {
            assert!(
                w[0].time_s >= w[1].time_s,
                "higher frequency must not be slower: {w:?}"
            );
        }
        // At the top step the compute-bound kernel is substantially faster
        // than at the bottom step (roughly f-proportional).
        let ratio = pts[0].time_s / pts[3].time_s;
        assert!(ratio > 1.5, "compute-bound scaling ratio {ratio:.2}");
    }

    #[test]
    fn memory_bound_kernel_insensitive_to_frequency() {
        let pts = sweep_benchmark("vecop");
        let ratio = pts[0].time_s / pts[3].time_s;
        assert!(
            ratio < 1.6,
            "memory-bound kernel should scale weakly with clock (ratio {ratio:.2})"
        );
    }

    #[test]
    fn power_rises_with_frequency() {
        for name in ["vecop", "nbody"] {
            let pts = sweep_benchmark(name);
            for w in pts.windows(2) {
                assert!(w[0].power_w <= w[1].power_w + 1e-9, "{name}: {w:?}");
            }
        }
    }

    #[test]
    fn model_scaling_factor() {
        let m = model_at(266e6, 0.86);
        let base = PowerModel::default();
        let k = (266e6 / 533e6) * (0.86f64 / 1.05).powi(2);
        assert!((m.gpu_arith_full_w - base.gpu_arith_full_w * k).abs() < 1e-12);
        // CPU/idle/DRAM coefficients untouched.
        assert_eq!(m.board_idle_w, base.board_idle_w);
        assert_eq!(m.cpu_core_w, base.cpu_core_w);
    }

    #[test]
    fn report_renders() {
        let r = report();
        assert!(r.contains("min energy"));
        assert!(r.contains("vecop"));
        assert!(r.contains("nbody"));
    }
}
