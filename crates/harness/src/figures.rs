//! Figure/table generation: paper-vs-measured for Figures 2, 3, 4 and the
//! §V-D summary.

use crate::paper;
use crate::runner::SuiteResults;
use hpc_kernels::{Precision, Variant};
use std::fmt::Write as _;

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:8.2}"),
        None => format!("{:>8}", "-"),
    }
}

/// Figure 2 — speedup over the Serial version.
pub fn fig2(results: &SuiteResults, prec: Precision) -> String {
    let mut out = String::new();
    let sub = if prec == Precision::F32 {
        "(a) single"
    } else {
        "(b) double"
    };
    let _ = writeln!(out, "Figure 2{sub}-precision: speedup over Serial");
    let _ = writeln!(
        out,
        "{:<7} {:>8} {:>17} {:>17} {:>17}",
        "bench", "OpenMP", "OpenCL", "OpenCL-Opt", ""
    );
    let _ = writeln!(
        out,
        "{:<7} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "", "meas", "meas", "paper", "meas", "paper", ""
    );
    for b in paper::BENCH_ORDER {
        let omp = results.speedup(b, Variant::OpenMp, prec);
        let ocl = results.speedup(b, Variant::OpenCl, prec);
        let opt = results.speedup(b, Variant::OpenClOpt, prec);
        let mut line = format!(
            "{b:<7} {} {} {} {} {}",
            fmt_opt(omp),
            fmt_opt(ocl),
            fmt_opt(paper::speedup(b, Variant::OpenCl, prec)),
            fmt_opt(opt),
            fmt_opt(paper::speedup(b, Variant::OpenClOpt, prec)),
        );
        if let Some(skip) = results.skip_reason(b, Variant::OpenCl, prec) {
            let _ = write!(line, "   [{skip}]");
        }
        let _ = writeln!(out, "{line}");
    }
    let omp_avg = results.mean_over_benches(Variant::OpenMp, prec, SuiteResults::speedup);
    let _ = writeln!(
        out,
        "OpenMP avg: measured {omp_avg:.2} | paper {} (band {}..{})",
        paper::OMP_SPEEDUP_AVG,
        paper::OMP_SPEEDUP_BAND.0,
        paper::OMP_SPEEDUP_BAND.1
    );
    out
}

/// Figure 3 — mean board power normalized to Serial.
pub fn fig3(results: &SuiteResults, prec: Precision) -> String {
    let mut out = String::new();
    let sub = if prec == Precision::F32 {
        "(a) single"
    } else {
        "(b) double"
    };
    let _ = writeln!(out, "Figure 3{sub}-precision: power normalized to Serial");
    let _ = writeln!(
        out,
        "{:<7} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "bench", "OpenMP", "OpenCL", "paper", "Opt", ""
    );
    for b in paper::BENCH_ORDER {
        let _ = writeln!(
            out,
            "{b:<7} {} {} {} {}",
            fmt_opt(results.power_ratio(b, Variant::OpenMp, prec)),
            fmt_opt(results.power_ratio(b, Variant::OpenCl, prec)),
            fmt_opt(paper::power_ratio(b, Variant::OpenCl)),
            fmt_opt(results.power_ratio(b, Variant::OpenClOpt, prec)),
        );
    }
    let omp = results.mean_over_benches(Variant::OpenMp, prec, SuiteResults::power_ratio);
    let ocl = results.mean_over_benches(Variant::OpenCl, prec, SuiteResults::power_ratio);
    let _ = writeln!(
        out,
        "averages: OpenMP {omp:.2} (paper {}) | OpenCL {ocl:.2} (paper {})",
        paper::OMP_POWER_AVG,
        paper::OCL_POWER_AVG
    );
    out
}

/// Figure 4 — energy-to-solution normalized to Serial.
pub fn fig4(results: &SuiteResults, prec: Precision) -> String {
    let mut out = String::new();
    let sub = if prec == Precision::F32 {
        "(a) single"
    } else {
        "(b) double"
    };
    let _ = writeln!(
        out,
        "Figure 4{sub}-precision: energy-to-solution normalized to Serial"
    );
    let _ = writeln!(
        out,
        "{:<7} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "bench", "OpenMP", "OpenCL", "paper", "Opt", "paper"
    );
    for b in paper::BENCH_ORDER {
        let _ = writeln!(
            out,
            "{b:<7} {} {} {} {} {}",
            fmt_opt(results.energy_ratio(b, Variant::OpenMp, prec)),
            fmt_opt(results.energy_ratio(b, Variant::OpenCl, prec)),
            fmt_opt(paper::energy_ratio(b, Variant::OpenCl, prec)),
            fmt_opt(results.energy_ratio(b, Variant::OpenClOpt, prec)),
            fmt_opt(paper::energy_ratio(b, Variant::OpenClOpt, prec)),
        );
    }
    let ocl = results.mean_over_benches(Variant::OpenCl, prec, SuiteResults::energy_ratio);
    let opt = results.mean_over_benches(Variant::OpenClOpt, prec, SuiteResults::energy_ratio);
    let (p_ocl, p_opt) = match prec {
        Precision::F32 => paper::ENERGY_AVG_F32,
        Precision::F64 => paper::ENERGY_AVG_F64,
    };
    let _ = writeln!(
        out,
        "averages: OpenCL {ocl:.2} (paper {p_ocl}) | Opt {opt:.2} (paper {p_opt})"
    );
    out
}

/// §V-D summary: headline averages across both precisions.
pub fn summary(results: &SuiteResults) -> String {
    let mut speedups = Vec::new();
    let mut energies = Vec::new();
    for prec in Precision::ALL {
        for b in paper::BENCH_ORDER {
            if let Some(s) = results.speedup(b, Variant::OpenClOpt, prec) {
                speedups.push(s);
            }
            if let Some(e) = results.energy_ratio(b, Variant::OpenClOpt, prec) {
                energies.push(e);
            }
        }
    }
    let s_avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    let e_avg = energies.iter().sum::<f64>() / energies.len() as f64;
    let mut out = String::new();
    let _ = writeln!(out, "Results summary (§V-D):");
    let _ = writeln!(
        out,
        "  OpenCL-Opt speedup over Serial, avg across precisions: measured {s_avg:.1}x | paper {}x",
        paper::HEADLINE_SPEEDUP
    );
    let _ = writeln!(
        out,
        "  OpenCL-Opt energy vs Serial, avg across precisions:    measured {:.0}% | paper {:.0}%",
        e_avg * 100.0,
        paper::HEADLINE_ENERGY * 100.0
    );
    out
}

/// Computed headline numbers, for tests and EXPERIMENTS.md generation.
pub fn headline(results: &SuiteResults) -> (f64, f64) {
    let mut speedups = Vec::new();
    let mut energies = Vec::new();
    for prec in Precision::ALL {
        for b in paper::BENCH_ORDER {
            if let Some(s) = results.speedup(b, Variant::OpenClOpt, prec) {
                speedups.push(s);
            }
            if let Some(e) = results.energy_ratio(b, Variant::OpenClOpt, prec) {
                energies.push(e);
            }
        }
    }
    (
        speedups.iter().sum::<f64>() / speedups.len() as f64,
        energies.iter().sum::<f64>() / energies.len() as f64,
    )
}
