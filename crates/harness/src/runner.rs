//! Suite execution + measurement: runs every benchmark/variant/precision,
//! applies the §IV-D methodology (stretch runs to meter-friendly windows,
//! 20 repetitions on the simulated WT230), and caches the results.
//!
//! Robustness: every cell runs isolated behind `catch_unwind`, transient
//! faults (the deterministic injection of `sim-faults`, or anything that
//! looks like a resource exhaustion) are retried with recorded exponential
//! backoff, and whatever still fails is captured as a structured
//! [`CellError`] row instead of aborting the suite. With a checkpoint path
//! configured, every completed cell is persisted (atomically) so an
//! interrupted sweep can `--resume` without redoing finished work.

use crate::checkpoint;
use hpc_kernels::{Benchmark, Precision, RunOutcome, RunSkip, Variant};
use powersim::{Measurement, PowerModel, Wt230};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use telemetry::{log, Counters};

/// One fully-measured cell (benchmark × variant × precision).
#[derive(Clone, Debug)]
pub struct Cell {
    pub outcome: RunOutcome,
    pub measurement: Measurement,
    /// Back-to-back repetitions inside the measured window (§IV-D: "we
    /// adjusted the number of iterations ... long enough to get an accurate
    /// energy consumption figure").
    pub iterations: u32,
    /// Energy of one run of the workload, joules.
    pub energy_j: f64,
    /// Performance-counter snapshot of the measured region (one iteration;
    /// copied out of `outcome.telemetry` so reports can index it directly).
    pub counters: Counters,
    /// How many attempts the cell took (1 = clean first try; > 1 means
    /// transient faults were retried away).
    pub attempts: u32,
    /// FNV-1a digest of every validated output element (bit patterns, not
    /// values). Two runs of the same cell — across thread counts, execution
    /// engines and optimizer pipelines — must agree on this; the autotuner
    /// and the SSA differential oracle compare it to prove pass legality.
    pub output_digest: u64,
}

/// Failure classification for a cell that produced no result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailKind {
    /// Kernel compilation failed and retries were exhausted.
    Build,
    /// Kernel enqueue/launch failed and retries were exhausted.
    Launch,
    /// The run completed but its output missed the validation tolerance.
    Validation,
    /// The pool worker executing the cell died (injected or genuine).
    WorkerPanic,
    /// The benchmark body panicked.
    Panic,
    /// Never ran: an earlier failure tripped `--fail-fast`.
    Aborted,
    /// A routed cell's backend shard was unreachable or answered with an
    /// error (`harness route` degradation; never produced offline).
    ShardDown,
}

impl FailKind {
    pub fn label(self) -> &'static str {
        match self {
            FailKind::Build => "build",
            FailKind::Launch => "launch",
            FailKind::Validation => "validation",
            FailKind::WorkerPanic => "worker-panic",
            FailKind::Panic => "panic",
            FailKind::Aborted => "aborted",
            FailKind::ShardDown => "shard-down",
        }
    }

    pub fn from_label(s: &str) -> Option<FailKind> {
        Some(match s {
            "build" => FailKind::Build,
            "launch" => FailKind::Launch,
            "validation" => FailKind::Validation,
            "worker-panic" => FailKind::WorkerPanic,
            "panic" => FailKind::Panic,
            "aborted" => FailKind::Aborted,
            "shard-down" => FailKind::ShardDown,
            _ => return None,
        })
    }
}

/// A cell that failed after isolation and retries. Exported as a
/// structured row (CSV `status=fail`, JSONL `"status":"fail"`), never as
/// an abort of the whole suite.
#[derive(Clone, Debug, PartialEq)]
pub struct CellError {
    pub kind: FailKind,
    pub message: String,
    /// Attempts consumed (0 for `Aborted` cells that never started).
    pub attempts: u32,
    /// Total recorded retry backoff, milliseconds. Recorded rather than
    /// slept: wall-clock sleeps would make artifacts depend on scheduling.
    pub backoff_ms: u64,
}

/// The tri-state outcome of one suite cell.
// `Ok(Cell)` dwarfs the other variants, but it is also the overwhelmingly
// common one and the suite holds at most 72 entries — boxing would add an
// indirection to every normal-path access to save bytes nobody misses.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum CellEntry {
    /// Ran and measured.
    Ok(Cell),
    /// Deliberately skipped (the paper's missing bars, e.g. the amcd
    /// double-precision compiler bug).
    Skipped(RunSkip),
    /// Failed after isolation + retries.
    Failed(CellError),
}

impl CellEntry {
    pub fn ok(&self) -> Option<&Cell> {
        match self {
            CellEntry::Ok(c) => Some(c),
            _ => None,
        }
    }

    pub fn skip(&self) -> Option<&RunSkip> {
        match self {
            CellEntry::Skipped(s) => Some(s),
            _ => None,
        }
    }

    pub fn failure(&self) -> Option<&CellError> {
        match self {
            CellEntry::Failed(e) => Some(e),
            _ => None,
        }
    }
}

/// Cell coordinates: (benchmark name, variant, precision bits). This is
/// the in-process index into a sweep's results; the *content address* of a
/// cell (which also pins scale, fault seed, device and simulator version)
/// is [`sim_server::key::CellKey`], built via [`crate::checkpoint::cell_spec`].
pub type CellCoord = (String, Variant, u8);

/// Knobs for [`run_suite_with`].
#[derive(Clone, Debug)]
pub struct SuiteConfig {
    /// Emit per-cell progress lines.
    pub verbose: bool,
    /// Fault plan for chaos runs. `None` (the default) reproduces the
    /// fault-free pipeline bit for bit. Note: worker-panic injection reads
    /// the *installed* plan ([`sim_faults::install`]) because it fires on
    /// pool threads before any cell scope exists — callers wanting that
    /// site active must install the plan as well as passing it here.
    pub faults: Option<sim_faults::FaultPlan>,
    /// Attempts per cell before a transient fault becomes a [`CellError`].
    pub max_attempts: u32,
    /// Base of the recorded exponential backoff (ms): attempt `k` adds
    /// `base << (k-1)`.
    pub backoff_base_ms: u64,
    /// Stop scheduling new cells after the first failure (failures are
    /// still recorded; pending cells become `Aborted` rows). Off by
    /// default: keep-going is what a long unattended sweep wants.
    pub fail_fast: bool,
    /// Checkpoint file: every completed cell is persisted here (atomic
    /// rewrite) so a crashed run can resume.
    pub checkpoint: Option<PathBuf>,
    /// Preload finished cells from `checkpoint` instead of rerunning them.
    pub resume: bool,
    /// Suite identity tag stored in the checkpoint header ("paper" /
    /// "test"); a resume against a checkpoint with a different tag,
    /// benchmark list or fault seed starts fresh.
    pub state_tag: String,
    /// Optimizer pipeline applied to every kernel launched by the sweep.
    /// `None` inherits the ambient setting (`SIM_PASSES` or a caller's
    /// [`kernel_ir::opt::with_passes`] scope) — it does *not* force the
    /// optimizer off. `Some` pins the pipeline for every cell, which is
    /// what the autotuner and the serving layer use so a cell's passes
    /// match its content-address key.
    pub passes: Option<kernel_ir::opt::Pipeline>,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            verbose: false,
            faults: None,
            max_attempts: 3,
            backoff_base_ms: 50,
            fail_fast: false,
            checkpoint: None,
            resume: false,
            state_tag: String::new(),
            passes: None,
        }
    }
}

/// Results of a full sweep.
pub struct SuiteResults {
    pub cells: HashMap<CellCoord, CellEntry>,
    pub bench_names: Vec<String>,
}

pub(crate) fn prec_key(p: Precision) -> u8 {
    match p {
        Precision::F32 => 32,
        Precision::F64 => 64,
    }
}

/// Minimum measured-window length (seconds of simulated time).
const MIN_WINDOW_S: f64 = 2.0;

/// Measure one outcome with the meter methodology.
pub fn measure(outcome: &RunOutcome, model: &PowerModel, seed: u64) -> (Measurement, u32, f64) {
    let iterations = (MIN_WINDOW_S / outcome.time_s.max(1e-9))
        .ceil()
        .clamp(1.0, 1e8) as u32;
    let window = outcome.activity.repeat(iterations);
    let mut meter = Wt230::with_defaults(seed);
    let m = meter.measure(model, &window, 20);
    let energy = m.energy_per_iteration(iterations);
    (m, iterations, energy)
}

// Short-lived per-attempt value; see the size note on `CellEntry`.
#[allow(clippy::large_enum_variant)]
enum AttemptOutcome {
    Done(Cell),
    Skip(RunSkip),
    Invalid(f64),
    Panicked(String),
}

/// One isolated, retried cell.
fn run_cell(
    b: &dyn Benchmark,
    bi: usize,
    v: Variant,
    prec: Precision,
    model: &PowerModel,
    cfg: &SuiteConfig,
) -> CellEntry {
    let scope = format!("{}/{}/{}", b.name(), v.label(), prec.label());
    let mut backoff_ms = 0u64;
    let max_attempts = cfg.max_attempts.max(1);
    for attempt in 1..=max_attempts {
        let body = || {
            // Drain whatever a previous attempt (or unrelated validation on
            // this thread) folded, so the digest covers exactly this attempt.
            let _ = hpc_kernels::take_output_digest();
            match catch_unwind(AssertUnwindSafe(|| b.run(v, prec))) {
                Err(p) => AttemptOutcome::Panicked(sim_pool::panic_message(&p)),
                Ok(Err(skip)) => AttemptOutcome::Skip(skip),
                Ok(Ok(outcome)) => {
                    if !outcome.validated {
                        AttemptOutcome::Invalid(outcome.max_rel_err)
                    } else {
                        let output_digest = hpc_kernels::take_output_digest();
                        let seed = (bi as u64) << 8 | prec_key(prec) as u64;
                        let (m, iters, energy) = measure(&outcome, model, seed);
                        let counters = outcome.telemetry.counters.clone();
                        AttemptOutcome::Done(Cell {
                            outcome,
                            measurement: m,
                            iterations: iters,
                            energy_j: energy,
                            counters,
                            attempts: attempt,
                            output_digest,
                        })
                    }
                }
            }
        };
        // A pinned pipeline scopes the whole attempt (`None` inherits the
        // ambient `SIM_PASSES` setting rather than forcing the optimizer
        // off — the scope is only pushed when the config pins one).
        let body = || match &cfg.passes {
            Some(pl) => kernel_ir::opt::with_passes(Some(pl.clone()), body),
            None => body(),
        };
        // Each attempt gets its own derived plan so a retry re-rolls every
        // fault site (otherwise a deterministic fault would refire forever
        // and "retry" would be a lie).
        let out = match cfg.faults {
            Some(plan) => {
                let p = plan.derive(&format!("{scope}/a{}", attempt - 1));
                sim_faults::with_plan(Some(p), body)
            }
            None => body(),
        };
        match out {
            AttemptOutcome::Done(cell) => return CellEntry::Ok(cell),
            AttemptOutcome::Panicked(message) => {
                // A panic is a bug (or an injected worker death caught one
                // level up), not a transient driver hiccup: no retry.
                return CellEntry::Failed(CellError {
                    kind: FailKind::Panic,
                    message,
                    attempts: attempt,
                    backoff_ms,
                });
            }
            AttemptOutcome::Invalid(err) => {
                // Wrong answers are deterministic in this simulator;
                // retrying would reproduce them.
                return CellEntry::Failed(CellError {
                    kind: FailKind::Validation,
                    message: format!("output validation failed (max rel err {err:.3e})"),
                    attempts: attempt,
                    backoff_ms,
                });
            }
            AttemptOutcome::Skip(skip) => {
                let message = skip.to_string();
                let transient =
                    sim_faults::is_injected(&message) || message.contains("CL_OUT_OF_RESOURCES");
                if !transient {
                    // Genuine, permanent skip (the paper's missing bars).
                    return CellEntry::Skipped(skip);
                }
                if attempt == max_attempts {
                    let kind = match &skip {
                        RunSkip::CompilerBug(_) => FailKind::Build,
                        RunSkip::LaunchFailure(_) => FailKind::Launch,
                    };
                    return CellEntry::Failed(CellError {
                        kind,
                        message,
                        attempts: attempt,
                        backoff_ms,
                    });
                }
                backoff_ms += cfg.backoff_base_ms << (attempt - 1);
                if cfg.verbose {
                    log::progress(&format!(
                        "retry {scope} (attempt {}/{max_attempts}, backoff {backoff_ms} ms): {message}",
                        attempt + 1
                    ));
                }
            }
        }
    }
    unreachable!("the attempt loop always returns")
}

/// Run, retry and measure one isolated cell under the default power
/// model — the serving layer's entry point (offline sweeps go through
/// [`run_suite_with`]). `bench_index` must be the benchmark's index in
/// the *full* suite: the measurement seed derives from it, and a served
/// cell must meter identically to the same cell in an offline sweep.
pub fn run_one(
    b: &dyn Benchmark,
    bench_index: usize,
    v: Variant,
    prec: Precision,
    cfg: &SuiteConfig,
) -> CellEntry {
    run_cell(b, bench_index, v, prec, &PowerModel::default(), cfg)
}

/// Run and measure the whole suite with default (fault-free, keep-going)
/// configuration. Progress goes through the [`telemetry::log`] levels;
/// `verbose = false` keeps a caller (tests, machine-readable subcommands)
/// silent regardless of the global level.
pub fn run_suite(benches: &[Box<dyn Benchmark>], verbose: bool) -> SuiteResults {
    run_suite_with(
        benches,
        &SuiteConfig {
            verbose,
            ..SuiteConfig::default()
        },
    )
}

/// Run and measure the whole suite under an explicit [`SuiteConfig`].
///
/// Cells (benchmark × precision × variant) are independent — each builds
/// fresh pools and device state and meters with a per-cell seed — so they
/// run on the `sim-pool` work-stealing pool. Every per-cell artifact
/// (timing, energy, counters, skip/failure rows) is deterministic in the
/// cell alone — fault rolls included, because the plan is a pure function
/// of (seed, scope, site, sequence) — so results are identical for any
/// `SIM_THREADS`; only the order of progress log lines varies. The one
/// documented exception is `fail_fast`, whose set of `Aborted` cells
/// depends on completion order.
pub fn run_suite_with(benches: &[Box<dyn Benchmark>], cfg: &SuiteConfig) -> SuiteResults {
    let model = PowerModel::default();
    let names: Vec<String> = benches.iter().map(|b| b.name().to_string()).collect();
    let mut jobs = Vec::new();
    for bi in 0..benches.len() {
        for prec in Precision::ALL {
            for v in Variant::ALL {
                jobs.push((bi, prec, v));
            }
        }
    }

    let header = checkpoint::StateHeader {
        tag: cfg.state_tag.clone(),
        fault_seed: cfg.faults.map(|p| p.seed()),
        passes: cfg.passes.as_ref().map(|p| p.to_string()),
        benches: names.clone(),
    };
    let preloaded: HashMap<CellCoord, CellEntry> = match &cfg.checkpoint {
        Some(path) if cfg.resume => match checkpoint::load(path) {
            Some((h, entries)) if h == header => {
                if cfg.verbose {
                    log::progress(&format!(
                        "resuming: {} finished cells loaded from {}",
                        entries.len(),
                        path.display()
                    ));
                }
                entries
            }
            Some(_) => {
                log::progress(&format!(
                    "checkpoint {} belongs to a different suite configuration; starting fresh",
                    path.display()
                ));
                HashMap::new()
            }
            None => HashMap::new(),
        },
        _ => HashMap::new(),
    };

    let done: Mutex<HashMap<CellCoord, CellEntry>> = Mutex::new(preloaded.clone());
    let abort = AtomicBool::new(false);

    // Every job is scheduled even when its cell is preloaded: keeping job
    // indices stable keeps the worker-panic fault rolls (keyed by index)
    // identical between the original and the resumed run.
    let raw = sim_pool::try_parallel_map(jobs.len(), |j| {
        let (bi, prec, v) = jobs[j];
        let key: CellCoord = (names[bi].clone(), v, prec_key(prec));
        if let Some(e) = preloaded.get(&key) {
            return e.clone();
        }
        if cfg.fail_fast && abort.load(Ordering::Relaxed) {
            return CellEntry::Failed(CellError {
                kind: FailKind::Aborted,
                message: "not run: an earlier cell failed (--fail-fast)".into(),
                attempts: 0,
                backoff_ms: 0,
            });
        }
        if cfg.verbose {
            log::progress(&format!(
                "[{}/{}] {} {} {}",
                bi + 1,
                benches.len(),
                names[bi],
                v.label(),
                prec.label()
            ));
        }
        let entry = run_cell(benches[bi].as_ref(), bi, v, prec, &model, cfg);
        if cfg.fail_fast && matches!(entry, CellEntry::Failed(_)) {
            abort.store(true, Ordering::Relaxed);
        }
        if let Some(path) = &cfg.checkpoint {
            let mut d = done.lock().unwrap_or_else(|e| e.into_inner());
            d.insert(key, entry.clone());
            if let Err(e) = checkpoint::save(path, &header, &d) {
                log::progress(&format!(
                    "warning: failed to checkpoint to {}: {e}",
                    path.display()
                ));
            }
        }
        entry
    });

    let mut cells = HashMap::new();
    for ((bi, prec, v), res) in jobs.into_iter().zip(raw) {
        let entry = match res {
            Ok(e) => e,
            Err(tp) => CellEntry::Failed(CellError {
                kind: FailKind::WorkerPanic,
                message: tp.message,
                attempts: 1,
                backoff_ms: 0,
            }),
        };
        cells.insert((names[bi].clone(), v, prec_key(prec)), entry);
    }
    SuiteResults {
        cells,
        bench_names: names,
    }
}

impl SuiteResults {
    pub fn entry(&self, bench: &str, v: Variant, prec: Precision) -> Option<&CellEntry> {
        self.cells.get(&(bench.to_string(), v, prec_key(prec)))
    }

    pub fn cell(&self, bench: &str, v: Variant, prec: Precision) -> Option<&Cell> {
        self.entry(bench, v, prec).and_then(CellEntry::ok)
    }

    pub fn skip_reason(&self, bench: &str, v: Variant, prec: Precision) -> Option<&RunSkip> {
        self.entry(bench, v, prec).and_then(CellEntry::skip)
    }

    pub fn failure(&self, bench: &str, v: Variant, prec: Precision) -> Option<&CellError> {
        self.entry(bench, v, prec).and_then(CellEntry::failure)
    }

    /// All failed cells, sorted by coordinates (deterministic for
    /// reporting and exit-code decisions).
    pub fn failed_cells(&self) -> Vec<(&CellCoord, &CellError)> {
        let mut out: Vec<_> = self
            .cells
            .iter()
            .filter_map(|(k, e)| e.failure().map(|f| (k, f)))
            .collect();
        out.sort_by_key(|(k, _)| {
            (
                k.0.clone(),
                Variant::ALL.iter().position(|v| *v == k.1),
                k.2,
            )
        });
        out
    }

    /// (ok, skipped, failed) cell counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for e in self.cells.values() {
            match e {
                CellEntry::Ok(_) => c.0 += 1,
                CellEntry::Skipped(_) => c.1 += 1,
                CellEntry::Failed(_) => c.2 += 1,
            }
        }
        c
    }

    /// Speedup over Serial (same precision).
    pub fn speedup(&self, bench: &str, v: Variant, prec: Precision) -> Option<f64> {
        let serial = self.cell(bench, Variant::Serial, prec)?;
        let cell = self.cell(bench, v, prec)?;
        Some(serial.outcome.time_s / cell.outcome.time_s)
    }

    /// Measured mean power normalized to Serial.
    pub fn power_ratio(&self, bench: &str, v: Variant, prec: Precision) -> Option<f64> {
        let serial = self.cell(bench, Variant::Serial, prec)?;
        let cell = self.cell(bench, v, prec)?;
        Some(cell.measurement.mean_power_w / serial.measurement.mean_power_w)
    }

    /// Energy-to-solution normalized to Serial.
    pub fn energy_ratio(&self, bench: &str, v: Variant, prec: Precision) -> Option<f64> {
        let serial = self.cell(bench, Variant::Serial, prec)?;
        let cell = self.cell(bench, v, prec)?;
        Some(cell.energy_j / serial.energy_j)
    }

    /// Mean over benchmarks of a per-cell metric (skipping missing cells).
    pub fn mean_over_benches(
        &self,
        v: Variant,
        prec: Precision,
        f: impl Fn(&Self, &str, Variant, Precision) -> Option<f64>,
    ) -> f64 {
        let vals: Vec<f64> = self
            .bench_names
            .iter()
            .filter_map(|b| f(self, b, v, prec))
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powersim::Activity;

    fn fake_outcome(t: f64) -> RunOutcome {
        RunOutcome {
            time_s: t,
            activity: Activity {
                duration_s: t,
                cpu_busy_s: [t, 0.0],
                ..Default::default()
            },
            validated: true,
            max_rel_err: 0.0,
            note: None,
            telemetry: Default::default(),
        }
    }

    #[test]
    fn measure_stretches_short_runs() {
        let model = PowerModel::default();
        let (m, iters, energy) = measure(&fake_outcome(1e-3), &model, 1);
        assert!(iters >= 2000);
        assert!(m.duration_s >= 2.0);
        // Energy per iteration ≈ P × 1 ms.
        let p = model.average_power(&fake_outcome(1e-3).activity);
        assert!((energy - p * 1e-3).abs() / (p * 1e-3) < 0.01);
    }

    #[test]
    fn measure_long_runs_once() {
        let model = PowerModel::default();
        let (_, iters, _) = measure(&fake_outcome(5.0), &model, 1);
        assert_eq!(iters, 1);
    }

    #[test]
    fn fail_kind_labels_round_trip() {
        for k in [
            FailKind::Build,
            FailKind::Launch,
            FailKind::Validation,
            FailKind::WorkerPanic,
            FailKind::Panic,
            FailKind::Aborted,
            FailKind::ShardDown,
        ] {
            assert_eq!(FailKind::from_label(k.label()), Some(k));
        }
        assert_eq!(FailKind::from_label("nope"), None);
    }

    /// A panicking benchmark becomes a Failed row, not a suite abort, and
    /// clean cells still measure.
    #[test]
    fn panicking_benchmark_is_isolated() {
        struct Bomb;
        impl Benchmark for Bomb {
            fn name(&self) -> &'static str {
                "bomb"
            }
            fn description(&self) -> &'static str {
                "test fixture"
            }
            fn run(&self, v: Variant, _p: Precision) -> Result<RunOutcome, RunSkip> {
                if v == Variant::OpenMp {
                    panic!("synthetic benchmark bug");
                }
                Ok(fake_outcome(1e-3))
            }
        }
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let benches: Vec<Box<dyn Benchmark>> = vec![Box::new(Bomb)];
        let r = run_suite(&benches, false);
        std::panic::set_hook(prev);
        let (ok, skipped, failed) = r.counts();
        assert_eq!((ok, skipped, failed), (6, 0, 2));
        let f = r.failure("bomb", Variant::OpenMp, Precision::F32).unwrap();
        assert_eq!(f.kind, FailKind::Panic);
        assert!(f.message.contains("synthetic benchmark bug"));
        assert_eq!(f.attempts, 1);
        let c = r.cell("bomb", Variant::Serial, Precision::F32).unwrap();
        assert_eq!(c.attempts, 1);
    }

    /// An invalid result is a Validation failure row (the old harness
    /// asserted and killed the whole process here).
    #[test]
    fn invalid_output_is_a_validation_failure() {
        struct Wrong;
        impl Benchmark for Wrong {
            fn name(&self) -> &'static str {
                "wrong"
            }
            fn description(&self) -> &'static str {
                "test fixture"
            }
            fn run(&self, _v: Variant, _p: Precision) -> Result<RunOutcome, RunSkip> {
                let mut o = fake_outcome(1e-3);
                o.validated = false;
                o.max_rel_err = 0.5;
                Ok(o)
            }
        }
        let benches: Vec<Box<dyn Benchmark>> = vec![Box::new(Wrong)];
        let r = run_suite(&benches, false);
        let (ok, skipped, failed) = r.counts();
        assert_eq!((ok, skipped, failed), (0, 0, 8));
        let f = r.failure("wrong", Variant::Serial, Precision::F64).unwrap();
        assert_eq!(f.kind, FailKind::Validation);
        assert!(f.message.contains("validation"));
    }

    /// Injected (tagged) skips are retried with recorded backoff; a cell
    /// that keeps faulting becomes a Failed row with the attempt count.
    #[test]
    fn injected_faults_retry_then_fail() {
        use std::sync::atomic::AtomicU32;
        struct Flaky {
            calls: AtomicU32,
        }
        impl Benchmark for Flaky {
            fn name(&self) -> &'static str {
                "flaky"
            }
            fn description(&self) -> &'static str {
                "test fixture"
            }
            fn run(&self, v: Variant, p: Precision) -> Result<RunOutcome, RunSkip> {
                // One designated cell fails twice then succeeds; another
                // fails forever.
                if v == Variant::OpenCl && p == Precision::F32 {
                    let n = self.calls.fetch_add(1, Ordering::Relaxed);
                    if n < 2 {
                        return Err(RunSkip::CompilerBug(format!(
                            "{} synthetic transient",
                            sim_faults::TAG
                        )));
                    }
                } else if v == Variant::OpenClOpt && p == Precision::F32 {
                    return Err(RunSkip::LaunchFailure(format!(
                        "{} permanent chaos",
                        sim_faults::TAG
                    )));
                }
                Ok(fake_outcome(1e-3))
            }
        }
        let benches: Vec<Box<dyn Benchmark>> = vec![Box::new(Flaky {
            calls: AtomicU32::new(0),
        })];
        // Retries only engage when a fault plan is configured.
        let cfg = SuiteConfig {
            faults: Some(sim_faults::FaultPlan::new(1).with_rates(sim_faults::FaultRates::zero())),
            ..SuiteConfig::default()
        };
        let r = run_suite_with(&benches, &cfg);
        let healed = r.cell("flaky", Variant::OpenCl, Precision::F32).unwrap();
        assert_eq!(healed.attempts, 3);
        let f = r
            .failure("flaky", Variant::OpenClOpt, Precision::F32)
            .unwrap();
        assert_eq!(f.kind, FailKind::Launch);
        assert_eq!(f.attempts, 3);
        // 50 + 100 recorded backoff for two retries.
        assert_eq!(f.backoff_ms, 150);
        assert!(sim_faults::is_injected(&f.message));
    }

    /// Untagged skips are permanent: no retry, exported as Skipped.
    #[test]
    fn genuine_skips_are_not_retried() {
        use std::sync::atomic::AtomicU32;
        use std::sync::Arc;
        struct Legit {
            calls: Arc<AtomicU32>,
        }
        impl Benchmark for Legit {
            fn name(&self) -> &'static str {
                "legit"
            }
            fn description(&self) -> &'static str {
                "test fixture"
            }
            fn run(&self, _v: Variant, _p: Precision) -> Result<RunOutcome, RunSkip> {
                self.calls.fetch_add(1, Ordering::Relaxed);
                Err(RunSkip::CompilerBug("CL_BUILD_PROGRAM_FAILURE".into()))
            }
        }
        let calls = Arc::new(AtomicU32::new(0));
        let benches: Vec<Box<dyn Benchmark>> = vec![Box::new(Legit {
            calls: calls.clone(),
        })];
        let r = run_suite(&benches, false);
        let (ok, skipped, failed) = r.counts();
        assert_eq!((ok, skipped, failed), (0, 8, 0));
        // 8 cells, one call each: no retries burned on permanent skips.
        assert_eq!(calls.load(Ordering::Relaxed), 8);
        assert!(r
            .skip_reason("legit", Variant::Serial, Precision::F32)
            .is_some());
    }
}
