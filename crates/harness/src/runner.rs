//! Suite execution + measurement: runs every benchmark/variant/precision,
//! applies the §IV-D methodology (stretch runs to meter-friendly windows,
//! 20 repetitions on the simulated WT230), and caches the results.

use hpc_kernels::{Benchmark, Precision, RunOutcome, RunSkip, Variant};
use powersim::{Measurement, PowerModel, Wt230};
use std::collections::HashMap;
use telemetry::{log, Counters};

/// One fully-measured cell (benchmark × variant × precision).
#[derive(Clone, Debug)]
pub struct Cell {
    pub outcome: RunOutcome,
    pub measurement: Measurement,
    /// Back-to-back repetitions inside the measured window (§IV-D: "we
    /// adjusted the number of iterations ... long enough to get an accurate
    /// energy consumption figure").
    pub iterations: u32,
    /// Energy of one run of the workload, joules.
    pub energy_j: f64,
    /// Performance-counter snapshot of the measured region (one iteration;
    /// copied out of `outcome.telemetry` so reports can index it directly).
    pub counters: Counters,
}

/// Results of a full sweep.
pub struct SuiteResults {
    pub cells: HashMap<(String, Variant, u8), Result<Cell, RunSkip>>,
    pub bench_names: Vec<String>,
}

fn prec_key(p: Precision) -> u8 {
    match p {
        Precision::F32 => 32,
        Precision::F64 => 64,
    }
}

/// Minimum measured-window length (seconds of simulated time).
const MIN_WINDOW_S: f64 = 2.0;

/// Measure one outcome with the meter methodology.
pub fn measure(outcome: &RunOutcome, model: &PowerModel, seed: u64) -> (Measurement, u32, f64) {
    let iterations = (MIN_WINDOW_S / outcome.time_s.max(1e-9))
        .ceil()
        .clamp(1.0, 1e8) as u32;
    let window = outcome.activity.repeat(iterations);
    let mut meter = Wt230::with_defaults(seed);
    let m = meter.measure(model, &window, 20);
    let energy = m.energy_per_iteration(iterations);
    (m, iterations, energy)
}

/// Run and measure the whole suite. Progress goes through the
/// [`telemetry::log`] levels; `verbose = false` keeps a caller (tests,
/// machine-readable subcommands) silent regardless of the global level.
///
/// Cells (benchmark × precision × variant) are independent — each builds
/// fresh pools and device state and meters with a per-cell seed — so they
/// run on the `sim-pool` work-stealing pool. Every per-cell artifact
/// (timing, energy, counters, skip reasons) is deterministic in the cell
/// alone, so results are identical for any `SIM_THREADS`; only the order of
/// progress log lines varies.
pub fn run_suite(benches: &[Box<dyn Benchmark>], verbose: bool) -> SuiteResults {
    let model = PowerModel::default();
    let names: Vec<String> = benches.iter().map(|b| b.name().to_string()).collect();
    let mut jobs = Vec::new();
    for bi in 0..benches.len() {
        for prec in Precision::ALL {
            for v in Variant::ALL {
                jobs.push((bi, prec, v));
            }
        }
    }
    let results = sim_pool::parallel_map(jobs.len(), |j| {
        let (bi, prec, v) = jobs[j];
        let b = &benches[bi];
        if verbose {
            log::progress(&format!(
                "[{}/{}] {} {} {}",
                bi + 1,
                benches.len(),
                b.name(),
                v.label(),
                prec.label()
            ));
        }
        match b.run(v, prec) {
            Ok(outcome) => {
                assert!(
                    outcome.validated,
                    "{} {} {} failed output validation (max rel err {:.3e})",
                    b.name(),
                    v.label(),
                    prec.label(),
                    outcome.max_rel_err
                );
                let seed = (bi as u64) << 8 | prec_key(prec) as u64;
                let (m, iters, energy) = measure(&outcome, &model, seed);
                let counters = outcome.telemetry.counters.clone();
                Ok(Cell {
                    outcome,
                    measurement: m,
                    iterations: iters,
                    energy_j: energy,
                    counters,
                })
            }
            Err(skip) => Err(skip),
        }
    });
    let mut cells = HashMap::new();
    for ((bi, prec, v), entry) in jobs.into_iter().zip(results) {
        cells.insert((names[bi].clone(), v, prec_key(prec)), entry);
    }
    SuiteResults {
        cells,
        bench_names: names,
    }
}

impl SuiteResults {
    pub fn cell(&self, bench: &str, v: Variant, prec: Precision) -> Option<&Cell> {
        self.cells
            .get(&(bench.to_string(), v, prec_key(prec)))
            .and_then(|r| r.as_ref().ok())
    }

    pub fn skip_reason(&self, bench: &str, v: Variant, prec: Precision) -> Option<&RunSkip> {
        self.cells
            .get(&(bench.to_string(), v, prec_key(prec)))
            .and_then(|r| r.as_ref().err())
    }

    /// Speedup over Serial (same precision).
    pub fn speedup(&self, bench: &str, v: Variant, prec: Precision) -> Option<f64> {
        let serial = self.cell(bench, Variant::Serial, prec)?;
        let cell = self.cell(bench, v, prec)?;
        Some(serial.outcome.time_s / cell.outcome.time_s)
    }

    /// Measured mean power normalized to Serial.
    pub fn power_ratio(&self, bench: &str, v: Variant, prec: Precision) -> Option<f64> {
        let serial = self.cell(bench, Variant::Serial, prec)?;
        let cell = self.cell(bench, v, prec)?;
        Some(cell.measurement.mean_power_w / serial.measurement.mean_power_w)
    }

    /// Energy-to-solution normalized to Serial.
    pub fn energy_ratio(&self, bench: &str, v: Variant, prec: Precision) -> Option<f64> {
        let serial = self.cell(bench, Variant::Serial, prec)?;
        let cell = self.cell(bench, v, prec)?;
        Some(cell.energy_j / serial.energy_j)
    }

    /// Mean over benchmarks of a per-cell metric (skipping missing cells).
    pub fn mean_over_benches(
        &self,
        v: Variant,
        prec: Precision,
        f: impl Fn(&Self, &str, Variant, Precision) -> Option<f64>,
    ) -> f64 {
        let vals: Vec<f64> = self
            .bench_names
            .iter()
            .filter_map(|b| f(self, b, v, prec))
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powersim::Activity;

    fn fake_outcome(t: f64) -> RunOutcome {
        RunOutcome {
            time_s: t,
            activity: Activity {
                duration_s: t,
                cpu_busy_s: [t, 0.0],
                ..Default::default()
            },
            validated: true,
            max_rel_err: 0.0,
            note: None,
            telemetry: Default::default(),
        }
    }

    #[test]
    fn measure_stretches_short_runs() {
        let model = PowerModel::default();
        let (m, iters, energy) = measure(&fake_outcome(1e-3), &model, 1);
        assert!(iters >= 2000);
        assert!(m.duration_s >= 2.0);
        // Energy per iteration ≈ P × 1 ms.
        let p = model.average_power(&fake_outcome(1e-3).activity);
        assert!((energy - p * 1e-3).abs() / (p * 1e-3) < 0.01);
    }

    #[test]
    fn measure_long_runs_once() {
        let model = PowerModel::default();
        let (_, iters, _) = measure(&fake_outcome(5.0), &model, 1);
        assert_eq!(iters, 1);
    }
}
