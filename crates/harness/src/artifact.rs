//! Crash-safe artifact writes.
//!
//! Every file the harness emits (CSV, JSONL, traces, `BENCH_sim.json`,
//! the `suite.state` checkpoint) goes through [`atomic_write`]: the
//! content lands in a temporary sibling first and is renamed into place,
//! so a crash — injected or genuine — mid-write never leaves a truncated
//! artifact behind. `rename(2)` within one directory is atomic on every
//! platform the simulator targets.

use std::io;
use std::path::Path;

/// Write `content` to `path` atomically (temp file + rename). The
/// temporary name embeds the process id so concurrent harness processes
/// sharing an output directory never clobber each other's staging files.
pub fn atomic_write(path: &Path, content: &[u8]) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp_name = format!(
        ".{}.tmp.{}",
        file_name.to_string_lossy(),
        std::process::id()
    );
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    std::fs::write(&tmp, content)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            // Leave no droppings when the rename itself fails.
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("harness-artifact-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn writes_and_replaces() {
        let d = tmp_dir("basic");
        let p = d.join("out.txt");
        atomic_write(&p, b"one").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"one");
        atomic_write(&p, b"two").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"two");
        // No staging files left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&d)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn missing_file_name_is_an_error() {
        assert!(atomic_write(Path::new("/"), b"x").is_err());
    }
}
