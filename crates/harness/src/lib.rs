//! # harness — figure regeneration for the reproduction
//!
//! Runs the nine-benchmark suite on the simulated Exynos 5250 (Serial /
//! OpenMP on `cpu-sim`, OpenCL / OpenCL-Opt on `mali-gpu` via
//! `ocl-runtime`), measures power/energy with the simulated Yokogawa WT230
//! per the paper's §IV-D methodology, and prints paper-vs-measured tables
//! for every figure. Also hosts the serving layer (`harness serve` /
//! `harness submit`, see [`serve`]) that exposes sweeps over HTTP with a
//! content-addressed result cache. See the `harness` binary for the CLI.

pub mod ablation;
pub mod artifact;
pub mod autotune;
pub mod bench_self;
pub mod checkpoint;
pub mod dvfs;
pub mod export;
pub mod figures;
pub mod hetero;
pub mod paper;
pub mod profile;
pub mod roofline;
pub mod route;
pub mod runner;
pub mod serve;
pub mod trace;

pub use artifact::atomic_write;
pub use autotune::{AutotuneConfig, AutotuneReport};
pub use checkpoint::{cell_spec, coord_spec, decode_entry, encode_entry};
pub use export::{jsonl_row, parse_csv, to_csv, to_jsonl};
pub use figures::{fig2, fig3, fig4, headline, summary};
pub use route::RouteConfig;
pub use runner::{
    measure, run_one, run_suite, run_suite_with, Cell, CellCoord, CellEntry, CellError, FailKind,
    SuiteConfig, SuiteResults,
};
pub use serve::{ServeConfig, SubmitConfig};
pub use trace::write_traces;
