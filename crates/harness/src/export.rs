//! CSV export of suite results, for external plotting of the figures.
//!
//! One row per (benchmark, version, precision) cell with the raw measured
//! quantities plus the serial-normalized ratios the paper's figures plot.
//! Skipped cells (the amcd double-precision driver bug) export with a
//! `skip_reason` and empty numeric fields, and failed cells (chaos runs,
//! genuine bugs) export with `status=fail` plus the structured failure
//! columns — so a plotting script sees the missing bars explicitly and a
//! chaos sweep never silently loses a cell.

use crate::runner::{CellEntry, SuiteResults};
use hpc_kernels::{Precision, Variant};
use std::fmt::Write as _;

/// CSV header, stable across releases (append-only policy).
pub const HEADER: &str = "bench,version,precision,time_s,power_w,power_sigma_w,\
energy_j,iterations,speedup,power_ratio,energy_ratio,note,skip_reason,\
status,fail_kind,fail_detail,attempts";

fn esc(s: &str) -> String {
    // RFC 4180: a field containing separators, quotes OR line breaks must
    // be quoted (embedded quotes doubled). Newlines used to slip through
    // unquoted and broke the row structure of the file.
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Minimal RFC 4180 parser for the round-trip test and downstream tools:
/// splits `csv` into records of fields, honouring quoted fields that
/// contain commas, doubled quotes and embedded line breaks.
pub fn parse_csv(csv: &str) -> Vec<Vec<String>> {
    let mut records = Vec::new();
    let mut record = Vec::new();
    let mut field = String::new();
    let mut quoted = false;
    let mut chars = csv.chars().peekable();
    while let Some(c) = chars.next() {
        if quoted {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    field.push('"');
                }
                '"' => quoted = false,
                c => field.push(c),
            }
        } else {
            match c {
                '"' => quoted = true,
                ',' => record.push(std::mem::take(&mut field)),
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                '\r' => {}
                c => field.push(c),
            }
        }
    }
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    records
}

/// Render the whole sweep as CSV.
pub fn to_csv(results: &SuiteResults) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{HEADER}");
    for bench in &results.bench_names {
        for prec in Precision::ALL {
            for v in Variant::ALL {
                match results.entry(bench, v, prec) {
                    Some(CellEntry::Ok(cell)) => {
                        let _ = writeln!(
                            out,
                            "{bench},{},{},{:.6e},{:.4},{:.6},{:.6e},{},{},{},{},{},,ok,,,{}",
                            v.label().replace(' ', "-"),
                            prec.label(),
                            cell.outcome.time_s,
                            cell.measurement.mean_power_w,
                            cell.measurement.std_power_w,
                            cell.energy_j,
                            cell.iterations,
                            fmt_ratio(results.speedup(bench, v, prec)),
                            fmt_ratio(results.power_ratio(bench, v, prec)),
                            fmt_ratio(results.energy_ratio(bench, v, prec)),
                            esc(cell.outcome.note.as_deref().unwrap_or("")),
                            cell.attempts,
                        );
                    }
                    Some(CellEntry::Skipped(reason)) => {
                        let _ = writeln!(
                            out,
                            "{bench},{},{},,,,,,,,,,{},skip,,,",
                            v.label().replace(' ', "-"),
                            prec.label(),
                            esc(&reason.to_string()),
                        );
                    }
                    Some(CellEntry::Failed(err)) => {
                        let _ = writeln!(
                            out,
                            "{bench},{},{},,,,,,,,,,,fail,{},{},{}",
                            v.label().replace(' ', "-"),
                            prec.label(),
                            err.kind.label(),
                            esc(&err.message),
                            err.attempts,
                        );
                    }
                    None => {
                        let _ = writeln!(
                            out,
                            "{bench},{},{},,,,,,,,,,,,,,",
                            v.label().replace(' ', "-"),
                            prec.label(),
                        );
                    }
                }
            }
        }
    }
    out
}

fn fmt_ratio(r: Option<f64>) -> String {
    r.map(|x| format!("{x:.4}")).unwrap_or_default()
}

// ---- JSONL metrics artifact ----
//
// One JSON object per cell, one line each. Schema is append-only like the
// CSV header: existing keys never change meaning, new keys only get added
// (documented in DESIGN.md §Observability).

fn jnum(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

fn jstr(s: &str) -> String {
    format!("\"{}\"", telemetry::json_escape(s))
}

fn jopt(r: Option<f64>) -> String {
    r.map(jnum).unwrap_or_else(|| "null".into())
}

/// Render the sweep as JSON Lines, one object per cell (skips included
/// with `"skip_reason"` set and the numeric fields null).
pub fn to_jsonl(results: &SuiteResults) -> String {
    let mut out = String::new();
    for bench in &results.bench_names {
        for prec in Precision::ALL {
            for v in Variant::ALL {
                let _ = writeln!(out, "{}", jsonl_row(results, bench, v, prec));
            }
        }
    }
    out
}

/// Render one cell of the sweep as a single JSONL object (no trailing
/// newline). Shared between [`to_jsonl`] and the serving layer's
/// `POST /v1/sweep` response, which is what makes a served sweep
/// byte-identical to the offline artifact: both go through this exact
/// formatter, and the ratio columns come from the same [`SuiteResults`]
/// accessors.
pub fn jsonl_row(results: &SuiteResults, bench: &str, v: Variant, prec: Precision) -> String {
    let mut obj = vec![
        ("bench".into(), jstr(bench)),
        ("version".into(), jstr(&v.label().replace(' ', "-"))),
        ("precision".into(), jstr(prec.label())),
    ];
    match results.entry(bench, v, prec) {
        Some(CellEntry::Ok(cell)) => {
            let c = &cell.counters;
            obj.extend([
                ("status".into(), jstr("ok")),
                ("attempts".into(), format!("{}", cell.attempts)),
                ("time_s".into(), jnum(cell.outcome.time_s)),
                ("power_w".into(), jnum(cell.measurement.mean_power_w)),
                ("power_sigma_w".into(), jnum(cell.measurement.std_power_w)),
                ("energy_j".into(), jnum(cell.energy_j)),
                ("iterations".into(), format!("{}", cell.iterations)),
                ("speedup".into(), jopt(results.speedup(bench, v, prec))),
                (
                    "power_ratio".into(),
                    jopt(results.power_ratio(bench, v, prec)),
                ),
                (
                    "energy_ratio".into(),
                    jopt(results.energy_ratio(bench, v, prec)),
                ),
                (
                    "note".into(),
                    cell.outcome
                        .note
                        .as_deref()
                        .map(jstr)
                        .unwrap_or_else(|| "null".into()),
                ),
                (
                    "output_digest".into(),
                    jstr(&format!("{:016x}", cell.output_digest)),
                ),
                ("flops".into(), jnum(c.flops)),
                ("int_ops".into(), jnum(c.int_ops)),
                ("special_ops".into(), jnum(c.special_ops)),
                ("total_ops".into(), format!("{}", c.total_ops())),
                ("avg_vector_width".into(), jnum(c.avg_vector_width())),
                ("loads".into(), format!("{}", c.loads)),
                ("stores".into(), format!("{}", c.stores)),
                ("atomics".into(), format!("{}", c.atomics)),
                ("bytes_read".into(), format!("{}", c.bytes_read)),
                ("bytes_written".into(), format!("{}", c.bytes_written)),
                ("l1_hit_rate".into(), jnum(c.l1_hit_rate())),
                ("l2_hit_rate".into(), jnum(c.l2_hit_rate())),
                ("dram_lines".into(), format!("{}", c.dram_lines)),
                (
                    "dram_stream_fraction".into(),
                    jnum(c.dram_stream_fraction()),
                ),
                ("occupancy".into(), jnum(c.occupancy())),
                (
                    "registers_per_thread".into(),
                    format!("{}", c.registers_per_thread),
                ),
                (
                    "arithmetic_intensity".into(),
                    jnum(c.arithmetic_intensity()),
                ),
            ]);
        }
        Some(CellEntry::Skipped(reason)) => {
            obj.push(("status".into(), jstr("skip")));
            obj.push(("skip_reason".into(), jstr(&reason.to_string())));
        }
        Some(CellEntry::Failed(err)) => {
            obj.extend([
                ("status".into(), jstr("fail")),
                ("fail_kind".into(), jstr(err.kind.label())),
                ("fail_detail".into(), jstr(&err.message)),
                ("attempts".into(), format!("{}", err.attempts)),
                ("backoff_ms".into(), format!("{}", err.backoff_ms)),
            ]);
        }
        None => {}
    }
    let fields: Vec<String> = obj
        .iter()
        .map(|(k, v): &(String, String)| format!("{}:{v}", jstr(k)))
        .collect();
    format!("{{{}}}", fields.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_suite;

    #[test]
    fn csv_covers_every_cell_and_marks_skips() {
        let results = run_suite(&hpc_kernels::test_suite(), false);
        let csv = to_csv(&results);
        let lines: Vec<&str> = csv.lines().collect();
        // header + 9 benches x 4 versions x 2 precisions
        assert_eq!(lines.len(), 1 + 9 * 4 * 2);
        assert_eq!(lines[0], HEADER);
        // Every record parses to the full column count.
        let cols = HEADER.split(',').count();
        let records = parse_csv(&csv);
        assert_eq!(records.len(), lines.len());
        for r in &records {
            assert_eq!(r.len(), cols, "bad record: {r:?}");
        }
        // JSONL artifact: one object line per cell, same coverage.
        let jsonl = to_jsonl(&results);
        let jlines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(jlines.len(), 9 * 4 * 2);
        for l in &jlines {
            assert!(l.starts_with("{\"bench\":\"") && l.ends_with('}'), "{l}");
        }
        assert!(jlines.iter().any(|l| l.contains("\"occupancy\":")));
        assert!(jlines
            .iter()
            .any(|l| l.contains("\"skip_reason\":\"compiler bug")));
        // The amcd f64 GPU rows carry a skip reason and no numbers.
        let amcd_skips: Vec<&&str> = lines
            .iter()
            .filter(|l| l.starts_with("amcd,OpenCL") && l.contains("double"))
            .collect();
        assert_eq!(amcd_skips.len(), 2);
        for l in amcd_skips {
            assert!(l.contains("compiler bug"), "{l}");
            assert!(l.contains(",skip,"), "{l}");
        }
        // Every row carries a status column; clean cells say ok with one
        // attempt.
        for r in records.iter().skip(1) {
            assert!(matches!(r[13].as_str(), "ok" | "skip" | "fail"), "{r:?}");
            if r[13] == "ok" {
                assert_eq!(r[16], "1", "{r:?}");
            }
        }
        assert!(jsonl.contains("\"status\":\"ok\""));
        assert!(jsonl.contains("\"status\":\"skip\""));
        // Serial rows have speedup 1.
        assert!(lines
            .iter()
            .any(|l| l.starts_with("vecop,Serial,single") && l.contains(",1.0000,")));
    }

    #[test]
    fn escaping() {
        assert_eq!(esc("plain"), "plain");
        assert_eq!(esc("a,b"), "\"a,b\"");
        assert_eq!(esc("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(esc("line\nbreak"), "\"line\nbreak\"");
        assert_eq!(esc("cr\rhere"), "\"cr\rhere\"");
    }

    #[test]
    fn csv_round_trips_hostile_fields() {
        let fields = [
            "plain",
            "with,comma",
            "with \"quotes\"",
            "multi\nline,\"note\"",
            "",
            "trailing\r",
        ];
        let row = fields.map(esc).join(",");
        let parsed = parse_csv(&format!("{row}\nnext,line\n"));
        assert_eq!(parsed.len(), 2);
        for (got, want) in parsed[0].iter().zip(fields) {
            // CRs are record noise in RFC 4180 unquoted context; inside
            // quotes they survive.
            assert_eq!(got, want, "round-trip mismatch");
        }
        assert_eq!(parsed[1], vec!["next", "line"]);
    }
}
