//! CSV export of suite results, for external plotting of the figures.
//!
//! One row per (benchmark, version, precision) cell with the raw measured
//! quantities plus the serial-normalized ratios the paper's figures plot.
//! Skipped cells (the amcd double-precision driver bug) export with a
//! `skip_reason` and empty numeric fields, so a plotting script sees the
//! missing bars explicitly.

use crate::runner::SuiteResults;
use hpc_kernels::{Precision, Variant};
use std::fmt::Write as _;

/// CSV header, stable across releases (append-only policy).
pub const HEADER: &str = "bench,version,precision,time_s,power_w,power_sigma_w,\
energy_j,iterations,speedup,power_ratio,energy_ratio,note,skip_reason";

fn esc(s: &str) -> String {
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Render the whole sweep as CSV.
pub fn to_csv(results: &SuiteResults) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{HEADER}");
    for bench in &results.bench_names {
        for prec in Precision::ALL {
            for v in Variant::ALL {
                match results.cell(bench, v, prec) {
                    Some(cell) => {
                        let _ = writeln!(
                            out,
                            "{bench},{},{},{:.6e},{:.4},{:.6},{:.6e},{},{},{},{},{},",
                            v.label().replace(' ', "-"),
                            prec.label(),
                            cell.outcome.time_s,
                            cell.measurement.mean_power_w,
                            cell.measurement.std_power_w,
                            cell.energy_j,
                            cell.iterations,
                            fmt_ratio(results.speedup(bench, v, prec)),
                            fmt_ratio(results.power_ratio(bench, v, prec)),
                            fmt_ratio(results.energy_ratio(bench, v, prec)),
                            esc(cell.outcome.note.as_deref().unwrap_or("")),
                        );
                    }
                    None => {
                        let reason = results
                            .skip_reason(bench, v, prec)
                            .map(|r| r.to_string())
                            .unwrap_or_default();
                        let _ = writeln!(
                            out,
                            "{bench},{},{},,,,,,,,,,{}",
                            v.label().replace(' ', "-"),
                            prec.label(),
                            esc(&reason),
                        );
                    }
                }
            }
        }
    }
    out
}

fn fmt_ratio(r: Option<f64>) -> String {
    r.map(|x| format!("{x:.4}")).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_suite;

    #[test]
    fn csv_covers_every_cell_and_marks_skips() {
        let results = run_suite(&hpc_kernels::test_suite(), false);
        let csv = to_csv(&results);
        let lines: Vec<&str> = csv.lines().collect();
        // header + 9 benches x 4 versions x 2 precisions
        assert_eq!(lines.len(), 1 + 9 * 4 * 2);
        assert_eq!(lines[0], HEADER);
        // Every data line has the full column count.
        let cols = HEADER.split(',').count();
        for l in &lines[1..] {
            // Quoted fields in this format never contain commas (notes are
            // escaped but short); a simple count is enough for the suite.
            assert!(
                l.split(',').count() >= cols - 1,
                "short row: {l}"
            );
        }
        // The amcd f64 GPU rows carry a skip reason and no numbers.
        let amcd_skips: Vec<&&str> = lines
            .iter()
            .filter(|l| l.starts_with("amcd,OpenCL") && l.contains("double"))
            .collect();
        assert_eq!(amcd_skips.len(), 2);
        for l in amcd_skips {
            assert!(l.contains("compiler bug"), "{l}");
        }
        // Serial rows have speedup 1.
        assert!(lines.iter().any(|l| l.starts_with("vecop,Serial,single") &&
            l.contains(",1.0000,")));
    }

    #[test]
    fn escaping() {
        assert_eq!(esc("plain"), "plain");
        assert_eq!(esc("a,b"), "\"a,b\"");
        assert_eq!(esc("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
