//! `harness autotune` — phase-ordering search over the optimizer's pass
//! pipelines, evaluated as content-addressed serving cells.
//!
//! Phase ordering is the classic compiler autotuning problem: the passes
//! in [`kernel_ir::opt`] are individually semantics-preserving, but how
//! much work they remove depends on the order they run in (`cse` before
//! `licm` hoists the deduplicated value once; after it, twice). Rather
//! than inventing a bespoke search loop, the autotuner leans on the
//! serving stack this repo already has: every (pipeline, kernel) trial is
//! an ordinary sweep cell whose [`sim_server::key::CellSpec`] carries the
//! pass list, so trials are content-addressed, cacheable, shardable by
//! `harness route`, and byte-reproducible like any other experiment.
//!
//! Two evaluation backends share the same report:
//!
//! * **local** (no `--addr`): cells run in-process through
//!   [`run_one`] — the exact evaluator `harness serve` uses.
//! * **fleet** (`--addr`): each candidate pipeline becomes one
//!   `POST /v1/sweep` against a running `serve` or `route` instance; the
//!   JSONL rows carry `total_ops`, `time_s` and `output_digest`, which is
//!   everything selection needs. Re-running the tuner against a warm
//!   fleet is nearly free — every trial is a cache hit.
//!
//! Selection is by *executed instruction count* (`total_ops`), not
//! wall-clock: the simulator is deterministic, so ops are exactly
//! reproducible across machines, and simulated `time_s` follows ops
//! anyway. The headline safety invariant — every pipeline produces
//! byte-identical outputs — is checked via the per-cell output digest and
//! reported as `outputs_identical` (`--check` turns a violation into
//! exit 2).

use crate::runner::{run_one, CellEntry, SuiteConfig};
use kernel_ir::opt::{Pass, Pipeline};
use sim_server::http;
use sim_server::json::{self, Json};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;
use telemetry::log;

/// Knobs for [`run`] (CLI flags map onto this 1:1).
#[derive(Clone, Debug)]
pub struct AutotuneConfig {
    /// Tune at test scale (CI) instead of paper scale.
    pub test_scale: bool,
    /// Shrink the candidate set to a smoke-sized handful.
    pub smoke: bool,
    /// Evaluate through a running `serve`/`route` instance instead of
    /// in-process.
    pub addr: Option<String>,
    /// Request timeout for fleet evaluation.
    pub timeout_ms: Option<u64>,
}

/// What one (pipeline, kernel) trial measured.
#[derive(Clone, Debug)]
struct Sample {
    time_s: f64,
    total_ops: u64,
    digest: String,
}

/// Best pipeline found for one kernel.
#[derive(Clone, Debug)]
pub struct BenchBest {
    pub bench: String,
    /// Executed ops without any optimization.
    pub baseline_ops: u64,
    /// Winning pipeline ("-" when no pipeline beat the baseline).
    pub best_passes: String,
    pub best_ops: u64,
    /// Percentage of executed instructions removed by the winner.
    pub ops_saved_pct: f64,
    /// Simulated-time gain of the winner (baseline / best).
    pub time_speedup: f64,
    /// Every candidate produced this kernel's exact output bytes.
    pub outputs_identical: bool,
}

/// Outcome of one autotune run, written to `BENCH_opt.json`.
pub struct AutotuneReport {
    pub scale: &'static str,
    /// `"local"` or the fleet address.
    pub mode: String,
    /// Candidate pipelines in evaluation order ("-" = unoptimized).
    pub pipelines: Vec<String>,
    pub benches: Vec<BenchBest>,
    /// Conjunction of every per-kernel digest check.
    pub outputs_identical: bool,
}

impl AutotuneReport {
    /// Machine-readable form, written to `BENCH_opt.json`.
    pub fn to_json(&self) -> String {
        let pipelines: Vec<String> = self
            .pipelines
            .iter()
            .map(|p| format!("\"{}\"", json::escape(p)))
            .collect();
        let rows: Vec<String> = self
            .benches
            .iter()
            .map(|b| {
                format!(
                    "    {{ \"bench\": \"{}\", \"baseline_ops\": {}, \"best_passes\": \"{}\", \
                     \"best_ops\": {}, \"ops_saved_pct\": {:.2}, \"time_speedup\": {:.3}, \
                     \"outputs_identical\": {} }}",
                    json::escape(&b.bench),
                    b.baseline_ops,
                    json::escape(&b.best_passes),
                    b.best_ops,
                    b.ops_saved_pct,
                    b.time_speedup,
                    b.outputs_identical
                )
            })
            .collect();
        format!(
            "{{\n  \"scale\": \"{}\",\n  \"mode\": \"{}\",\n  \"pipelines\": [{}],\n  \
             \"per_bench\": [\n{}\n  ],\n  \"outputs_identical\": {}\n}}\n",
            self.scale,
            json::escape(&self.mode),
            pipelines.join(", "),
            rows.join(",\n"),
            self.outputs_identical
        )
    }

    /// Human-readable one-screen summary.
    pub fn summary(&self) -> String {
        let mode = if self.mode == "local" {
            "local".to_string()
        } else {
            format!("fleet @ {}", self.mode)
        };
        let mut s = format!(
            "autotune ({} scale, {}, {} candidate pipelines)\n",
            self.scale,
            mode,
            self.pipelines.len()
        );
        for b in &self.benches {
            s.push_str(&format!(
                "  {:<10} {:>12} -> {:>12} ops  (-{:.1}%, {:.2}x time)  best: {}\n",
                b.bench, b.baseline_ops, b.best_ops, b.ops_saved_pct, b.time_speedup, b.best_passes
            ));
        }
        s.push_str(&format!(
            "  outputs identical across all pipelines: {}\n",
            self.outputs_identical
        ));
        s
    }
}

/// The candidate set: unoptimized baseline, every single pass, the
/// canonical full ordering, and seeded Fisher-Yates shuffles of it. All
/// deterministic — the same invocation always tries the same orderings,
/// so fleet-side caching across runs actually hits.
fn candidates(smoke: bool) -> Vec<Option<String>> {
    let mut out: Vec<Option<String>> = vec![None];
    if !smoke {
        for p in Pass::ALL {
            out.push(Some(p.name().to_string()));
        }
    }
    out.push(Some(Pipeline::full().to_string()));
    let mut seen: BTreeSet<String> = out.iter().flatten().cloned().collect();
    let want = if smoke { 2 } else { 6 };
    let mut added = 0;
    for seed in 1u64..64 {
        if added == want {
            break;
        }
        let mut passes = Pass::ALL.to_vec();
        let mut rng = sim_rng::Pcg32::seed_from_u64(0xA0707 + seed);
        for i in (1..passes.len()).rev() {
            passes.swap(i, rng.gen_range_usize(0, i + 1));
        }
        let s = Pipeline::of(&passes).to_string();
        if seen.insert(s.clone()) {
            out.push(Some(s));
            added += 1;
        }
    }
    out
}

/// Evaluate one candidate in-process: every suite kernel at
/// OpenCL-Opt/single, the grid the optimizer actually targets.
fn eval_local(
    benches: &[Box<dyn hpc_kernels::Benchmark>],
    pipeline: Option<&str>,
) -> Result<BTreeMap<String, Sample>, String> {
    let passes = match pipeline {
        None => None,
        Some(p) => Some(Pipeline::parse(p).map_err(|e| format!("bad candidate pipeline: {e}"))?),
    };
    let cfg = SuiteConfig {
        passes,
        ..SuiteConfig::default()
    };
    let mut out = BTreeMap::new();
    for (bi, b) in benches.iter().enumerate() {
        match run_one(
            b.as_ref(),
            bi,
            hpc_kernels::Variant::OpenClOpt,
            hpc_kernels::Precision::F32,
            &cfg,
        ) {
            CellEntry::Ok(cell) => {
                out.insert(
                    b.name().to_string(),
                    Sample {
                        time_s: cell.outcome.time_s,
                        total_ops: cell.counters.total_ops(),
                        digest: format!("{:016x}", cell.output_digest),
                    },
                );
            }
            CellEntry::Skipped(_) => {}
            CellEntry::Failed(e) => {
                return Err(format!(
                    "{} under '{}': {}",
                    b.name(),
                    pipeline.unwrap_or("-"),
                    e.message
                ))
            }
        }
    }
    Ok(out)
}

/// Evaluate one candidate through a running `serve`/`route` instance:
/// one sweep request, trials keyed (and cached) by their pass list.
fn eval_fleet(
    addr: &str,
    scale: &str,
    bench_names: &[&str],
    pipeline: Option<&str>,
    timeout: Duration,
) -> Result<BTreeMap<String, Sample>, String> {
    let cells: Vec<String> = bench_names
        .iter()
        .map(|b| {
            format!(
                "{{\"bench\":\"{}\",\"version\":\"OpenCL-Opt\",\"precision\":\"single\"}}",
                json::escape(b)
            )
        })
        .collect();
    let passes = pipeline
        .map(|p| format!(",\"passes\":\"{}\"", json::escape(p)))
        .unwrap_or_default();
    let body = format!(
        "{{\"scale\":\"{scale}\"{passes},\"cells\":[{}]}}",
        cells.join(",")
    );
    let (status, resp) = http::request(addr, "POST", "/v1/sweep", body.as_bytes(), timeout)
        .map_err(|e| format!("sweep to {addr} failed: {e}"))?;
    let text = String::from_utf8_lossy(&resp);
    if status != 200 {
        return Err(format!(
            "sweep to {addr} got HTTP {status}: {}",
            text.trim()
        ));
    }
    let mut out = BTreeMap::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let row = json::parse(line).map_err(|e| format!("bad sweep row: {e}"))?;
        let bench = row
            .get("bench")
            .and_then(Json::as_str)
            .ok_or("sweep row without 'bench'")?
            .to_string();
        match row.get("status").and_then(Json::as_str) {
            Some("ok") => {}
            Some("skip") => continue,
            other => {
                return Err(format!(
                    "{bench} under '{}': status {:?}",
                    pipeline.unwrap_or("-"),
                    other
                ))
            }
        }
        let field = |k: &str| row.get(k).ok_or(format!("ok row without '{k}'"));
        out.insert(
            bench,
            Sample {
                time_s: field("time_s")?.as_f64().ok_or("bad time_s")?,
                total_ops: field("total_ops")?.as_u64().ok_or("bad total_ops")?,
                digest: field("output_digest")?
                    .as_str()
                    .ok_or("bad output_digest")?
                    .to_string(),
            },
        );
    }
    Ok(out)
}

/// Run the phase-ordering search and select per-kernel winners.
pub fn run(cfg: &AutotuneConfig) -> Result<AutotuneReport, String> {
    let scale = if cfg.test_scale { "test" } else { "paper" };
    let benches = if cfg.test_scale {
        hpc_kernels::test_suite()
    } else {
        hpc_kernels::suite()
    };
    let bench_names: Vec<&str> = benches.iter().map(|b| b.name()).collect();
    let cands = candidates(cfg.smoke);
    let timeout = Duration::from_millis(cfg.timeout_ms.unwrap_or(600_000));

    let mut evals: Vec<(String, BTreeMap<String, Sample>)> = Vec::new();
    for cand in &cands {
        let label = cand.clone().unwrap_or_else(|| "-".into());
        log::progress(&format!(
            "autotune: evaluating pipeline '{label}' ({} kernels)...",
            bench_names.len()
        ));
        let samples = match &cfg.addr {
            Some(addr) => eval_fleet(addr, scale, &bench_names, cand.as_deref(), timeout)?,
            None => eval_local(&benches, cand.as_deref())?,
        };
        evals.push((label, samples));
    }

    let (_, baseline) = &evals[0];
    let mut rows = Vec::new();
    for (bench, base) in baseline {
        let mut best_label = "-".to_string();
        let mut best: Sample = base.clone();
        let mut identical = true;
        for (label, samples) in &evals[1..] {
            let Some(s) = samples.get(bench) else {
                // A kernel that succeeded unoptimized must not vanish
                // under a pipeline; treat it as a digest violation.
                identical = false;
                continue;
            };
            if s.digest != base.digest {
                identical = false;
            }
            // Strictly-better keeps the baseline on ties, and first-wins
            // among equal candidates keeps selection deterministic.
            if s.total_ops < best.total_ops {
                best = s.clone();
                best_label = label.clone();
            }
        }
        rows.push(BenchBest {
            bench: bench.clone(),
            baseline_ops: base.total_ops,
            best_passes: best_label,
            best_ops: best.total_ops,
            ops_saved_pct: 100.0 * (base.total_ops.saturating_sub(best.total_ops)) as f64
                / (base.total_ops.max(1)) as f64,
            time_speedup: base.time_s / best.time_s.max(1e-12),
            outputs_identical: identical,
        });
    }

    let outputs_identical = rows.iter().all(|r| r.outputs_identical);
    Ok(AutotuneReport {
        scale,
        mode: cfg.addr.clone().unwrap_or_else(|| "local".into()),
        pipelines: evals.into_iter().map(|(l, _)| l).collect(),
        benches: rows,
        outputs_identical,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_sets_are_deterministic_and_valid() {
        let full = candidates(false);
        assert_eq!(full, candidates(false));
        assert_eq!(full[0], None);
        // baseline + 7 singles + full + 6 shuffles, all distinct.
        assert_eq!(full.len(), 15);
        let uniq: BTreeSet<_> = full.iter().collect();
        assert_eq!(uniq.len(), full.len());
        for c in full.iter().flatten() {
            Pipeline::parse(c).expect("candidate parses");
        }
        let smoke = candidates(true);
        assert_eq!(smoke.len(), 4);
        assert!(smoke.iter().all(|c| full.contains(c)));
    }

    #[test]
    fn local_autotune_finds_a_win_and_identical_outputs() {
        let rep = run(&AutotuneConfig {
            test_scale: true,
            smoke: true,
            addr: None,
            timeout_ms: None,
        })
        .expect("autotune runs");
        assert!(rep.outputs_identical, "a pass changed kernel outputs");
        assert!(!rep.benches.is_empty());
        // The optimizer must pay for itself somewhere: at least one kernel
        // executes strictly fewer instructions under some pipeline.
        assert!(
            rep.benches.iter().any(|b| b.best_ops < b.baseline_ops),
            "no kernel improved: {}",
            rep.summary()
        );
        let json = rep.to_json();
        assert!(json.contains("\"outputs_identical\": true"));
    }
}
