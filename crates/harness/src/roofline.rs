//! Roofline analysis of the nine GPU kernels.
//!
//! A diagnostic the paper's §V discussion performs informally ("in absence
//! of sufficient computation, the memory bandwidth can limit the
//! performance"): for each benchmark's naive and optimized GPU kernels,
//! count flops and DRAM bytes from the interpreter's event stream, place
//! the kernel on the Mali-T604's roofline (peak GFLOP/s vs sustained
//! GB/s × operational intensity), and report attained vs attainable.

use hpc_kernels::{suite, Precision, Variant};
use mali_gpu::MaliConfig;
use std::fmt::Write as _;

/// One kernel's roofline placement.
#[derive(Clone, Debug)]
pub struct RooflinePoint {
    pub bench: String,
    pub variant: Variant,
    /// Useful floating-point operations (mads count 2).
    pub flops: f64,
    /// DRAM bytes moved (cache-filtered traffic).
    pub dram_bytes: f64,
    /// flops / byte.
    pub intensity: f64,
    /// Attained GFLOP/s (flops / measured time).
    pub attained_gflops: f64,
    /// min(peak, intensity × bandwidth) for this device.
    pub attainable_gflops: f64,
}

impl RooflinePoint {
    /// Fraction of the roofline ceiling the kernel reaches.
    pub fn efficiency(&self) -> f64 {
        if self.attainable_gflops > 0.0 {
            self.attained_gflops / self.attainable_gflops
        } else {
            0.0
        }
    }

    /// Whether the roofline puts this kernel under the bandwidth slope
    /// rather than the compute ceiling.
    pub fn memory_bound(&self, cfg: &MaliConfig) -> bool {
        self.intensity * cfg.gpu_stream_bw / 1e9 < peak_gflops(cfg)
    }
}

/// Device compute ceiling in GFLOP/s. Uses the f32 FMA peak.
pub fn peak_gflops(cfg: &MaliConfig) -> f64 {
    cfg.peak_f32_gflops()
}

/// Estimate flops from a run's activity: we recover them from the
/// benchmark's analytic operation counts (exact for these kernels — the
/// event stream's `lanes_issued` includes index arithmetic, which roofline
/// analysis conventionally excludes).
fn analytic_flops(bench: &str, prec_bytes: f64) -> Option<(f64, f64)> {
    // (flops, minimum-useful-bytes) per benchmark at the suite's default
    // sizes. Minimum bytes = each input read once + each output written
    // once (the compulsory roofline traffic).
    let b = prec_bytes;
    Some(match bench {
        "vecop" => {
            let n = (1 << 20) as f64;
            (n, 3.0 * n * b)
        }
        "red" => {
            let n = (1 << 20) as f64;
            (n, n * b)
        }
        "nbody" => {
            let n = 1024f64;
            // ~19 flops per interaction (3 sub, 3 fma=6, rsqrt~2, 2 mul,
            // 1 mul, 3 fma=6 minus bookkeeping) — conventional nbody count.
            (19.0 * n * n, 4.0 * n * b + 4.0 * n * b)
        }
        "dmmm" => {
            let n = 160f64;
            (2.0 * n * n * n, 3.0 * n * n * b)
        }
        "2dcon" => {
            let m = 512f64;
            (2.0 * 25.0 * m * m, 2.0 * m * m * b)
        }
        "3dstc" => {
            let d = 64f64;
            (8.0 * d * d * d, 2.0 * d * d * d * b)
        }
        _ => return None, // spmv/hist/amcd: integer- or rng-dominated
    })
}

/// Build the roofline table for the GPU versions of the flop-dominated
/// benchmarks.
pub fn points(prec: Precision) -> Vec<RooflinePoint> {
    let cfg = MaliConfig::default();
    let mut out = Vec::new();
    let prec_bytes = prec.elem().bytes() as f64;
    for b in suite() {
        let Some((flops, _min_bytes)) = analytic_flops(b.name(), prec_bytes) else {
            continue;
        };
        for v in [Variant::OpenCl, Variant::OpenClOpt] {
            let Ok(r) = b.run(v, prec) else { continue };
            let dram_bytes = r.activity.dram_bytes as f64;
            let intensity = if dram_bytes > 0.0 {
                flops / dram_bytes
            } else {
                f64::INFINITY
            };
            let attained = flops / r.time_s / 1e9;
            let attainable = peak_gflops(&cfg).min(intensity * cfg.gpu_stream_bw / 1e9);
            out.push(RooflinePoint {
                bench: b.name().to_string(),
                variant: v,
                flops,
                dram_bytes,
                intensity,
                attained_gflops: attained,
                attainable_gflops: attainable,
            });
        }
    }
    out
}

/// Render the report.
pub fn report(prec: Precision) -> String {
    let cfg = MaliConfig::default();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== roofline, {} precision (peak {:.1} GFLOP/s, stream {:.1} GB/s) ==",
        prec.label(),
        peak_gflops(&cfg),
        cfg.gpu_stream_bw / 1e9
    );
    let _ = writeln!(
        out,
        "{:<7} {:<11} {:>10} {:>9} {:>10} {:>12} {:>6} {:>7}",
        "bench", "version", "GFLOP", "GB", "flop/B", "attained", "ceil", "eff"
    );
    for p in points(prec) {
        let bound = if p.memory_bound(&cfg) { "mem" } else { "fp" };
        let _ = writeln!(
            out,
            "{:<7} {:<11} {:>10.3} {:>9.3} {:>10.2} {:>9.2} GF {:>6.1} {:>6.0}% ({bound})",
            p.bench,
            p.variant.label(),
            p.flops / 1e9,
            p.dram_bytes / 1e9,
            p.intensity,
            p.attained_gflops,
            p.attainable_gflops,
            p.efficiency() * 100.0,
        );
    }
    let _ = writeln!(
        out,
        "\nReading: 'mem' rows sit under the bandwidth slope — §V's 'in absence of\n\
         sufficient computation, the memory bandwidth can limit the performance';\n\
         optimization moves kernels toward (and along) the ceiling."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flop_dominated_benchmarks_covered() {
        let pts = points(Precision::F32);
        let names: std::collections::HashSet<_> = pts.iter().map(|p| p.bench.as_str()).collect();
        for b in ["vecop", "red", "nbody", "dmmm", "2dcon", "3dstc"] {
            assert!(names.contains(b), "missing {b}");
        }
    }

    #[test]
    fn attained_never_exceeds_device_peak() {
        let cfg = MaliConfig::default();
        for p in points(Precision::F32) {
            assert!(
                p.attained_gflops <= peak_gflops(&cfg) * 1.05,
                "{} {:?} attains {:.1} GF > peak",
                p.bench,
                p.variant,
                p.attained_gflops
            );
        }
    }

    #[test]
    fn vecop_is_memory_bound_and_dmmm_is_not() {
        let cfg = MaliConfig::default();
        let pts = points(Precision::F32);
        let find =
            |b: &str, v: Variant| pts.iter().find(|p| p.bench == b && p.variant == v).unwrap();
        assert!(find("vecop", Variant::OpenClOpt).memory_bound(&cfg));
        assert!(
            find("dmmm", Variant::OpenClOpt).intensity
                > find("vecop", Variant::OpenClOpt).intensity * 5.0,
            "dmmm reuse must show up as far higher operational intensity"
        );
    }

    #[test]
    fn optimization_raises_attained_flops() {
        let pts = points(Precision::F32);
        for b in ["dmmm", "2dcon"] {
            let naive = pts
                .iter()
                .find(|p| p.bench == b && p.variant == Variant::OpenCl)
                .unwrap();
            let opt = pts
                .iter()
                .find(|p| p.bench == b && p.variant == Variant::OpenClOpt)
                .unwrap();
            assert!(
                opt.attained_gflops > naive.attained_gflops,
                "{b}: opt should climb the roofline"
            );
        }
    }

    #[test]
    fn report_renders() {
        let r = report(Precision::F32);
        assert!(r.contains("roofline"));
        assert!(r.contains("dmmm"));
    }
}
