//! `harness profile <bench>` — per-variant performance-counter report.
//!
//! Runs one benchmark across all four versions and both precisions and
//! prints the counter snapshot of each run: what the variant *did*
//! (instruction mix, vector widths, memory patterns) and what the machine
//! *made of it* (hit rates, DRAM line mix, occupancy). This is the
//! human-readable view of the same `telemetry::Counters` the CSV/JSONL
//! artifacts export.

use hpc_kernels::{Benchmark, Precision, Variant};
use std::fmt::Write as _;
use telemetry::{Counters, OP_CLASS_NAMES, WIDTH_BUCKETS};

fn mix_line(c: &Counters) -> String {
    let total = c.total_ops().max(1) as f64;
    let mut parts: Vec<String> = c
        .ops_by_class
        .iter()
        .zip(OP_CLASS_NAMES)
        .filter(|(&n, _)| n > 0)
        .map(|(&n, name)| format!("{name} {:.0}%", 100.0 * n as f64 / total))
        .collect();
    if parts.is_empty() {
        parts.push("(no ops)".into());
    }
    parts.join("  ")
}

fn width_line(c: &Counters) -> String {
    c.width_hist
        .iter()
        .zip(WIDTH_BUCKETS)
        .filter(|(&n, _)| n > 0)
        .map(|(&n, w)| format!("x{w}:{n}"))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Render the per-variant counter report for one benchmark.
pub fn report(b: &dyn Benchmark) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "profile: {} — {}", b.name(), b.description());
    for prec in Precision::ALL {
        let _ = writeln!(out, "\n[{} precision]", prec.label());
        for v in Variant::ALL {
            match b.run(v, prec) {
                Ok(o) => {
                    let c = &o.telemetry.counters;
                    let _ = writeln!(
                        out,
                        "  {:<11}  time {:.3e} s   flops {:.3e}   ops {}   avg width {:.2}",
                        v.label(),
                        o.time_s,
                        c.flops,
                        c.total_ops(),
                        c.avg_vector_width(),
                    );
                    let _ = writeln!(
                        out,
                        "               L1 {:>5.1}%  L2 {:>5.1}%  DRAM lines {} \
                         ({:.0}% streaming, {} scattered, {} written back)",
                        100.0 * c.l1_hit_rate(),
                        100.0 * c.l2_hit_rate(),
                        c.dram_lines,
                        100.0 * c.dram_stream_fraction(),
                        c.dram_scatter_lines,
                        c.dram_writeback_lines,
                    );
                    let _ = writeln!(
                        out,
                        "               loads {}  stores {}  atomics {}  local {}  \
                         gather {}  contiguous {}  barrier-waits {}",
                        c.loads,
                        c.stores,
                        c.atomics,
                        c.local_accesses,
                        c.gather_accesses,
                        c.contiguous_accesses,
                        c.barriers,
                    );
                    if v.on_gpu() {
                        let _ = writeln!(
                            out,
                            "               occupancy {:.2} ({}/{} threads, {} regs/thread)",
                            c.occupancy(),
                            c.resident_threads,
                            c.max_resident_threads,
                            c.registers_per_thread,
                        );
                    }
                    let _ = writeln!(out, "               mix: {}", mix_line(c));
                    let width = width_line(c);
                    if !width.is_empty() {
                        let _ = writeln!(out, "               widths: {width}");
                    }
                    if let Some(note) = &o.note {
                        let _ = writeln!(out, "               note: {note}");
                    }
                }
                Err(skip) => {
                    let _ = writeln!(out, "  {:<11}  -- skipped: {skip}", v.label());
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_all_variants_and_counters() {
        let benches = hpc_kernels::test_suite();
        let b = benches.iter().find(|b| b.name() == "dmmm").unwrap();
        let r = report(b.as_ref());
        for v in Variant::ALL {
            assert!(r.contains(v.label()), "missing {}", v.label());
        }
        assert!(r.contains("flops"));
        assert!(r.contains("L1"));
        assert!(r.contains("streaming"));
        assert!(r.contains("occupancy"));
        assert!(r.contains("mix:"));
    }

    #[test]
    fn skips_are_reported_not_fatal() {
        let benches = hpc_kernels::test_suite();
        let b = benches.iter().find(|b| b.name() == "amcd").unwrap();
        let r = report(b.as_ref());
        assert!(r.contains("skipped: compiler bug"), "{r}");
    }
}
