//! CLI contract: bad invocations exit 2 with usage on stderr — never a
//! panic, never a silent fallback to the default subcommand.

use std::process::{Command, Output};

fn harness(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_harness"))
        .args(args)
        .output()
        .expect("spawn harness")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn unknown_subcommand_exits_2_with_usage() {
    for bad in ["frobnicate", "Serve", "--serve"] {
        let out = harness(&[bad]);
        assert_eq!(out.status.code(), Some(2), "{bad}");
        let err = stderr(&out);
        assert!(err.contains("usage"), "{bad}: {err}");
        assert!(!err.contains("panicked"), "{bad}: {err}");
    }
}

#[test]
fn malformed_flags_exit_2() {
    for bad in [
        &["serve", "--capacity", "lots"][..],
        &["serve", "--queue", "-1"],
        &["serve", "--addr"],
        &["submit", "--addr", "127.0.0.1:1", "--fault-seed", "x"],
        &["submit", "--addr", "127.0.0.1:1", "--cells"],
        &["suite", "--threads", "zero"],
        &["jsonl", "--no-such-flag"],
    ] {
        let out = harness(bad);
        assert_eq!(out.status.code(), Some(2), "{bad:?}: {}", stderr(&out));
        assert!(!stderr(&out).contains("panicked"), "{bad:?}");
    }
}

#[test]
fn submit_requires_an_address() {
    let out = harness(&["submit"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--addr"), "{}", stderr(&out));
}

#[test]
fn help_documents_the_serving_layer() {
    let out = harness(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout).into_owned() + &stderr(&out);
    for needle in [
        "serve",
        "submit",
        "--queue",
        "--cache",
        "--warm",
        "--trace-dir",
        "--trace-sample",
        "--slow-ms",
        "--replicas",
        "--retry-budget",
        "--breaker-threshold",
        "--timeout-ms",
        "X-Sim-Trace-Id",
    ] {
        assert!(text.contains(needle), "help missing {needle}: {text}");
    }
}

#[test]
fn bounded_serving_flags_reject_zero() {
    for bad in [
        &[
            "route",
            "--addr",
            "127.0.0.1:0",
            "--shards",
            "127.0.0.1:1",
            "--replicas",
            "0",
        ][..],
        &[
            "route",
            "--addr",
            "127.0.0.1:0",
            "--shards",
            "127.0.0.1:1",
            "--retry-budget",
            "0",
        ],
        &["serve", "--timeout-ms", "0"],
    ] {
        let out = harness(bad);
        assert_eq!(out.status.code(), Some(2), "{bad:?}: {}", stderr(&out));
        assert!(!stderr(&out).contains("panicked"), "{bad:?}");
    }
}

/// `harness submit` retries transient connection failures with seeded
/// backoff before giving up: against a dead address it reports each
/// retry on stderr and still exits 1 (transport error), not 2 (usage).
#[test]
fn submit_retries_transient_connection_failures_before_failing() {
    let out = harness(&[
        "submit",
        "--addr",
        "127.0.0.1:1",
        "--retry-budget",
        "2",
        "--metrics",
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("retrying"), "no retry reported: {err}");
    assert!(err.contains("attempt 2 of 2"), "{err}");
}
