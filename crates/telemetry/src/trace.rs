//! Chrome trace-event JSON ("Trace Event Format") writer.
//!
//! Emits the JSON-object flavour `{"traceEvents": [...]}` that Perfetto
//! and `chrome://tracing` open directly. Only the three event kinds the
//! simulator needs are supported: complete spans (`ph:"X"`), counter
//! samples (`ph:"C"`) and process/thread-name metadata (`ph:"M"`).
//! Timestamps are microseconds; fractional values are preserved because
//! simulated kernels routinely finish in nanoseconds.
//!
//! Serialization is hand-rolled (the workspace builds offline, so no
//! serde): every string passes through [`json_escape`] and numbers use
//! Rust's shortest-roundtrip float formatting.

/// Escape a string for inclusion inside a JSON string literal (quotes not
/// included).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// JSON number formatting: finite shortest-roundtrip, with non-finite
/// values clamped (JSON has no Infinity/NaN).
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else if x > 0.0 {
        "1e308".into()
    } else if x < 0.0 {
        "-1e308".into()
    } else {
        "0".into()
    }
}

/// Incremental builder for one trace file.
#[derive(Clone, Debug, Default)]
pub struct TraceBuilder {
    events: Vec<String>,
}

impl TraceBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Name the process `pid` (one simulated device per pid).
    pub fn process_name(&mut self, pid: u32, name: &str) {
        self.events.push(format!(
            r#"{{"name":"process_name","ph":"M","pid":{pid},"tid":0,"args":{{"name":"{}"}}}}"#,
            json_escape(name)
        ));
    }

    /// Name the thread `tid` of process `pid` (one core per tid).
    pub fn thread_name(&mut self, pid: u32, tid: u32, name: &str) {
        self.events.push(format!(
            r#"{{"name":"thread_name","ph":"M","pid":{pid},"tid":{tid},"args":{{"name":"{}"}}}}"#,
            json_escape(name)
        ));
    }

    /// A complete span (`ph:"X"`), timed in simulated seconds.
    pub fn span(&mut self, name: &str, cat: &str, pid: u32, tid: u32, start_s: f64, dur_s: f64) {
        self.events.push(format!(
            r#"{{"name":"{}","cat":"{}","ph":"X","ts":{},"dur":{},"pid":{pid},"tid":{tid}}}"#,
            json_escape(name),
            json_escape(cat),
            num(start_s * 1e6),
            num(dur_s * 1e6),
        ));
    }

    /// A counter sample (`ph:"C"`): one named track with one or more
    /// series, rendered stacked by the viewer.
    pub fn counter(&mut self, name: &str, pid: u32, ts_s: f64, series: &[(&str, f64)]) {
        let args: Vec<String> = series
            .iter()
            .map(|(k, v)| format!(r#""{}":{}"#, json_escape(k), num(*v)))
            .collect();
        self.events.push(format!(
            r#"{{"name":"{}","ph":"C","ts":{},"pid":{pid},"args":{{{}}}}}"#,
            json_escape(name),
            num(ts_s * 1e6),
            args.join(","),
        ));
    }

    /// Serialize to the JSON-object trace format.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        for (i, e) in self.events.iter().enumerate() {
            out.push_str(e);
            if i + 1 < self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_cover_json_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("tab\there"), "tab\\there");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn span_and_counter_shape() {
        let mut t = TraceBuilder::new();
        t.process_name(1, "mali-t604");
        t.thread_name(1, 3, "core 3");
        t.span("kernel \"dmmm\"", "kernel", 1, 3, 1e-6, 2e-6);
        t.counter("power", 1, 0.0, &[("board_w", 3.25)]);
        let json = t.to_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains(r#""ph":"X""#));
        assert!(json.contains(r#""ph":"C""#));
        assert!(json.contains(r#""ph":"M""#));
        assert!(json.contains(r#""ts":1,"dur":2"#), "{json}");
        assert!(json.contains("kernel \\\"dmmm\\\""));
        assert!(json.contains(r#""board_w":3.25"#));
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
    }

    #[test]
    fn golden_trace_json() {
        // Exact serialized form — pins the trace-event schema (field
        // names, `ph` codes, µs timestamps) so a viewer-breaking change
        // shows up as a diff here, not in Perfetto.
        let mut t = TraceBuilder::new();
        t.process_name(1, "mali-t604");
        t.thread_name(1, 1, "shader core 0");
        t.span("vecop", "kernel", 1, 0, 0.0, 5e-6);
        t.span("wg 0", "workgroup", 1, 1, 1e-6, 2.5e-6);
        t.counter("WT230 power (W)", 1, 0.0, &[("board_w", 3.5)]);
        let golden = concat!(
            "{\"traceEvents\":[\n",
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,",
            "\"args\":{\"name\":\"mali-t604\"}},\n",
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,",
            "\"args\":{\"name\":\"shader core 0\"}},\n",
            "{\"name\":\"vecop\",\"cat\":\"kernel\",\"ph\":\"X\",\"ts\":0,\"dur\":5,",
            "\"pid\":1,\"tid\":0},\n",
            "{\"name\":\"wg 0\",\"cat\":\"workgroup\",\"ph\":\"X\",\"ts\":1,\"dur\":2.5,",
            "\"pid\":1,\"tid\":1},\n",
            "{\"name\":\"WT230 power (W)\",\"ph\":\"C\",\"ts\":0,\"pid\":1,",
            "\"args\":{\"board_w\":3.5}}\n",
            "],\"displayTimeUnit\":\"ms\"}\n",
        );
        assert_eq!(t.to_json(), golden);
    }

    #[test]
    fn non_finite_numbers_are_clamped() {
        assert_eq!(num(f64::INFINITY), "1e308");
        assert_eq!(num(f64::NEG_INFINITY), "-1e308");
        assert_eq!(num(f64::NAN), "0");
    }
}
