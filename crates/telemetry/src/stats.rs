//! Small streaming statistics helpers for service-level telemetry.
//!
//! The device simulators count *simulated* time; the serving layer also
//! needs *wall-clock* service-time percentiles for its `/metrics`
//! endpoint. [`DurationStats`] is a bounded sliding-window reservoir:
//! exact nearest-rank percentiles over the last `capacity` samples, O(1)
//! record, O(n log n) only when a percentile is actually read. No clocks
//! in here — callers record durations they measured themselves, which
//! keeps this crate deterministic and trivially testable.

/// Sliding-window duration reservoir with nearest-rank percentiles.
#[derive(Clone, Debug)]
pub struct DurationStats {
    /// Ring buffer of the most recent samples, microseconds.
    window: Vec<u64>,
    /// Next write position in the ring.
    head: usize,
    /// Total samples ever recorded (not just retained).
    count: u64,
    /// Sum over all recorded samples, for a lifetime mean.
    total_us: u128,
}

impl DurationStats {
    /// `capacity` is the window size; 4096 is plenty for a /metrics page.
    pub fn new(capacity: usize) -> DurationStats {
        DurationStats {
            window: Vec::with_capacity(capacity.max(1)),
            head: 0,
            count: 0,
            total_us: 0,
        }
    }

    /// Record one duration in microseconds.
    pub fn record_us(&mut self, us: u64) {
        self.count += 1;
        self.total_us += us as u128;
        if self.window.len() < self.window.capacity() {
            self.window.push(us);
        } else {
            self.window[self.head] = us;
            self.head = (self.head + 1) % self.window.len();
        }
    }

    /// Samples ever recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Lifetime mean in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.total_us / self.count as u128) as u64
        }
    }

    /// Nearest-rank percentile over the retained window, `p` in [0, 100].
    /// Returns 0 when no samples have been recorded.
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.window.is_empty() {
            return 0;
        }
        let mut sorted = self.window.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    pub fn p50_us(&self) -> u64 {
        self.percentile_us(50.0)
    }

    pub fn p95_us(&self) -> u64 {
        self.percentile_us(95.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_all_zero() {
        let s = DurationStats::new(16);
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean_us(), 0);
        assert_eq!(s.p50_us(), 0);
        assert_eq!(s.p95_us(), 0);
    }

    #[test]
    fn nearest_rank_percentiles() {
        let mut s = DurationStats::new(128);
        for us in 1..=100u64 {
            s.record_us(us);
        }
        assert_eq!(s.count(), 100);
        assert_eq!(s.mean_us(), 50); // 50.5 truncated
        assert_eq!(s.p50_us(), 50);
        assert_eq!(s.p95_us(), 95);
        assert_eq!(s.percentile_us(100.0), 100);
        assert_eq!(s.percentile_us(1.0), 1);
        // Degenerate percentiles clamp instead of panicking.
        assert_eq!(s.percentile_us(0.0), 1);
    }

    #[test]
    fn window_slides_and_lifetime_stats_do_not() {
        let mut s = DurationStats::new(4);
        for us in [1000, 1000, 1000, 1000] {
            s.record_us(us);
        }
        // Four fast samples push the old slow ones out of the window...
        for us in [10, 20, 30, 40] {
            s.record_us(us);
        }
        assert_eq!(s.p50_us(), 20);
        assert_eq!(s.percentile_us(100.0), 40);
        // ...but the lifetime mean still remembers them.
        assert_eq!(s.count(), 8);
        assert_eq!(s.mean_us(), (4 * 1000 + 10 + 20 + 30 + 40) / 8);
    }

    #[test]
    fn single_sample() {
        let mut s = DurationStats::new(8);
        s.record_us(7);
        assert_eq!(s.p50_us(), 7);
        assert_eq!(s.p95_us(), 7);
        assert_eq!(s.mean_us(), 7);
    }
}
