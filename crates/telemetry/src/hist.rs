//! Log-bucketed latency histograms with exact merge and Prometheus-style
//! text exposition.
//!
//! The serving layer used to publish p50/p95 from a bounded sample
//! reservoir ([`crate::DurationStats`]) — fine for one process, wrong for
//! a fleet: percentiles from different shards cannot be combined, so the
//! router could only take a max and call it a bound. A histogram over a
//! *fixed* bucket ladder fixes that: bucket counts are plain counters, so
//! merging shard pages is exact summation, associative and commutative,
//! and any reader can derive quantiles from the merged counts.
//!
//! The ladder is powers of two in microseconds: upper bounds 1 µs, 2 µs,
//! 4 µs, … 2^26 µs (≈ 67 s), plus a +Inf overflow bucket. Fixed and
//! identical everywhere — two histograms always merge bucket-by-bucket,
//! no rebinning. Exposition follows the Prometheus text format
//! (`name_bucket{le="..."}` cumulative counts, `name_sum`, `name_count`)
//! and [`LatencyHistogram::parse`] reads it back exactly, which is what
//! lets the router merge shard `/metrics` pages without a side channel.
//!
//! No clocks in here — callers record durations they measured themselves,
//! keeping the crate deterministic and trivially testable.

/// Number of finite bucket bounds (1 µs … 2^26 µs).
pub const FINITE_BUCKETS: usize = 27;
/// Total buckets including the +Inf overflow bucket.
pub const BUCKETS: usize = FINITE_BUCKETS + 1;

/// Upper bound of finite bucket `i` in microseconds (`2^i`).
#[inline]
pub fn bucket_bound_us(i: usize) -> u64 {
    1u64 << i
}

/// Index of the bucket a `us` sample lands in: the first bucket whose
/// upper bound is >= the sample, with everything above 2^26 µs clamped
/// into the +Inf bucket. 0 lands in the first bucket (le="1").
#[inline]
pub fn bucket_index(us: u64) -> usize {
    if us <= 1 {
        return 0;
    }
    let idx = (u64::BITS - (us - 1).leading_zeros()) as usize;
    idx.min(FINITE_BUCKETS)
}

/// A latency histogram over the fixed powers-of-two ladder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Per-bucket (non-cumulative) sample counts; the last slot is +Inf.
    counts: [u64; BUCKETS],
    /// Total samples recorded (== counts.sum(), kept for O(1) reads).
    count: u64,
    /// Sum over all samples in microseconds (exact; u128 cannot overflow
    /// at any realistic rate).
    sum_us: u128,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            count: 0,
            sum_us: 0,
        }
    }
}

impl LatencyHistogram {
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Record one duration in microseconds.
    pub fn record_us(&mut self, us: u64) {
        self.counts[bucket_index(us)] += 1;
        self.count += 1;
        self.sum_us += us as u128;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples in microseconds.
    pub fn sum_us(&self) -> u128 {
        self.sum_us
    }

    /// Mean in microseconds (0 when empty, truncated).
    pub fn mean_us(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum_us / self.count as u128) as u64
        }
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact merge: bucket-by-bucket summation. Associative and
    /// commutative, so fleet aggregation order cannot change the result.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
    }

    /// Nearest-rank quantile as a bucket upper bound, `q` in [0, 1].
    /// Returns 0 when empty. Samples in the +Inf bucket report one power
    /// of two past the last finite bound (2^27 µs) — a visible "off the
    /// ladder" marker rather than a fabricated finite value.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i < FINITE_BUCKETS {
                    bucket_bound_us(i)
                } else {
                    bucket_bound_us(FINITE_BUCKETS)
                };
            }
        }
        bucket_bound_us(FINITE_BUCKETS)
    }

    pub fn p50_us(&self) -> u64 {
        self.quantile_us(0.50)
    }

    pub fn p95_us(&self) -> u64 {
        self.quantile_us(0.95)
    }

    pub fn p99_us(&self) -> u64 {
        self.quantile_us(0.99)
    }

    /// Append the Prometheus text exposition of this histogram: one
    /// cumulative `name_bucket{le="..."}` line per bucket (ending with
    /// `+Inf`), then `name_sum` and `name_count`.
    pub fn render(&self, name: &str, out: &mut String) {
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if i < FINITE_BUCKETS {
                out.push_str(&format!(
                    "{name}_bucket{{le=\"{}\"}} {cum}\n",
                    bucket_bound_us(i)
                ));
            } else {
                out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cum}\n"));
            }
        }
        out.push_str(&format!("{name}_sum {}\n", self.sum_us));
        out.push_str(&format!("{name}_count {}\n", self.count));
    }

    /// Convenience: the exposition as its own string.
    pub fn to_exposition(&self, name: &str) -> String {
        let mut out = String::new();
        self.render(name, &mut out);
        out
    }

    /// Parse one histogram family back out of an exposition page
    /// (inverse of [`render`](Self::render) — the round trip is exact).
    /// Returns `None` when the family is absent, a bucket line is
    /// malformed, the cumulative counts are not monotone, or the ladder
    /// does not match this module's.
    pub fn parse(page: &str, name: &str) -> Option<LatencyHistogram> {
        let bucket_prefix = format!("{name}_bucket{{le=\"");
        let sum_prefix = format!("{name}_sum ");
        let count_prefix = format!("{name}_count ");
        let mut cum: Vec<(String, u64)> = Vec::new();
        let mut sum_us: Option<u128> = None;
        let mut count: Option<u64> = None;
        for line in page.lines() {
            if let Some(rest) = line.strip_prefix(&bucket_prefix) {
                let (le, value) = rest.split_once("\"} ")?;
                cum.push((le.to_string(), value.parse().ok()?));
            } else if let Some(v) = line.strip_prefix(&sum_prefix) {
                sum_us = Some(v.parse().ok()?);
            } else if let Some(v) = line.strip_prefix(&count_prefix) {
                count = Some(v.parse().ok()?);
            }
        }
        if cum.len() != BUCKETS {
            return None;
        }
        let mut h = LatencyHistogram::new();
        let mut prev = 0u64;
        for (i, (le, c)) in cum.iter().enumerate() {
            let want = if i < FINITE_BUCKETS {
                bucket_bound_us(i).to_string()
            } else {
                "+Inf".to_string()
            };
            if *le != want || *c < prev {
                return None;
            }
            h.counts[i] = c - prev;
            prev = *c;
        }
        h.count = count?;
        h.sum_us = sum_us?;
        if h.count != prev {
            return None;
        }
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        // 0 and 1 land in the first bucket (le="1").
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        // Exactly-on-boundary samples land in the bucket they bound:
        // le is an *upper* (inclusive) bound.
        for i in 0..FINITE_BUCKETS {
            let bound = bucket_bound_us(i);
            assert_eq!(bucket_index(bound), i, "bound {bound}");
            if bound > 2 {
                assert_eq!(bucket_index(bound - 1), i, "just under {bound}");
            }
            assert_eq!(bucket_index(bound + 1), i + 1, "just over {bound}");
        }
        // Everything past 2^26 µs clamps into the +Inf bucket.
        let max = bucket_bound_us(FINITE_BUCKETS - 1);
        assert_eq!(bucket_index(max), FINITE_BUCKETS - 1);
        assert_eq!(bucket_index(max + 1), FINITE_BUCKETS);
        assert_eq!(bucket_index(u64::MAX), FINITE_BUCKETS);
    }

    #[test]
    fn record_count_sum_mean() {
        let mut h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile_us(0.5), 0);
        for us in [0, 1, 2, 3, 100, 1_000_000] {
            h.record_us(us);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum_us(), 1_000_106);
        assert_eq!(h.mean_us(), 1_000_106 / 6);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record_us(3); // bucket le="4"
        }
        h.record_us(1_000_000); // bucket le="1048576"
        assert_eq!(h.p50_us(), 4);
        assert_eq!(h.p95_us(), 4);
        assert_eq!(h.quantile_us(1.0), 1 << 20);
        // Overflow samples report one bound past the ladder.
        let mut h = LatencyHistogram::new();
        h.record_us(u64::MAX);
        assert_eq!(h.p50_us(), bucket_bound_us(FINITE_BUCKETS));
    }

    #[test]
    fn merge_is_exact_associative_and_commutative() {
        let mk = |samples: &[u64]| {
            let mut h = LatencyHistogram::new();
            for &s in samples {
                h.record_us(s);
            }
            h
        };
        let a = mk(&[1, 5, 70_000]);
        let b = mk(&[2, 2, 1 << 30]);
        let c = mk(&[0, 64, 65]);

        // Merging equals recording everything into one histogram.
        let mut all = mk(&[1, 5, 70_000, 2, 2, 1 << 30, 0, 64, 65]);
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        assert_eq!(ab_c, all);

        // Associativity: (a+b)+c == a+(b+c).
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);

        // Commutativity: c+b+a == a+b+c.
        let mut cba = c.clone();
        cba.merge(&b);
        cba.merge(&a);
        assert_eq!(cba, ab_c);

        // Merging an empty histogram is the identity.
        all.merge(&LatencyHistogram::new());
        assert_eq!(all, ab_c);
    }

    #[test]
    fn exposition_round_trips_exactly() {
        let mut h = LatencyHistogram::new();
        for us in [0, 1, 2, 17, 1_000, 60_000_000, u64::MAX] {
            h.record_us(us);
        }
        let page = h.to_exposition("sim_server_sweep_time_us");
        // Cumulative bucket lines, ending at +Inf == count.
        assert!(
            page.contains("sim_server_sweep_time_us_bucket{le=\"1\"} 2\n"),
            "{page}"
        );
        assert!(
            page.contains("sim_server_sweep_time_us_bucket{le=\"+Inf\"} 7\n"),
            "{page}"
        );
        assert!(
            page.contains("sim_server_sweep_time_us_count 7\n"),
            "{page}"
        );
        let back = LatencyHistogram::parse(&page, "sim_server_sweep_time_us").unwrap();
        assert_eq!(back, h);
        // Round trip through a page that also carries unrelated lines.
        let noisy = format!("# HELP x y\nother_total 3\n{page}trailing 1\n");
        assert_eq!(
            LatencyHistogram::parse(&noisy, "sim_server_sweep_time_us").unwrap(),
            h
        );
    }

    #[test]
    fn parse_rejects_malformed_families() {
        let h = {
            let mut h = LatencyHistogram::new();
            h.record_us(3); // bucket le="4"
            h
        };
        let page = h.to_exposition("m");
        // Absent family.
        assert!(LatencyHistogram::parse(&page, "other").is_none());
        // Non-monotone cumulative counts.
        let broken = page.replace("m_bucket{le=\"4\"} 1", "m_bucket{le=\"4\"} 9");
        assert!(LatencyHistogram::parse(&broken, "m").is_none());
        // Missing a bucket line.
        let truncated: String = page
            .lines()
            .filter(|l| !l.contains("le=\"2\""))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(LatencyHistogram::parse(&truncated, "m").is_none());
        // Count disagreeing with the +Inf cumulative.
        let lying = page.replace("m_count 1", "m_count 5");
        assert!(LatencyHistogram::parse(&lying, "m").is_none());
    }
}
