//! # telemetry — performance counters, span recording and Perfetto export
//!
//! The paper argues from hardware observability: per-kernel runtimes,
//! bandwidth behaviour, register pressure and 10 Hz WT230 power samples.
//! This crate is the simulated equivalent. It gives the device models and
//! the harness three things:
//!
//! * [`Counters`] — a per-launch performance-counter snapshot: dynamic
//!   instruction mix by [`kernel_ir::OpClass`], vector-width histogram,
//!   cache hit rates and streaming-vs-scattered DRAM lines, plus occupancy
//!   and register pressure from the Mali model. The counting rules mirror
//!   `kernel_ir::stats::StaticMix` exactly, so static prediction and
//!   dynamic measurement can be diffed (see the crate tests).
//! * [`TraceBuilder`] + [`WorkSpan`] — simulated-time span recording
//!   exported as Chrome trace-event JSON, openable in Perfetto or
//!   `chrome://tracing`, with power samples overlaid as counter tracks.
//! * [`log`] — a tiny leveled stderr logger so the harness's progress
//!   chatter can be silenced (`--quiet`) or expanded (`--verbose`)
//!   without threading a verbosity flag through every call.
//! * [`LatencyHistogram`] — fixed-ladder log-bucketed latency histograms
//!   with exact merge and Prometheus-style exposition, the unit of
//!   wall-clock truth for the serving fleet's `/metrics` pages (the
//!   older [`DurationStats`] reservoir remains for single-process use).

pub mod counters;
pub mod hist;
pub mod log;
pub mod span;
pub mod stats;
pub mod trace;

pub use counters::{
    op_class_index, CounterTracer, Counters, OP_CLASS_COUNT, OP_CLASS_NAMES, WIDTH_BUCKETS,
};
pub use hist::LatencyHistogram;
pub use span::{CommandSpan, RunTelemetry, WorkSpan};
pub use stats::DurationStats;
pub use trace::{json_escape, TraceBuilder};
