//! Simulated-time execution intervals.

/// One work-group's execution interval on one core, in simulated seconds.
///
/// Both device models schedule work-groups onto cores with a per-core
/// running clock; recording the (start, end) of each dispatch gives the
/// per-core lanes of the Perfetto view.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkSpan {
    /// Core index (shader core on the Mali, CPU core on the A15).
    pub core: u32,
    /// Linear work-group id.
    pub group: u32,
    pub start_s: f64,
    pub end_s: f64,
}

impl WorkSpan {
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// Total busy time across spans (the per-core union is not needed: spans
/// on one core never overlap by construction).
pub fn total_busy_s(spans: &[WorkSpan]) -> f64 {
    spans.iter().map(WorkSpan::duration_s).sum()
}

/// Makespan: latest end time over all spans (0 for none).
pub fn makespan_s(spans: &[WorkSpan]) -> f64 {
    spans.iter().map(|s| s.end_s).fold(0.0, f64::max)
}

/// One queue-level command interval: a kernel launch, a host↔device
/// transfer, a map/unmap, or a CPU parallel region. All spans of one run
/// share a clock (queue-relative for GPU runs, region-relative for CPU).
#[derive(Clone, Debug, PartialEq)]
pub struct CommandSpan {
    /// Display name (kernel name, `map 4096 B`, …).
    pub name: String,
    /// Category: `kernel`, `write`, `read`, `map`, `unmap` or `cpu`.
    pub cat: &'static str,
    pub start_s: f64,
    pub end_s: f64,
}

impl CommandSpan {
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// Everything one measured run hands to the observability layer: the
/// merged counter snapshot, the queue-level command spans and the
/// per-core work-group spans (same clock as the commands).
#[derive(Clone, Debug, Default)]
pub struct RunTelemetry {
    pub counters: crate::Counters,
    pub commands: Vec<CommandSpan>,
    pub core_spans: Vec<WorkSpan>,
}

impl RunTelemetry {
    /// Total time spent in kernel (or CPU-region) command spans — the
    /// quantity the harness reports as `time_s` for a run.
    pub fn kernel_time_s(&self) -> f64 {
        self.commands
            .iter()
            .filter(|c| matches!(c.cat, "kernel" | "cpu"))
            .map(CommandSpan::duration_s)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_and_makespan() {
        let spans = [
            WorkSpan {
                core: 0,
                group: 0,
                start_s: 0.0,
                end_s: 1.0,
            },
            WorkSpan {
                core: 1,
                group: 1,
                start_s: 0.0,
                end_s: 2.5,
            },
            WorkSpan {
                core: 0,
                group: 2,
                start_s: 1.0,
                end_s: 1.5,
            },
        ];
        assert!((total_busy_s(&spans) - 4.0).abs() < 1e-12);
        assert!((makespan_s(&spans) - 2.5).abs() < 1e-12);
        assert_eq!(makespan_s(&[]), 0.0);
        assert!((spans[2].duration_s() - 0.5).abs() < 1e-12);
    }
}
