//! Tiny leveled stderr logger.
//!
//! The harness's progress chatter used to be raw `eprintln!` calls; the
//! CSV/JSONL subcommands need a way to silence them without threading a
//! verbosity flag through every function. One global level, three tiers:
//!
//! * `Quiet` — nothing (the default for machine-readable subcommands);
//! * `Progress` — the per-cell progress lines (the interactive default);
//! * `Debug` — extra detail (`--verbose`).
//!
//! Everything goes to stderr, so stdout stays machine-parsable.

use std::sync::atomic::{AtomicU8, Ordering};

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    Quiet = 0,
    Progress = 1,
    Debug = 2,
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Progress as u8);

pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Quiet,
        1 => Level::Progress,
        _ => Level::Debug,
    }
}

pub fn enabled(at: Level) -> bool {
    level() >= at
}

/// Progress-tier line (shown unless `--quiet`).
pub fn progress(msg: &str) {
    if enabled(Level::Progress) {
        eprintln!("{msg}");
    }
}

/// Debug-tier line (shown only with `--verbose`).
pub fn debug(msg: &str) {
    if enabled(Level::Debug) {
        eprintln!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_roundtrip_and_ordering() {
        let prev = level();
        set_level(Level::Quiet);
        assert_eq!(level(), Level::Quiet);
        assert!(!enabled(Level::Progress));
        set_level(Level::Debug);
        assert!(enabled(Level::Progress));
        assert!(enabled(Level::Debug));
        set_level(Level::Progress);
        assert!(enabled(Level::Progress));
        assert!(!enabled(Level::Debug));
        set_level(prev);
    }
}
