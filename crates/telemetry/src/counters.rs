//! Per-launch performance-counter snapshots.
//!
//! [`Counters`] accumulates the interpreter's [`ExecTracer`] event stream
//! using the *same counting rules* as the static analyzer
//! (`kernel_ir::stats::StaticMix`): float binary ops count `width` flops, a
//! float mad counts `2 × width`, special functions (sqrt/rsqrt/exp/log)
//! count lanes into `special_ops`, and every integer/move/compare/query op
//! counts one `int_op` regardless of width. On a loop-free kernel the
//! dynamic totals therefore equal `items × StaticMix` exactly — the
//! contract the telemetry tests pin down.

use kernel_ir::stats::StaticMix;
use kernel_ir::{AccessKind, ExecTracer, MemAccess, MemSpace, OpClass, Pattern, VType};
use memsim::HierarchyStats;

/// Number of [`OpClass`] variants (fixed by `kernel-ir`).
pub const OP_CLASS_COUNT: usize = 9;

/// Display names, index-aligned with [`op_class_index`].
pub const OP_CLASS_NAMES: [&str; OP_CLASS_COUNT] = [
    "simple",
    "mul",
    "mad",
    "div",
    "special",
    "rsqrt",
    "transcendental",
    "move",
    "horizontal",
];

/// Stable index of an op class into [`Counters::ops_by_class`].
pub fn op_class_index(c: OpClass) -> usize {
    match c {
        OpClass::Simple => 0,
        OpClass::Mul => 1,
        OpClass::Mad => 2,
        OpClass::Div => 3,
        OpClass::Special => 4,
        OpClass::Rsqrt => 5,
        OpClass::Transcendental => 6,
        OpClass::Move => 7,
        OpClass::Horizontal => 8,
    }
}

/// Vector widths tracked by the histogram (lane counts are powers of two
/// up to `MAX_LANES = 16`).
pub const WIDTH_BUCKETS: [u8; 5] = [1, 2, 4, 8, 16];

fn width_index(w: u8) -> usize {
    match w {
        1 => 0,
        2 => 1,
        4 => 2,
        8 => 3,
        _ => 4,
    }
}

/// One launch's (or one aggregated region's) performance counters.
///
/// The instruction-stream fields are filled during execution via the
/// tracer hooks; the memory-hierarchy block is copied from the device's
/// [`HierarchyStats`] after the run; the occupancy block only applies to
/// GPU launches and stays zero elsewhere.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Counters {
    // ---- dynamic instruction stream ----
    /// Issue counts per op class (see [`OP_CLASS_NAMES`]).
    pub ops_by_class: [u64; OP_CLASS_COUNT],
    /// Issue counts per vector width 1/2/4/8/16 (see [`WIDTH_BUCKETS`]).
    pub width_hist: [u64; 5],
    /// Floating-point operations (a float mad counts `2 × width`).
    pub flops: f64,
    /// Integer/move/compare/query operations (one per issue, like
    /// `StaticMix`).
    pub int_ops: f64,
    /// Special-function lanes (sqrt/rsqrt/exp/log × width).
    pub special_ops: f64,
    /// Memory load instructions (any width; by-value scalar args excluded).
    pub loads: u64,
    /// Memory store instructions.
    pub stores: u64,
    /// Atomic RMW instructions.
    pub atomics: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    /// Accesses to `__local` memory (loads + stores + atomics).
    pub local_accesses: u64,
    /// Multi-lane accesses with arbitrary per-lane addresses.
    pub gather_accesses: u64,
    /// Multi-lane contiguous (vload/vstore-style) accesses.
    pub contiguous_accesses: u64,
    /// Work-items that waited at barriers (summed per barrier).
    pub barriers: u64,
    pub loop_iters: u64,
    pub threads: u64,
    pub groups: u64,

    // ---- memory-hierarchy outcome (from `HierarchyStats`) ----
    /// Probes that reached the cache hierarchy.
    pub hier_accesses: u64,
    pub l1_hits: u64,
    pub l2_hits: u64,
    /// Cache lines filled from DRAM.
    pub dram_lines: u64,
    /// DRAM lines fetched by streaming (sequential) walks.
    pub dram_stream_lines: u64,
    /// DRAM lines fetched scattered (the paper's bandwidth-wasting case).
    pub dram_scatter_lines: u64,
    /// Dirty lines written back to DRAM.
    pub dram_writeback_lines: u64,

    // ---- occupancy / register pressure (GPU launches only) ----
    /// Threads resident per shader core, as limited by register pressure.
    pub resident_threads: u32,
    /// The device's architectural thread capacity per core.
    pub max_resident_threads: u32,
    /// Registers each thread of this kernel occupies.
    pub registers_per_thread: u32,
}

impl Counters {
    // ---- tracer-event recording (same names as `ExecTracer` methods so
    // device tracers can forward verbatim) ----

    pub fn note_op(&mut self, class: OpClass, ty: VType) {
        self.ops_by_class[op_class_index(class)] += 1;
        self.width_hist[width_index(ty.width)] += 1;
        let w = ty.width as f64;
        match class {
            OpClass::Special | OpClass::Rsqrt | OpClass::Transcendental => self.special_ops += w,
            OpClass::Mad => {
                if ty.elem.is_float() {
                    self.flops += 2.0 * w;
                } else {
                    self.int_ops += 1.0;
                }
            }
            OpClass::Move | OpClass::Horizontal => self.int_ops += 1.0,
            OpClass::Simple | OpClass::Mul | OpClass::Div => {
                if ty.elem.is_float() {
                    self.flops += w;
                } else {
                    self.int_ops += 1.0;
                }
            }
        }
    }

    pub fn note_mem(&mut self, a: &MemAccess) {
        match a.kind {
            AccessKind::Read => {
                self.loads += 1;
                self.bytes_read += a.bytes as u64;
            }
            AccessKind::Write => {
                self.stores += 1;
                self.bytes_written += a.bytes as u64;
            }
            AccessKind::Atomic => self.atomics += 1,
        }
        if a.space == MemSpace::Local {
            self.local_accesses += 1;
        }
        match a.pattern {
            Pattern::Gather => self.gather_accesses += 1,
            Pattern::Contiguous => self.contiguous_accesses += 1,
            Pattern::Scalar => {}
        }
    }

    pub fn note_barrier(&mut self, items: u32) {
        self.barriers += items as u64;
    }

    pub fn note_loop_iter(&mut self) {
        self.loop_iters += 1;
        // A back-edge is address arithmetic, same as `StaticMix`'s
        // per-trip `int_ops` charge.
        self.int_ops += 1.0;
    }

    pub fn note_thread_start(&mut self) {
        self.threads += 1;
    }

    pub fn note_group_start(&mut self) {
        self.groups += 1;
    }

    /// Copy the memory-hierarchy outcome of a finished run.
    pub fn absorb_hier(&mut self, h: &HierarchyStats) {
        self.hier_accesses = h.accesses;
        self.l1_hits = h.l1_hits;
        self.l2_hits = h.l2_hits;
        self.dram_lines = h.dram_lines;
        self.dram_stream_lines = h.traffic.stream_lines;
        self.dram_scatter_lines = h.traffic.scatter_lines;
        self.dram_writeback_lines = h.traffic.writeback_lines;
    }

    /// Combine two launches of the same cell (e.g. the two stages of the
    /// reduction benchmark). Stream/hierarchy fields add; the occupancy
    /// block keeps the more register-pressured (smaller-occupancy) launch.
    pub fn merge(&self, other: &Counters) -> Counters {
        let mut out = self.clone();
        out.merge_in(other);
        out
    }

    /// In-place [`Counters::merge`] — the hot path of the parallel engine,
    /// which absorbs one per-group counter shard per work-group without
    /// cloning. Field additions are integer-valued (even the `f64` op
    /// totals), so the result is independent of merge association and the
    /// serial/parallel engines agree bit for bit.
    pub fn merge_in(&mut self, other: &Counters) {
        let self_occ = self.occupancy();
        for i in 0..OP_CLASS_COUNT {
            self.ops_by_class[i] += other.ops_by_class[i];
        }
        for i in 0..self.width_hist.len() {
            self.width_hist[i] += other.width_hist[i];
        }
        self.flops += other.flops;
        self.int_ops += other.int_ops;
        self.special_ops += other.special_ops;
        self.loads += other.loads;
        self.stores += other.stores;
        self.atomics += other.atomics;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.local_accesses += other.local_accesses;
        self.gather_accesses += other.gather_accesses;
        self.contiguous_accesses += other.contiguous_accesses;
        self.barriers += other.barriers;
        self.loop_iters += other.loop_iters;
        self.threads += other.threads;
        self.groups += other.groups;
        self.hier_accesses += other.hier_accesses;
        self.l1_hits += other.l1_hits;
        self.l2_hits += other.l2_hits;
        self.dram_lines += other.dram_lines;
        self.dram_stream_lines += other.dram_stream_lines;
        self.dram_scatter_lines += other.dram_scatter_lines;
        self.dram_writeback_lines += other.dram_writeback_lines;
        let other_occ = other.occupancy();
        if other.max_resident_threads != 0
            && (self.max_resident_threads == 0 || other_occ < self_occ)
        {
            self.resident_threads = other.resident_threads;
            self.max_resident_threads = other.max_resident_threads;
            self.registers_per_thread = other.registers_per_thread;
        }
    }

    // ---- derived rates ----

    /// Total issued arithmetic/move ops.
    pub fn total_ops(&self) -> u64 {
        self.ops_by_class.iter().sum()
    }

    /// L1 hit rate over all hierarchy probes (0 when the device has no L1,
    /// e.g. the Mali's shader cores probe a shared L2 only).
    pub fn l1_hit_rate(&self) -> f64 {
        ratio(self.l1_hits, self.hier_accesses)
    }

    /// L2 hit rate over the probes that reached the L2.
    pub fn l2_hit_rate(&self) -> f64 {
        ratio(self.l2_hits, self.hier_accesses - self.l1_hits)
    }

    /// Fraction of DRAM line fills that were streaming.
    pub fn dram_stream_fraction(&self) -> f64 {
        ratio(
            self.dram_stream_lines,
            self.dram_stream_lines + self.dram_scatter_lines,
        )
    }

    /// Resident threads over architectural capacity (GPU launches).
    pub fn occupancy(&self) -> f64 {
        if self.max_resident_threads == 0 {
            0.0
        } else {
            self.resident_threads as f64 / self.max_resident_threads as f64
        }
    }

    /// Mean lanes per issued op — the SIMD-utilization headline.
    pub fn avg_vector_width(&self) -> f64 {
        let issues: u64 = self.width_hist.iter().sum();
        if issues == 0 {
            return 0.0;
        }
        let lanes: u64 = self
            .width_hist
            .iter()
            .zip(WIDTH_BUCKETS)
            .map(|(n, w)| n * w as u64)
            .sum();
        lanes as f64 / issues as f64
    }

    /// Measured flops per byte of memory traffic (roofline x-axis).
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = (self.bytes_read + self.bytes_written) as f64;
        if bytes > 0.0 {
            self.flops / bytes
        } else {
            f64::INFINITY
        }
    }

    /// Per-work-item view of the dynamic stream, comparable with
    /// [`StaticMix`] on loop-free kernels (`assert_eq!`-comparable after
    /// dividing by the launch's item count).
    pub fn per_item_mix(&self) -> StaticMix {
        let n = self.threads.max(1) as f64;
        StaticMix {
            flops: self.flops / n,
            int_ops: self.int_ops / n,
            special_ops: self.special_ops / n,
            loads: self.loads as f64 / n,
            stores: self.stores as f64 / n,
            atomics: self.atomics as f64 / n,
            bytes_read: self.bytes_read as f64 / n,
            bytes_written: self.bytes_written as f64 / n,
            barriers: 0,
            has_dynamic_loops: false,
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Standalone tracer: counters with nothing else attached. Device cost
/// models embed a [`Counters`] instead and forward their own events.
#[derive(Clone, Debug, Default)]
pub struct CounterTracer(pub Counters);

impl ExecTracer for CounterTracer {
    fn op(&mut self, class: OpClass, ty: VType) {
        self.0.note_op(class, ty);
    }
    fn mem(&mut self, access: &MemAccess, _lanes: &[u64]) {
        self.0.note_mem(access);
    }
    fn barrier(&mut self, items: u32) {
        self.0.note_barrier(items);
    }
    fn loop_iter(&mut self) {
        self.0.note_loop_iter();
    }
    fn thread_start(&mut self) {
        self.0.note_thread_start();
    }
    fn group_start(&mut self) {
        self.0.note_group_start();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel_ir::Scalar;

    fn mem(kind: AccessKind, space: MemSpace, bytes: u32, pattern: Pattern) -> MemAccess {
        MemAccess {
            space,
            kind,
            stream: 0,
            addr: 0,
            bytes,
            elem: Scalar::F32,
            width: if pattern == Pattern::Scalar { 1 } else { 4 },
            pattern,
        }
    }

    #[test]
    fn op_accounting_follows_staticmix_rules() {
        let mut c = Counters::default();
        c.note_op(OpClass::Simple, VType::new(Scalar::F32, 4)); // 4 flops
        c.note_op(OpClass::Mad, VType::new(Scalar::F32, 2)); // 4 flops
        c.note_op(OpClass::Mad, VType::scalar(Scalar::I32)); // 1 int op
        c.note_op(OpClass::Move, VType::new(Scalar::F32, 8)); // 1 int op
        c.note_op(OpClass::Rsqrt, VType::new(Scalar::F32, 4)); // 4 special
        assert_eq!(c.flops, 8.0);
        assert_eq!(c.int_ops, 2.0);
        assert_eq!(c.special_ops, 4.0);
        assert_eq!(c.total_ops(), 5);
        assert_eq!(c.width_hist, [1, 1, 2, 1, 0]);
        let avg = c.avg_vector_width();
        assert!((avg - (1 + 2 + 4 + 4 + 8) as f64 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn mem_accounting() {
        let mut c = Counters::default();
        c.note_mem(&mem(
            AccessKind::Read,
            MemSpace::Global,
            16,
            Pattern::Contiguous,
        ));
        c.note_mem(&mem(
            AccessKind::Write,
            MemSpace::Global,
            4,
            Pattern::Scalar,
        ));
        c.note_mem(&mem(
            AccessKind::Atomic,
            MemSpace::Local,
            4,
            Pattern::Scalar,
        ));
        c.note_mem(&mem(
            AccessKind::Read,
            MemSpace::Global,
            16,
            Pattern::Gather,
        ));
        assert_eq!(c.loads, 2);
        assert_eq!(c.stores, 1);
        assert_eq!(c.atomics, 1);
        assert_eq!(c.bytes_read, 32);
        assert_eq!(c.bytes_written, 4);
        assert_eq!(c.local_accesses, 1);
        assert_eq!(c.gather_accesses, 1);
        assert_eq!(c.contiguous_accesses, 1);
    }

    #[test]
    fn hit_rates_and_occupancy() {
        let c = Counters {
            hier_accesses: 100,
            l1_hits: 80,
            l2_hits: 10,
            dram_stream_lines: 9,
            dram_scatter_lines: 1,
            resident_threads: 128,
            max_resident_threads: 256,
            ..Default::default()
        };
        assert!((c.l1_hit_rate() - 0.8).abs() < 1e-12);
        assert!((c.l2_hit_rate() - 0.5).abs() < 1e-12);
        assert!((c.dram_stream_fraction() - 0.9).abs() < 1e-12);
        assert!((c.occupancy() - 0.5).abs() < 1e-12);
        // Degenerate denominators must not divide by zero.
        let d = Counters::default();
        assert_eq!(d.l1_hit_rate(), 0.0);
        assert_eq!(d.occupancy(), 0.0);
        assert_eq!(d.avg_vector_width(), 0.0);
    }

    #[test]
    fn merge_adds_streams_and_keeps_tighter_occupancy() {
        let a = Counters {
            flops: 10.0,
            loads: 3,
            resident_threads: 256,
            max_resident_threads: 256,
            ..Default::default()
        };
        let b = Counters {
            flops: 5.0,
            loads: 1,
            resident_threads: 64,
            max_resident_threads: 256,
            registers_per_thread: 16,
            ..Default::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.flops, 15.0);
        assert_eq!(m.loads, 4);
        assert_eq!(m.resident_threads, 64);
        assert_eq!(m.registers_per_thread, 16);
        // And when the other side has no GPU block at all, keep ours.
        let m2 = a.merge(&Counters::default());
        assert_eq!(m2.resident_threads, 256);
    }
}
