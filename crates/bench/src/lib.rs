//! Criterion benches for the reproduction live in `benches/`; see the crate manifest.
