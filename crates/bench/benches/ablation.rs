//! §III per-technique ablation benches: vector-width sweep, work-group
//! sweep, the dmmm optimization stack, host data paths and compiler hints.
//! Prints the ablation table once, then times each technique's pipeline.
//! (Plain timing main — the workspace builds offline, so no criterion.)

use harness::ablation;

fn time_iters<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) {
    std::hint::black_box(f());
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let per = t0.elapsed().as_secs_f64() / iters as f64;
    println!("  {name:<40} {:>10.3} ms/iter", per * 1e3);
}

fn main() {
    eprintln!("\n{}", ablation::report(true));

    println!("ablation: technique-pipeline cost");

    time_iters("vector_width_sweep", 3, || {
        let r = ablation::vector_width_sweep(1 << 12);
        assert!(r.best().is_some());
        r.best_cost()
    });

    time_iters("wg_sweep_dmmm", 3, || {
        let (r, driver) = ablation::wg_sweep_dmmm(32);
        assert!(driver > 0);
        r.best_cost()
    });

    time_iters("dmmm_stack", 3, || {
        let s = ablation::dmmm_stack(32);
        assert_eq!(s.len(), 3);
        s.last().unwrap().1
    });

    time_iters("datapath_compare", 3, || {
        let (copy, map) = ablation::datapath_compare(1 << 14);
        assert!(copy > map);
        copy / map
    });

    time_iters("hints_effect", 3, || {
        let (no, yes) = ablation::hints_effect(256);
        no / yes
    });
}
