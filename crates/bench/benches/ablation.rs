//! §III per-technique ablation benches: vector-width sweep, work-group
//! sweep, the dmmm optimization stack, host data paths and compiler hints.
//! Prints the ablation table once, then times each technique's pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use harness::ablation;

fn ablation_benches(c: &mut Criterion) {
    eprintln!("\n{}", ablation::report(true));

    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);

    g.bench_function("vector_width_sweep", |b| {
        b.iter(|| {
            let r = ablation::vector_width_sweep(1 << 12);
            assert!(r.best().is_some());
            r.best_cost()
        })
    });

    g.bench_function("wg_sweep_dmmm", |b| {
        b.iter(|| {
            let (r, driver) = ablation::wg_sweep_dmmm(32);
            assert!(driver > 0);
            r.best_cost()
        })
    });

    g.bench_function("dmmm_stack", |b| {
        b.iter(|| {
            let s = ablation::dmmm_stack(32);
            assert_eq!(s.len(), 3);
            s.last().unwrap().1
        })
    });

    g.bench_function("datapath_compare", |b| {
        b.iter(|| {
            let (copy, map) = ablation::datapath_compare(1 << 14);
            assert!(copy > map);
            copy / map
        })
    });

    g.bench_function("hints_effect", |b| {
        b.iter(|| {
            let (no, yes) = ablation::hints_effect(256);
            no / yes
        })
    });

    g.finish();
}

criterion_group!(benches, ablation_benches);
criterion_main!(benches);
