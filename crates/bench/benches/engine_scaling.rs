//! Scaling of the parallel simulation engine (`sim-pool` + sharded
//! work-group execution): the same launches simulated with one worker and
//! with every available worker. The engine's contract is that only
//! wall-clock changes — the reports must be bit-identical — so this bench
//! asserts equality while it times. (Plain timing main — the workspace
//! builds offline, so no criterion.)

use kernel_ir::prelude::*;
use kernel_ir::{Access, BufferData};
use mali_hpc::largest_dividing_pow2;

/// Compute-heavy map kernel: enough per-item work that group simulation
/// dominates and the pool has something to chew on.
fn heavy_kernel(n_ops: i64) -> Program {
    let mut kb = KernelBuilder::new("bench_engine_scaling");
    let x = kb.arg_global(Scalar::F32, Access::ReadWrite, true);
    let gid = kb.query_global_id(0);
    let v = kb.load(Scalar::F32, x, gid.into());
    let acc = kb.mov(v.into(), VType::scalar(Scalar::F32));
    kb.for_loop(
        Operand::ImmI(0),
        Operand::ImmI(n_ops),
        Operand::ImmI(1),
        |kb, _| {
            kb.mad_into(
                acc,
                acc.into(),
                Operand::ImmF(1.000001),
                Operand::ImmF(1e-8),
            );
        },
    );
    kb.store(x, gid.into(), acc.into());
    kb.finish()
}

fn gpu_pass(p: &Program, items: usize, wg: usize) -> (f64, mali_gpu::MaliReport) {
    let gpu = mali_gpu::MaliT604::default();
    let mut pool = MemoryPool::new();
    let x = pool.add(BufferData::from(vec![1.0f32; items]));
    let t0 = std::time::Instant::now();
    let rep = gpu
        .run(
            p,
            &[ArgBinding::Global(x)],
            &mut pool,
            NDRange::d1(items, wg),
        )
        .unwrap();
    (t0.elapsed().as_secs_f64(), rep)
}

fn cpu_pass(p: &Program, items: usize, wg: usize) -> (f64, cpu_sim::CpuReport) {
    let cpu = cpu_sim::CortexA15::default();
    let mut pool = MemoryPool::new();
    let x = pool.add(BufferData::from(vec![1.0f32; items]));
    let t0 = std::time::Instant::now();
    let rep = cpu
        .run(
            p,
            &[ArgBinding::Global(x)],
            &mut pool,
            NDRange::d1(items, wg),
            2,
        )
        .unwrap();
    (t0.elapsed().as_secs_f64(), rep)
}

fn main() {
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let items = 1 << 14;
    // The hoisted tuning helper picks a launchable work-group size.
    let wg = largest_dividing_pow2(items, 128);
    let p = heavy_kernel(256);
    println!("engine scaling: {items} items, wg {wg}, host threads {host}\n");

    // Warm-up (page in buffers, decode cache).
    sim_pool::set_threads(1);
    let _ = gpu_pass(&p, items, wg);

    sim_pool::set_threads(1);
    let (gpu_serial, gpu_rep1) = gpu_pass(&p, items, wg);
    let (cpu_serial, cpu_rep1) = cpu_pass(&p, items, wg);
    sim_pool::set_threads(host);
    let (gpu_par, gpu_repn) = gpu_pass(&p, items, wg);
    let (cpu_par, cpu_repn) = cpu_pass(&p, items, wg);

    assert_eq!(
        gpu_rep1.time_s.to_bits(),
        gpu_repn.time_s.to_bits(),
        "Mali report must be bit-identical across worker counts"
    );
    assert_eq!(
        cpu_rep1.time_s.to_bits(),
        cpu_repn.time_s.to_bits(),
        "CPU report must be bit-identical across worker counts"
    );

    println!(
        "  mali_t604   1 thread: {:>8.3} ms   {host} threads: {:>8.3} ms   ({:.2}x)",
        gpu_serial * 1e3,
        gpu_par * 1e3,
        gpu_serial / gpu_par
    );
    println!(
        "  cortex_a15  1 thread: {:>8.3} ms   {host} threads: {:>8.3} ms   ({:.2}x)",
        cpu_serial * 1e3,
        cpu_par * 1e3,
        cpu_serial / cpu_par
    );
    println!("\n  reports bit-identical across worker counts: ok");
    println!("  (suite-level numbers: `cargo run --release -p harness -- bench-self`)");
}
