//! Figure 2 regeneration bench: runs every benchmark × version × precision
//! at test scale and prints the speedup rows (the figure's bar heights),
//! then times the end-to-end simulation cost of each bar. (Plain timing
//! main — the workspace builds offline, so no criterion.)

use hpc_kernels::{test_suite, Precision, Variant};

fn time_iters<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) {
    std::hint::black_box(f()); // warm-up
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let per = t0.elapsed().as_secs_f64() / iters as f64;
    println!("  {name:<40} {:>10.3} ms/iter", per * 1e3);
}

fn bench_fig2(prec: Precision, tag: &str) {
    let suite = test_suite();
    // Print the figure rows once (paper-vs-measured shape at this scale).
    eprintln!("\nFigure 2{tag} rows (test scale, speedup over Serial):");
    for b in &suite {
        if let Ok(serial) = b.run(Variant::Serial, prec) {
            let mut row = format!("  {:<7}", b.name());
            for v in [Variant::OpenMp, Variant::OpenCl, Variant::OpenClOpt] {
                match b.run(v, prec) {
                    Ok(r) => row.push_str(&format!(" {:>7.2}", serial.time_s / r.time_s)),
                    Err(_) => row.push_str(&format!(" {:>7}", "-")),
                }
            }
            eprintln!("{row}");
        }
    }
    println!("fig2{tag}: simulation cost per bar");
    for b in test_suite() {
        let name = b.name().to_string();
        for v in Variant::ALL {
            // Skip the known amcd double-precision compiler bug.
            if b.run(v, prec).is_err() {
                continue;
            }
            time_iters(
                &format!("{name}/{}", v.label().replace(' ', "_")),
                3,
                || {
                    let r = b.run(v, prec).expect("variant runs");
                    assert!(r.validated);
                    r.time_s
                },
            );
        }
    }
}

fn main() {
    bench_fig2(Precision::F32, "a_single");
    bench_fig2(Precision::F64, "b_double");
}
