//! Figure 2 regeneration bench: runs every benchmark × version × precision
//! at test scale and prints the speedup rows (the figure's bar heights)
//! once per group, while Criterion measures the end-to-end simulation cost
//! of each bar.

use criterion::{criterion_group, criterion_main, Criterion};
use hpc_kernels::{test_suite, Precision, Variant};

fn bench_fig2(c: &mut Criterion, prec: Precision, tag: &str) {
    let suite = test_suite();
    // Print the figure rows once (paper-vs-measured shape at this scale).
    eprintln!("\nFigure 2{tag} rows (test scale, speedup over Serial):");
    for b in &suite {
        if let Ok(serial) = b.run(Variant::Serial, prec) {
            let mut row = format!("  {:<7}", b.name());
            for v in [Variant::OpenMp, Variant::OpenCl, Variant::OpenClOpt] {
                match b.run(v, prec) {
                    Ok(r) => row.push_str(&format!(" {:>7.2}", serial.time_s / r.time_s)),
                    Err(_) => row.push_str(&format!(" {:>7}", "-")),
                }
            }
            eprintln!("{row}");
        }
    }
    let mut g = c.benchmark_group(format!("fig2{tag}"));
    g.sample_size(10);
    for b in test_suite() {
        let name = b.name().to_string();
        for v in Variant::ALL {
            // Skip the known amcd double-precision compiler bug.
            if b.run(v, prec).is_err() {
                continue;
            }
            g.bench_function(format!("{name}/{}", v.label().replace(' ', "_")), |bench| {
                bench.iter(|| {
                    let r = b.run(v, prec).expect("variant runs");
                    assert!(r.validated);
                    r.time_s
                })
            });
        }
    }
    g.finish();
}

fn fig2a(c: &mut Criterion) {
    bench_fig2(c, Precision::F32, "a_single");
}

fn fig2b(c: &mut Criterion) {
    bench_fig2(c, Precision::F64, "b_double");
}

criterion_group!(benches, fig2a, fig2b);
criterion_main!(benches);
