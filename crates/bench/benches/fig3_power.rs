//! Figure 3 regeneration bench: measured board power (simulated WT230) per
//! benchmark version, normalized to Serial. Criterion times the
//! run+measurement pipeline; the figure rows print once per group.

use criterion::{criterion_group, criterion_main, Criterion};
use harness::measure;
use hpc_kernels::{test_suite, Precision, Variant};
use powersim::PowerModel;

fn bench_fig3(c: &mut Criterion, prec: Precision, tag: &str) {
    let model = PowerModel::default();
    let suite = test_suite();
    eprintln!("\nFigure 3{tag} rows (test scale, power normalized to Serial):");
    for b in &suite {
        if let Ok(serial) = b.run(Variant::Serial, prec) {
            let (sm, _, _) = measure(&serial, &model, 1);
            let mut row = format!("  {:<7}", b.name());
            for v in [Variant::OpenMp, Variant::OpenCl, Variant::OpenClOpt] {
                match b.run(v, prec) {
                    Ok(r) => {
                        let (m, _, _) = measure(&r, &model, 2);
                        row.push_str(&format!(" {:>7.2}", m.mean_power_w / sm.mean_power_w));
                    }
                    Err(_) => row.push_str(&format!(" {:>7}", "-")),
                }
            }
            eprintln!("{row}");
        }
    }
    let mut g = c.benchmark_group(format!("fig3{tag}"));
    g.sample_size(10);
    // Benchmark the measurement pipeline on a representative subset (one
    // memory-bound, one atomic-bound, one compute-bound benchmark).
    for b in test_suite() {
        if !matches!(b.name(), "vecop" | "hist" | "nbody") {
            continue;
        }
        let name = b.name().to_string();
        g.bench_function(format!("{name}/measure_opt"), |bench| {
            bench.iter(|| {
                let r = b.run(Variant::OpenClOpt, prec).expect("runs");
                let (m, _, _) = measure(&r, &model, 3);
                m.mean_power_w
            })
        });
    }
    g.finish();
}

fn fig3a(c: &mut Criterion) {
    bench_fig3(c, Precision::F32, "a_single");
}

fn fig3b(c: &mut Criterion) {
    bench_fig3(c, Precision::F64, "b_double");
}

criterion_group!(benches, fig3a, fig3b);
criterion_main!(benches);
