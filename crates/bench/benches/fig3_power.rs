//! Figure 3 regeneration bench: measured board power (simulated WT230) per
//! benchmark version, normalized to Serial. Times the run+measurement
//! pipeline after printing the figure rows once. (Plain timing main — the
//! workspace builds offline, so no criterion.)

use harness::measure;
use hpc_kernels::{test_suite, Precision, Variant};
use powersim::PowerModel;

fn time_iters<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) {
    std::hint::black_box(f());
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let per = t0.elapsed().as_secs_f64() / iters as f64;
    println!("  {name:<40} {:>10.3} ms/iter", per * 1e3);
}

fn bench_fig3(prec: Precision, tag: &str) {
    let model = PowerModel::default();
    let suite = test_suite();
    eprintln!("\nFigure 3{tag} rows (test scale, power normalized to Serial):");
    for b in &suite {
        if let Ok(serial) = b.run(Variant::Serial, prec) {
            let (sm, _, _) = measure(&serial, &model, 1);
            let mut row = format!("  {:<7}", b.name());
            for v in [Variant::OpenMp, Variant::OpenCl, Variant::OpenClOpt] {
                match b.run(v, prec) {
                    Ok(r) => {
                        let (m, _, _) = measure(&r, &model, 2);
                        row.push_str(&format!(" {:>7.2}", m.mean_power_w / sm.mean_power_w));
                    }
                    Err(_) => row.push_str(&format!(" {:>7}", "-")),
                }
            }
            eprintln!("{row}");
        }
    }
    println!("fig3{tag}: measurement-pipeline cost");
    // Time the pipeline on a representative subset (one memory-bound, one
    // atomic-bound, one compute-bound benchmark).
    for b in test_suite() {
        if !matches!(b.name(), "vecop" | "hist" | "nbody") {
            continue;
        }
        let name = b.name().to_string();
        time_iters(&format!("{name}/measure_opt"), 3, || {
            let r = b.run(Variant::OpenClOpt, prec).expect("runs");
            let (m, _, _) = measure(&r, &model, 3);
            m.mean_power_w
        });
    }
}

fn main() {
    bench_fig3(Precision::F32, "a_single");
    bench_fig3(Precision::F64, "b_double");
}
