//! Figure 4 regeneration bench: energy-to-solution (simulated WT230
//! integration over the §IV-D repetition window) normalized to Serial.

use criterion::{criterion_group, criterion_main, Criterion};
use harness::measure;
use hpc_kernels::{test_suite, Precision, Variant};
use powersim::PowerModel;

fn bench_fig4(c: &mut Criterion, prec: Precision, tag: &str) {
    let model = PowerModel::default();
    let suite = test_suite();
    eprintln!("\nFigure 4{tag} rows (test scale, energy normalized to Serial):");
    for b in &suite {
        if let Ok(serial) = b.run(Variant::Serial, prec) {
            let (_, _, se) = measure(&serial, &model, 1);
            let mut row = format!("  {:<7}", b.name());
            for v in [Variant::OpenMp, Variant::OpenCl, Variant::OpenClOpt] {
                match b.run(v, prec) {
                    Ok(r) => {
                        let (_, _, e) = measure(&r, &model, 2);
                        row.push_str(&format!(" {:>7.2}", e / se));
                    }
                    Err(_) => row.push_str(&format!(" {:>7}", "-")),
                }
            }
            eprintln!("{row}");
        }
    }
    let mut g = c.benchmark_group(format!("fig4{tag}"));
    g.sample_size(10);
    for b in test_suite() {
        if !matches!(b.name(), "dmmm" | "2dcon" | "spmv") {
            continue;
        }
        let name = b.name().to_string();
        g.bench_function(format!("{name}/energy_ratio"), |bench| {
            bench.iter(|| {
                let s = b.run(Variant::Serial, prec).expect("serial");
                let o = b.run(Variant::OpenClOpt, prec).expect("opt");
                let (_, _, es) = measure(&s, &model, 4);
                let (_, _, eo) = measure(&o, &model, 5);
                eo / es
            })
        });
    }
    g.finish();
}

fn fig4a(c: &mut Criterion) {
    bench_fig4(c, Precision::F32, "a_single");
}

fn fig4b(c: &mut Criterion) {
    bench_fig4(c, Precision::F64, "b_double");
}

criterion_group!(benches, fig4a, fig4b);
criterion_main!(benches);
