//! Figure 4 regeneration bench: energy-to-solution (simulated WT230
//! integration over the §IV-D repetition window) normalized to Serial.
//! (Plain timing main — the workspace builds offline, so no criterion.)

use harness::measure;
use hpc_kernels::{test_suite, Precision, Variant};
use powersim::PowerModel;

fn time_iters<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) {
    std::hint::black_box(f());
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let per = t0.elapsed().as_secs_f64() / iters as f64;
    println!("  {name:<40} {:>10.3} ms/iter", per * 1e3);
}

fn bench_fig4(prec: Precision, tag: &str) {
    let model = PowerModel::default();
    let suite = test_suite();
    eprintln!("\nFigure 4{tag} rows (test scale, energy normalized to Serial):");
    for b in &suite {
        if let Ok(serial) = b.run(Variant::Serial, prec) {
            let (_, _, se) = measure(&serial, &model, 1);
            let mut row = format!("  {:<7}", b.name());
            for v in [Variant::OpenMp, Variant::OpenCl, Variant::OpenClOpt] {
                match b.run(v, prec) {
                    Ok(r) => {
                        let (_, _, e) = measure(&r, &model, 2);
                        row.push_str(&format!(" {:>7.2}", e / se));
                    }
                    Err(_) => row.push_str(&format!(" {:>7}", "-")),
                }
            }
            eprintln!("{row}");
        }
    }
    println!("fig4{tag}: energy-ratio pipeline cost");
    for b in test_suite() {
        if !matches!(b.name(), "dmmm" | "2dcon" | "spmv") {
            continue;
        }
        let name = b.name().to_string();
        time_iters(&format!("{name}/energy_ratio"), 3, || {
            let s = b.run(Variant::Serial, prec).expect("serial");
            let o = b.run(Variant::OpenClOpt, prec).expect("opt");
            let (_, _, es) = measure(&s, &model, 4);
            let (_, _, eo) = measure(&o, &model, 5);
            eo / es
        });
    }
}

fn main() {
    bench_fig4(Precision::F32, "a_single");
    bench_fig4(Precision::F64, "b_double");
}
