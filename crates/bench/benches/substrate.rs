//! Substrate micro-benchmarks: throughput of the building blocks the
//! reproduction rests on — IR interpretation, cache simulation, the GPU
//! and CPU device models, and the power meter. (Plain timing main — the
//! workspace builds offline, so no criterion.)

use kernel_ir::prelude::*;
use kernel_ir::{Access, BufferData};
use memsim::{Cache, CacheConfig, Hierarchy};
use powersim::{Activity, PowerModel, Wt230};

fn saxpy_kernel(n_ops: i64) -> Program {
    let mut kb = KernelBuilder::new("bench_saxpy");
    let x = kb.arg_global(Scalar::F32, Access::ReadWrite, true);
    let gid = kb.query_global_id(0);
    let v = kb.load(Scalar::F32, x, gid.into());
    let acc = kb.mov(v.into(), VType::scalar(Scalar::F32));
    kb.for_loop(
        Operand::ImmI(0),
        Operand::ImmI(n_ops),
        Operand::ImmI(1),
        |kb, _| {
            kb.mad_into(
                acc,
                acc.into(),
                Operand::ImmF(1.000001),
                Operand::ImmF(1e-8),
            );
        },
    );
    kb.store(x, gid.into(), acc.into());
    kb.finish()
}

/// Time `f`, printing per-iteration latency and elements/second.
fn time_throughput<R>(name: &str, iters: u32, elements: u64, mut f: impl FnMut() -> R) {
    std::hint::black_box(f()); // warm-up
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let per = t0.elapsed().as_secs_f64() / iters as f64;
    println!(
        "  {name:<30} {:>10.3} ms/iter  {:>12.0} elem/s",
        per * 1e3,
        elements as f64 / per
    );
}

fn interpreter() {
    println!("interpreter:");
    let p = saxpy_kernel(256);
    let items = 256usize;
    time_throughput("mad_ops", 10, (items * 256) as u64, || {
        let mut pool = MemoryPool::new();
        let x = pool.add(BufferData::from(vec![1.0f32; items]));
        run_ndrange(
            &p,
            &[ArgBinding::Global(x)],
            &mut pool,
            NDRange::d1(items, 64),
            &mut NullTracer,
        )
        .unwrap();
        pool.get(x).as_f32()[0]
    });
}

fn cache_model() {
    println!("memsim:");
    let n = 100_000u64;
    let mut cache = Cache::new(CacheConfig::new(32 * 1024, 64, 4));
    time_throughput("l1_stream_probe", 10, n, || {
        for i in 0..n {
            cache.probe(i * 4 % (1 << 20), false);
        }
        cache.stats.hits
    });
    let mut h = Hierarchy::with_l1(
        CacheConfig::new(32 * 1024, 64, 2),
        CacheConfig::new(1024 * 1024, 64, 16),
    );
    time_throughput("hierarchy_access", 10, n, || {
        for i in 0..n {
            h.access(i * 8 % (1 << 22), 4, i % 7 == 0, true);
        }
        h.stats.dram_lines
    });
}

fn devices() {
    println!("devices:");
    let p = saxpy_kernel(64);
    let items = 4096usize;
    let elements = (items * 64) as u64;
    let gpu = mali_gpu::MaliT604::default();
    time_throughput("mali_t604_run", 5, elements, || {
        let mut pool = MemoryPool::new();
        let x = pool.add(BufferData::from(vec![1.0f32; items]));
        gpu.run(
            &p,
            &[ArgBinding::Global(x)],
            &mut pool,
            NDRange::d1(items, 128),
        )
        .unwrap()
        .time_s
    });
    let cpu = cpu_sim::CortexA15::default();
    time_throughput("cortex_a15_run", 5, elements, || {
        let mut pool = MemoryPool::new();
        let x = pool.add(BufferData::from(vec![1.0f32; items]));
        cpu.run(
            &p,
            &[ArgBinding::Global(x)],
            &mut pool,
            NDRange::d1(items, 128),
            2,
        )
        .unwrap()
        .time_s
    });
}

fn meter() {
    println!("powersim:");
    let model = PowerModel::default();
    let act = Activity {
        duration_s: 5.0,
        cpu_busy_s: [5.0, 2.0],
        gpu_active_s: 3.0,
        gpu_arith_util_s: 2.0,
        gpu_ls_util_s: 1.0,
        dram_bytes: 10_000_000_000,
    };
    let mut m = Wt230::with_defaults(11);
    time_throughput("wt230_measure_20_reps", 10, 20, || {
        m.measure(&model, &act, 20).mean_energy_j
    });
}

fn main() {
    interpreter();
    cache_model();
    devices();
    meter();
}
