//! Substrate micro-benchmarks: throughput of the building blocks the
//! reproduction rests on — IR interpretation, cache simulation, the GPU
//! and CPU device models, and the power meter.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kernel_ir::prelude::*;
use kernel_ir::{Access, BufferData};
use memsim::{Cache, CacheConfig, Hierarchy};
use powersim::{Activity, PowerModel, Wt230};

fn saxpy_kernel(n_ops: i64) -> Program {
    let mut kb = KernelBuilder::new("bench_saxpy");
    let x = kb.arg_global(Scalar::F32, Access::ReadWrite, true);
    let gid = kb.query_global_id(0);
    let v = kb.load(Scalar::F32, x, gid.into());
    let acc = kb.mov(v.into(), VType::scalar(Scalar::F32));
    kb.for_loop(Operand::ImmI(0), Operand::ImmI(n_ops), Operand::ImmI(1), |kb, _| {
        kb.mad_into(acc, acc.into(), Operand::ImmF(1.000001), Operand::ImmF(1e-8));
    });
    kb.store(x, gid.into(), acc.into());
    kb.finish()
}

fn interpreter(c: &mut Criterion) {
    let mut g = c.benchmark_group("interpreter");
    let p = saxpy_kernel(256);
    let items = 256usize;
    g.throughput(Throughput::Elements((items * 256) as u64));
    g.bench_function("mad_ops", |b| {
        b.iter(|| {
            let mut pool = MemoryPool::new();
            let x = pool.add(BufferData::from(vec![1.0f32; items]));
            run_ndrange(&p, &[ArgBinding::Global(x)], &mut pool,
                NDRange::d1(items, 64), &mut NullTracer).unwrap();
            pool.get(x).as_f32()[0]
        })
    });
    g.finish();
}

fn cache_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("memsim");
    let n = 100_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("l1_stream_probe", |b| {
        let mut cache = Cache::new(CacheConfig::new(32 * 1024, 64, 4));
        b.iter(|| {
            for i in 0..n {
                cache.probe(i * 4 % (1 << 20), false);
            }
            cache.stats.hits
        })
    });
    g.bench_function("hierarchy_access", |b| {
        let mut h = Hierarchy::with_l1(
            CacheConfig::new(32 * 1024, 64, 2),
            CacheConfig::new(1024 * 1024, 64, 16),
        );
        b.iter(|| {
            for i in 0..n {
                h.access(i * 8 % (1 << 22), 4, i % 7 == 0, true);
            }
            h.stats.dram_lines
        })
    });
    g.finish();
}

fn devices(c: &mut Criterion) {
    let mut g = c.benchmark_group("devices");
    g.sample_size(10);
    let p = saxpy_kernel(64);
    let items = 4096usize;
    g.throughput(Throughput::Elements((items * 64) as u64));
    g.bench_function("mali_t604_run", |b| {
        let dev = mali_gpu::MaliT604::default();
        b.iter(|| {
            let mut pool = MemoryPool::new();
            let x = pool.add(BufferData::from(vec![1.0f32; items]));
            dev.run(&p, &[ArgBinding::Global(x)], &mut pool, NDRange::d1(items, 128))
                .unwrap()
                .time_s
        })
    });
    g.bench_function("cortex_a15_run", |b| {
        let dev = cpu_sim::CortexA15::default();
        b.iter(|| {
            let mut pool = MemoryPool::new();
            let x = pool.add(BufferData::from(vec![1.0f32; items]));
            dev.run(&p, &[ArgBinding::Global(x)], &mut pool, NDRange::d1(items, 128), 2)
                .unwrap()
                .time_s
        })
    });
    g.finish();
}

fn meter(c: &mut Criterion) {
    let mut g = c.benchmark_group("powersim");
    let model = PowerModel::default();
    let act = Activity {
        duration_s: 5.0,
        cpu_busy_s: [5.0, 2.0],
        gpu_active_s: 3.0,
        gpu_arith_util_s: 2.0,
        gpu_ls_util_s: 1.0,
        dram_bytes: 10_000_000_000,
    };
    g.bench_function("wt230_measure_20_reps", |b| {
        let mut m = Wt230::with_defaults(11);
        b.iter(|| m.measure(&model, &act, 20).mean_energy_j)
    });
    g.finish();
}

criterion_group!(benches, interpreter, cache_model, devices, meter);
criterion_main!(benches);
