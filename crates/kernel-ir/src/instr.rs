//! Instruction set of the kernel IR.
//!
//! The IR is a register machine with *structured* control flow (`For`, `If`)
//! — the shape OpenCL kernels in the paper actually have — which keeps the
//! interpreter simple and makes transformation passes (vectorization, loop
//! unrolling) tractable.

use crate::types::{MemSpace, Scalar, VType};

/// A virtual register index. Registers are typed; see
/// [`Program::regs`](crate::program::Program).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

/// Kernel argument index (buffers and scalars share one argument list,
/// exactly like `clSetKernelArg` positions).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ArgIdx(pub u32);

/// An instruction operand: a register or an immediate. Immediates broadcast
/// to the width required by the consuming instruction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Operand {
    Reg(Reg),
    /// Float immediate; materialized as the float type of the consuming op.
    ImmF(f64),
    /// Integer immediate; materialized as the integer type of the consuming op.
    ImmI(i64),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

/// Two-operand arithmetic/logic operations, applied lane-wise.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    /// Remainder (integer only in our kernels).
    Rem,
    Min,
    Max,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    /// Comparisons produce `Bool` vectors.
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl BinOp {
    /// Whether the result element type is `Bool` rather than the input type.
    pub const fn is_compare(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// Whether the op is integer-only.
    pub const fn int_only(self) -> bool {
        matches!(
            self,
            BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr | BinOp::Rem
        )
    }
}

/// One-operand operations, applied lane-wise.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    Abs,
    Sqrt,
    /// Reciprocal square root — a native special-function op on the Mali
    /// arithmetic pipe, heavily used by `nbody`.
    Rsqrt,
    Exp,
    Log,
    Not,
}

impl UnOp {
    /// Special-function ops go through the (slower) SFU path on both devices.
    pub const fn is_special(self) -> bool {
        matches!(self, UnOp::Sqrt | UnOp::Rsqrt | UnOp::Exp | UnOp::Log)
    }
}

/// Horizontal (cross-lane) reductions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HorizOp {
    Add,
    Min,
    Max,
}

/// Atomic read-modify-write operations on buffers. Mali-T604 implements
/// these in hardware (in the L2 / snoop-control unit).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AtomicOp {
    Add,
    /// `atomic_inc` — add 1, return old value.
    Inc,
    Min,
    Max,
}

/// Work-item/built-in queries (OpenCL `get_global_id` & friends).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Builtin {
    GlobalId(u8),
    LocalId(u8),
    GroupId(u8),
    GlobalSize(u8),
    LocalSize(u8),
    NumGroups(u8),
}

/// One IR instruction.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// `dst = a <op> b` (lane-wise; scalar operands broadcast).
    Bin {
        dst: Reg,
        op: BinOp,
        a: Operand,
        b: Operand,
    },
    /// `dst = <op> a`.
    Un { dst: Reg, op: UnOp, a: Operand },
    /// Fused multiply-add `dst = a*b + c` — one arithmetic-pipe slot on Mali.
    Mad {
        dst: Reg,
        a: Operand,
        b: Operand,
        c: Operand,
    },
    /// Lane-wise `dst = cond ? a : b`; `cond` is a Bool vector of the same
    /// width (this is how divergence-free Mali code expresses branches).
    Select {
        dst: Reg,
        cond: Operand,
        a: Operand,
        b: Operand,
    },
    /// Copy/materialize.
    Mov { dst: Reg, a: Operand },
    /// Lane-wise type conversion to the destination register's type.
    Cast { dst: Reg, a: Operand },
    /// Horizontal reduction of a vector register into a scalar register.
    Horiz { dst: Reg, op: HorizOp, a: Operand },
    /// Extract lane `lane` of `a` into scalar `dst`.
    Extract { dst: Reg, a: Operand, lane: u8 },
    /// Insert scalar `v` into lane `lane` of vector register `dst`.
    Insert { dst: Reg, v: Operand, lane: u8 },
    /// Built-in work-item query; `dst` must be a scalar `U32` register.
    Query { dst: Reg, q: Builtin },

    /// Gather load: lane `i` of `dst` comes from `buf[idx.lane(i)]`.
    /// With scalar `dst`/`idx` this is a plain scalar load.
    Load { dst: Reg, buf: ArgIdx, idx: Operand },
    /// Contiguous vector load of `dst.width` elements starting at scalar
    /// element index `base` (OpenCL `vloadN`).
    VLoad {
        dst: Reg,
        buf: ArgIdx,
        base: Operand,
    },
    /// Scatter store, mirror of `Load`.
    Store {
        buf: ArgIdx,
        idx: Operand,
        val: Operand,
    },
    /// Contiguous vector store, mirror of `VLoad` (OpenCL `vstoreN`).
    VStore {
        buf: ArgIdx,
        base: Operand,
        val: Operand,
    },
    /// Atomic RMW on a buffer element; optionally returns the old value.
    Atomic {
        op: AtomicOp,
        buf: ArgIdx,
        idx: Operand,
        val: Operand,
        old: Option<Reg>,
    },

    /// Counted loop: `for (var = start; var < end; var += step) body`.
    /// `var` is a scalar integer register.
    For {
        var: Reg,
        start: Operand,
        end: Operand,
        step: Operand,
        body: Vec<Op>,
    },
    /// Scalar conditional.
    If {
        cond: Operand,
        then: Vec<Op>,
        els: Vec<Op>,
    },
    /// Work-group barrier (`barrier(CLK_*_MEM_FENCE)`). Only valid at the
    /// top level of the kernel body — the uniform-control-flow requirement
    /// OpenCL imposes anyway.
    Barrier,
}

impl Op {
    /// Visit this op and all nested ops (pre-order).
    pub fn visit<'a>(&'a self, f: &mut dyn FnMut(&'a Op)) {
        f(self);
        match self {
            Op::For { body, .. } => {
                for op in body {
                    op.visit(f);
                }
            }
            Op::If { then, els, .. } => {
                for op in then.iter().chain(els) {
                    op.visit(f);
                }
            }
            _ => {}
        }
    }

    /// Registers written by this op (not descending into bodies).
    pub fn dst_reg(&self) -> Option<Reg> {
        match self {
            Op::Bin { dst, .. }
            | Op::Un { dst, .. }
            | Op::Mad { dst, .. }
            | Op::Select { dst, .. }
            | Op::Mov { dst, .. }
            | Op::Cast { dst, .. }
            | Op::Horiz { dst, .. }
            | Op::Extract { dst, .. }
            | Op::Insert { dst, .. }
            | Op::Query { dst, .. }
            | Op::Load { dst, .. }
            | Op::VLoad { dst, .. } => Some(*dst),
            Op::Atomic { old, .. } => *old,
            Op::For { var, .. } => Some(*var),
            _ => None,
        }
    }
}

/// Kernel argument declaration.
#[derive(Clone, Debug, PartialEq)]
pub enum ArgDecl {
    /// A `__global` buffer argument.
    GlobalBuf {
        elem: Scalar,
        access: crate::types::Access,
        /// `restrict`-qualified — lets the compiler assume no aliasing
        /// (Section III-B "Directives and Type Qualifiers").
        restrict: bool,
    },
    /// A `__local` buffer argument; its element count is supplied at launch
    /// (like `clSetKernelArg(…, size, NULL)`).
    LocalBuf { elem: Scalar },
    /// A scalar argument passed by value.
    Scalar { ty: Scalar },
}

impl ArgDecl {
    pub fn space(&self) -> Option<MemSpace> {
        match self {
            ArgDecl::GlobalBuf { .. } => Some(MemSpace::Global),
            ArgDecl::LocalBuf { .. } => Some(MemSpace::Local),
            ArgDecl::Scalar { .. } => None,
        }
    }

    pub fn elem(&self) -> Scalar {
        match self {
            ArgDecl::GlobalBuf { elem, .. } | ArgDecl::LocalBuf { elem } => *elem,
            ArgDecl::Scalar { ty } => *ty,
        }
    }
}

/// Compiler-hint metadata from Section III-B ("Directives and Type
/// Qualifiers"). These don't change semantics; device models apply small
/// instruction-overhead reductions when they are set, mirroring the paper's
/// measured effect of `inline`/`const`/`restrict`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Hints {
    /// Helper functions marked `inline` (larger basic blocks, no call
    /// overhead).
    pub inline: bool,
    /// Scalar/pointer args marked `const`.
    pub const_args: bool,
}

/// The wider vector type used by a `VType` after vectorization; helper used
/// by passes and tests.
pub fn widen(ty: VType, factor: u8) -> VType {
    VType::new(ty.elem, ty.width * factor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Access;

    #[test]
    fn compare_ops_flagged() {
        assert!(BinOp::Lt.is_compare());
        assert!(!BinOp::Add.is_compare());
    }

    #[test]
    fn int_only_ops() {
        assert!(BinOp::Xor.int_only());
        assert!(BinOp::Rem.int_only());
        assert!(!BinOp::Mul.int_only());
    }

    #[test]
    fn special_unops() {
        assert!(UnOp::Rsqrt.is_special());
        assert!(UnOp::Exp.is_special());
        assert!(!UnOp::Neg.is_special());
    }

    #[test]
    fn visit_descends_into_loops() {
        let inner = Op::Mov {
            dst: Reg(1),
            a: Operand::ImmI(0),
        };
        let outer = Op::For {
            var: Reg(0),
            start: Operand::ImmI(0),
            end: Operand::ImmI(4),
            step: Operand::ImmI(1),
            body: vec![
                inner.clone(),
                Op::If {
                    cond: Operand::Reg(Reg(2)),
                    then: vec![inner.clone()],
                    els: vec![],
                },
            ],
        };
        let mut n = 0;
        outer.visit(&mut |_| n += 1);
        assert_eq!(n, 4); // for + mov + if + mov
    }

    #[test]
    fn arg_decl_spaces() {
        let g = ArgDecl::GlobalBuf {
            elem: Scalar::F32,
            access: Access::ReadOnly,
            restrict: true,
        };
        assert_eq!(g.space(), Some(MemSpace::Global));
        let l = ArgDecl::LocalBuf { elem: Scalar::U32 };
        assert_eq!(l.space(), Some(MemSpace::Local));
        assert_eq!(ArgDecl::Scalar { ty: Scalar::I32 }.space(), None);
    }

    #[test]
    fn widen_helper() {
        assert_eq!(
            widen(VType::scalar(Scalar::F32), 4),
            VType::new(Scalar::F32, 4)
        );
    }
}
